//! Benchmark for the debugging experiments: time to the first
//! counterexample in the faulty protocol variants under SPOR.

use mp_bench::micro::Group;
use mp_bench::run_spor;
use mp_checker::NullObserver;
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as mc_quorum, MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    quorum_model as st_quorum, wrong_regularity_property, RegularityObserver, StorageSetting,
};

fn main() {
    let mut group = Group::new("debugging/first-counterexample");
    group.sample_size(10);

    let paxos_setting = PaxosSetting::new(2, 3, 1);
    let paxos = paxos_quorum(paxos_setting, PaxosVariant::FaultyLearner);
    group.bench("faulty paxos (2,3,1)", || {
        run_spor(
            &paxos,
            consensus_property(paxos_setting),
            NullObserver,
            true,
        )
    });

    let mc_setting = MulticastSetting::new(2, 1, 2, 1);
    let multicast = mc_quorum(mc_setting);
    group.bench("wrong agreement (2,1,2,1)", || {
        run_spor(
            &multicast,
            agreement_property(mc_setting),
            NullObserver,
            true,
        )
    });

    let st_setting = StorageSetting::new(3, 1);
    let storage = st_quorum(st_setting);
    group.bench("wrong regularity (3,1)", || {
        run_spor(
            &storage,
            wrong_regularity_property(st_setting),
            RegularityObserver::new(st_setting),
            true,
        )
    });

    group.finish();
}
