//! Benchmark for the generic fault-injection subsystem: cost of wrapping a
//! protocol (injection is cheap) and of exploring fault-augmented state
//! spaces as the budget grows, plus the store-backend comparison on a
//! faulty workload.

use mp_bench::micro::Group;
use mp_checker::{Checker, CheckerConfig, StoreConfig};
use mp_faults::{inject, FaultBudget};
use mp_protocols::paxos::{
    faulty_consensus_property, faulty_quorum_model, quorum_model, PaxosSetting, PaxosVariant,
};

fn bench_budget_growth() {
    let setting = PaxosSetting::new(1, 2, 1);
    let budgets = [
        ("none", FaultBudget::none()),
        ("crash1", FaultBudget::none().crashes(1)),
        ("drop1", FaultBudget::none().drops(1)),
        ("dup1", FaultBudget::none().dups(1)),
        ("crash1+drop1", FaultBudget::none().crashes(1).drops(1)),
        ("corrupt2", FaultBudget::none().corruptions(2)),
    ];
    let mut group = Group::new("fault_sweep/paxos(1,2,1) budget growth (SPOR, exact store)");
    group.sample_size(10);
    for (label, budget) in budgets {
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
        group.bench(label, || {
            Checker::new(&spec, faulty_consensus_property(setting))
                .spor()
                .config(CheckerConfig::stateful_dfs())
                .run()
                .stats
                .states
        });
    }
    group.finish();
}

fn bench_injection_overhead() {
    let setting = PaxosSetting::new(2, 3, 1);
    let base = quorum_model(setting, PaxosVariant::Correct);
    let mut group = Group::new("fault_sweep/injection overhead (paxos 2,3,1)");
    group.sample_size(20);
    group.bench("inject crash1+drop2+dup1", || {
        inject(&base, FaultBudget::none().crashes(1).drops(2).dups(1))
            .unwrap()
            .num_transitions()
    });
    group.finish();
}

fn bench_store_backends_on_faulty_workload() {
    let setting = PaxosSetting::new(1, 2, 1);
    let spec = faulty_quorum_model(
        setting,
        PaxosVariant::Correct,
        FaultBudget::none().crashes(1).drops(1),
    );
    let mut group = Group::new("fault_sweep/store backends (paxos crash1+drop1)");
    group.sample_size(10);
    for (label, store) in [
        ("exact", StoreConfig::Exact),
        ("sharded", StoreConfig::sharded()),
        ("fingerprint-48", StoreConfig::fingerprint(48)),
    ] {
        group.bench(label, || {
            let report = Checker::new(&spec, faulty_consensus_property(setting))
                .spor()
                .config(CheckerConfig::stateful_dfs().with_store(store))
                .run();
            assert!(report.verdict.is_verified());
            report.stats.store_bytes
        });
    }
    group.finish();
}

fn main() {
    bench_budget_growth();
    bench_injection_overhead();
    bench_store_backends_on_faulty_workload();
}
