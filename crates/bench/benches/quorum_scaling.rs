//! Criterion benchmark for the Section II-C analysis: building the full
//! state graph of the quorum-collection protocol, quorum vs single-message
//! style, as the quorum size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_model::StateGraph;
use mp_protocols::sweep::{collect_model, CollectSetting};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_scaling/collect(4 voters)");
    group.sample_size(10);
    for quorum in 1..=4usize {
        let setting = CollectSetting::new(4, quorum, 1);
        let q_model = collect_model(setting, true);
        let s_model = collect_model(setting, false);
        group.bench_function(BenchmarkId::new("quorum-model", quorum), |b| {
            b.iter(|| StateGraph::build(&q_model, 10_000_000).unwrap().num_states())
        });
        group.bench_function(BenchmarkId::new("single-message-model", quorum), |b| {
            b.iter(|| StateGraph::build(&s_model, 10_000_000).unwrap().num_states())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
