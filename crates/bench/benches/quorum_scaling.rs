//! Benchmark for the Section II-C analysis: building the full state graph
//! of the quorum-collection protocol, quorum vs single-message style, as
//! the quorum size grows — plus a visited-store backend comparison showing
//! what the `mp-store` subsystem buys on the same sweep.

use mp_bench::micro::Group;
use mp_checker::{Checker, CheckerConfig, StoreConfig};
use mp_model::StateGraph;
use mp_protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};

fn bench_scaling() {
    let mut group = Group::new("quorum_scaling/collect(4 voters)");
    group.sample_size(10);
    for quorum in 1..=4usize {
        let setting = CollectSetting::new(4, quorum, 1);
        let q_model = collect_model(setting, true);
        let s_model = collect_model(setting, false);
        group.bench(format!("quorum-model/{quorum}"), || {
            StateGraph::build(&q_model, 10_000_000)
                .unwrap()
                .num_states()
        });
        group.bench(format!("single-message-model/{quorum}"), || {
            StateGraph::build(&s_model, 10_000_000)
                .unwrap()
                .num_states()
        });
    }
    group.finish();
}

/// The same configuration verified with each visited-store backend. The
/// timings show the (small) cost of lock-striping in a single-threaded
/// search; the printed byte counts show the hash-compaction savings.
fn bench_store_backends() {
    let setting = CollectSetting::new(4, 2, 1);
    let model = collect_model(setting, false);
    let backends = [
        ("exact", StoreConfig::Exact),
        ("sharded", StoreConfig::sharded()),
        ("fingerprint-48", StoreConfig::fingerprint(48)),
    ];

    let mut group = Group::new("quorum_scaling/store-backends(collect 4v q2, single-message)");
    group.sample_size(10);
    // Keep the last report of each timed run so the stats table below does
    // not need extra verification runs.
    let mut last_reports = Vec::new();
    for (label, store) in backends {
        let last = std::cell::RefCell::new(None);
        group.bench(label, || {
            let report = Checker::new(&model, collect_soundness_property(setting))
                .config(CheckerConfig::stateful_dfs().with_store(store))
                .run();
            assert!(report.verdict.is_verified());
            *last.borrow_mut() = Some(report);
        });
        last_reports.push((label, last.into_inner().expect("bench ran at least once")));
    }
    group.finish();

    for (label, report) in last_reports {
        println!(
            "  {label:<16} {:>9} states, store ~{:>8} KiB, {:>9} store hits",
            report.stats.states,
            report.stats.store_bytes / 1024,
            report.stats.store_hits
        );
    }
    println!();
}

fn main() {
    bench_scaling();
    bench_store_backends();
}
