//! Benchmark for the refinement machinery itself: how long the splits take
//! to compute and how long the Theorem-2 validation (state-graph equality)
//! takes on a small Paxos instance.

use mp_bench::micro::Group;
use mp_protocols::paxos::{quorum_model, PaxosSetting, PaxosVariant};
use mp_refine::{check_refinement, SplitStrategy};

fn main() {
    let setting = PaxosSetting::new(1, 3, 1);
    let base = quorum_model(setting, PaxosVariant::Correct);

    let mut group = Group::new("refinement/split-computation");
    for strategy in [
        SplitStrategy::ReplySplit,
        SplitStrategy::QuorumSplit,
        SplitStrategy::CombinedSplit,
    ] {
        group.bench(strategy.label(), || {
            strategy.apply(&base).unwrap().num_transitions()
        });
    }
    group.finish();

    let split = SplitStrategy::CombinedSplit.apply(&base).unwrap();
    let mut group = Group::new("refinement/theorem2-validation");
    group.sample_size(10);
    group.bench("paxos(1,3,1) combined-split", || {
        let check = check_refinement(&base, &split, 1_000_000).unwrap();
        assert!(check.equivalent);
        check.original_states
    });
    group.finish();
}
