//! Benchmark mirroring Table I (quorum semantics) at bench-friendly scale:
//! for each protocol, verification time of the single-message model vs the
//! quorum model under SPOR, plus the stateless DPOR baseline on the
//! single-message model.

use mp_bench::micro::Group;
use mp_bench::{run_spor, run_stateless};
use mp_checker::NullObserver;
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as mc_quorum, single_message_model as mc_single,
    MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, single_message_model as paxos_single,
    PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    quorum_model as st_quorum, regularity_property, single_message_model as st_single,
    RegularityObserver, StorageSetting,
};

fn bench_paxos() {
    let setting = PaxosSetting::new(1, 3, 1);
    let single = paxos_single(setting, PaxosVariant::Correct);
    let quorum = paxos_quorum(setting, PaxosVariant::Correct);
    let mut group = Group::new("table_i/paxos(1,3,1)");
    group.sample_size(10);
    group.bench("no-quorum DPOR (stateless)", || {
        run_stateless(&single, consensus_property(setting), true)
    });
    group.bench("no-quorum SPOR", || {
        run_spor(&single, consensus_property(setting), NullObserver, false)
    });
    group.bench("quorum SPOR", || {
        run_spor(&quorum, consensus_property(setting), NullObserver, false)
    });
    group.finish();
}

fn bench_multicast() {
    for setting in [
        MulticastSetting::new(3, 0, 1, 1),
        MulticastSetting::new(2, 1, 0, 1),
    ] {
        let single = mc_single(setting);
        let quorum = mc_quorum(setting);
        let mut group = Group::new(format!("table_i/multicast{setting}"));
        group.sample_size(10);
        group.bench("no-quorum SPOR", || {
            run_spor(&single, agreement_property(setting), NullObserver, false)
        });
        group.bench("quorum SPOR", || {
            run_spor(&quorum, agreement_property(setting), NullObserver, false)
        });
        group.finish();
    }
}

fn bench_storage() {
    let setting = StorageSetting::new(3, 1);
    let single = st_single(setting);
    let quorum = st_quorum(setting);
    let mut group = Group::new("table_i/storage(3,1)");
    group.sample_size(10);
    group.bench("no-quorum SPOR", || {
        run_spor(
            &single,
            regularity_property(setting),
            RegularityObserver::new(setting),
            false,
        )
    });
    group.bench("quorum SPOR", || {
        run_spor(
            &quorum,
            regularity_property(setting),
            RegularityObserver::new(setting),
            false,
        )
    });
    group.finish();
}

fn main() {
    bench_paxos();
    bench_multicast();
    bench_storage();
}
