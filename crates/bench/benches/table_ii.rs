//! Benchmark mirroring Table II (transition refinement): SPOR verification
//! time of each protocol under the four split strategies.

use mp_bench::micro::Group;
use mp_bench::run_spor;
use mp_checker::NullObserver;
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as mc_quorum, MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    quorum_model as st_quorum, regularity_property, RegularityObserver, StorageSetting,
};
use mp_refine::SplitStrategy;

fn bench_paxos_splits() {
    let setting = PaxosSetting::new(1, 3, 1);
    let base = paxos_quorum(setting, PaxosVariant::Correct);
    let mut group = Group::new("table_ii/paxos(1,3,1)");
    group.sample_size(10);
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        group.bench(strategy.label(), || {
            run_spor(&split, consensus_property(setting), NullObserver, false)
        });
    }
    group.finish();
}

fn bench_multicast_splits() {
    let setting = MulticastSetting::new(3, 0, 1, 1);
    let base = mc_quorum(setting);
    let mut group = Group::new("table_ii/multicast(3,0,1,1)");
    group.sample_size(10);
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        group.bench(strategy.label(), || {
            run_spor(&split, agreement_property(setting), NullObserver, false)
        });
    }
    group.finish();
}

fn bench_storage_splits() {
    let setting = StorageSetting::new(3, 1);
    let base = st_quorum(setting);
    let mut group = Group::new("table_ii/storage(3,1)");
    group.sample_size(10);
    for strategy in SplitStrategy::ALL {
        let split = strategy.apply(&base).unwrap();
        group.bench(strategy.label(), || {
            run_spor(
                &split,
                regularity_property(setting),
                RegularityObserver::new(setting),
                false,
            )
        });
    }
    group.finish();
}

fn main() {
    bench_paxos_splits();
    bench_multicast_splits();
    bench_storage_splits();
}
