//! # mp-bench — micro-benchmarks for the DSN 2011 evaluation
//!
//! The benchmarks mirror the harness experiments at bench-friendly scale:
//!
//! * `table_i` — quorum vs single-message models under SPOR/unreduced search
//!   (Table I);
//! * `table_ii` — unsplit vs reply-/quorum-/combined-split models (Table II);
//! * `quorum_scaling` — the Section II-C state-space inflation sweep, plus a
//!   visited-store backend comparison (exact vs sharded vs fingerprint);
//! * `refinement_overhead` — cost of performing the splits themselves and of
//!   validating them against Theorem 2;
//! * `debugging` — time to the first counterexample in the faulty variants.
//!
//! The benches are plain `harness = false` binaries built on the
//! dependency-free [`micro`] timing harness (this container has no network
//! access, so Criterion is not available). The crate itself only exports
//! small helpers shared by the benches:
//!
//! ```
//! use mp_bench::micro::Group;
//!
//! let mut group = Group::new("demo");
//! group.sample_size(3);
//! group.bench("add", || std::hint::black_box(2 + 2));
//! group.finish(); // prints min/mean/max per row
//! ```

#![forbid(unsafe_code)]

pub mod micro;

use mp_checker::{Checker, CheckerConfig, Invariant, NullObserver, Observer, RunReport};
use mp_model::{LocalState, Message, ProtocolSpec};

/// Runs a stateful-DFS SPOR verification of `spec` against `property` and
/// returns the report, panicking if the verdict is unexpected so that
/// mis-configured benchmarks fail loudly instead of timing nonsense.
pub fn run_spor<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: Invariant<S, M, O>,
    observer: O,
    expect_violation: bool,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let report = Checker::with_observer(spec, property, observer)
        .spor()
        .config(CheckerConfig::stateful_dfs())
        .run();
    assert_eq!(
        report.verdict.is_violated(),
        expect_violation,
        "unexpected verdict in benchmark: {report}"
    );
    report
}

/// Runs an unreduced stateful-DFS verification (baseline for the benches).
pub fn run_unreduced<S, M>(
    spec: &ProtocolSpec<S, M>,
    property: Invariant<S, M, NullObserver>,
    expect_violation: bool,
) -> RunReport
where
    S: LocalState,
    M: Message,
{
    let report = Checker::new(spec, property)
        .config(CheckerConfig::stateful_dfs())
        .run();
    assert_eq!(
        report.verdict.is_violated(),
        expect_violation,
        "unexpected verdict in benchmark: {report}"
    );
    report
}

/// Runs a stateless search, with or without DPOR.
pub fn run_stateless<S, M>(
    spec: &ProtocolSpec<S, M>,
    property: Invariant<S, M, NullObserver>,
    dpor: bool,
) -> RunReport
where
    S: LocalState,
    M: Message,
{
    Checker::new(spec, property)
        .config(CheckerConfig::stateless(dpor))
        .run()
}
