//! A tiny, dependency-free timing harness for the `harness = false`
//! benches (a Criterion stand-in that works offline).
//!
//! Usage mirrors Criterion's group API closely enough that the benches read
//! the same:
//!
//! ```
//! use mp_bench::micro::Group;
//! let mut group = Group::new("demo");
//! group.sample_size(5);
//! group.bench("add", || std::hint::black_box(2 + 2));
//! group.finish();
//! ```

use std::time::{Duration, Instant};

/// A named group of benchmarks, printed as one block of aligned rows.
pub struct Group {
    name: String,
    samples: usize,
    rows: Vec<(String, Duration, Duration, Duration)>,
}

impl Group {
    /// Creates a group with the default of 10 samples per benchmark.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            samples: 10,
            rows: Vec::new(),
        }
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs `f` once for warm-up and `samples` timed times, recording
    /// min/mean/max. The closure's result is passed through
    /// [`std::hint::black_box`] so the work is not optimised away.
    pub fn bench<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        std::hint::black_box(f());
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            min = min.min(elapsed);
            max = max.max(elapsed);
            total += elapsed;
        }
        let mean = total / self.samples as u32;
        self.rows.push((label.into(), min, mean, max));
        self
    }

    /// Prints the group's rows. Called automatically on drop if forgotten.
    pub fn finish(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let width = self.rows.iter().map(|(l, ..)| l.len()).max().unwrap_or(0);
        println!("{} ({} samples)", self.name, self.samples);
        for (label, min, mean, max) in self.rows.drain(..) {
            println!(
                "  {label:<width$}  min {:>10}  mean {:>10}  max {:>10}",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max),
            );
        }
        println!();
    }
}

impl Drop for Group {
    fn drop(&mut self) {
        self.finish();
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_row_per_call() {
        let mut group = Group::new("test");
        group.sample_size(2);
        group.bench("a", || 1 + 1).bench("b", || 2 + 2);
        assert_eq!(group.rows.len(), 2);
        assert!(group
            .rows
            .iter()
            .all(|(_, min, mean, max)| min <= mean && mean <= max));
        group.finish();
        assert!(group.rows.is_empty());
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
