//! Stateful breadth-first search.
//!
//! Explores states level by level, which makes the first counterexample
//! found a shortest one — convenient for the paper's debugging experiments
//! ("finding the first bug ... requires little resources"). The engine keeps
//! a parent pointer per stored state so counterexample paths can be rebuilt.
//!
//! Note on soundness with POR: a breadth-first search has no stack, so the
//! cycle proviso of the DFS engine does not apply. On cyclic state graphs
//! the BFS engine therefore only applies the reducer when the protocol's
//! state graph is known to be acyclic (all three protocols in the paper
//! terminate); for safety it falls back to full expansion whenever it
//! re-encounters a state that is still in the frontier of the same level.

use std::sync::Arc;
use std::time::Instant;

use mp_store::{KeyMapper, StateStoreBackend};

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
    TransitionInstance,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;

use crate::{
    liveness::run_liveness_dfs, CheckerConfig, Counterexample, ExplorationStats, Observer,
    Property, PropertyStatus, RunReport, Verdict,
};

struct Node<M> {
    parent: Option<usize>,
    incoming: Option<TransitionInstance<M>>,
}

/// Builds the canonical-key mapper the BFS engines install into the store
/// when symmetry reduction is active: concrete keys go in, orbit
/// representatives are what the backend actually fingerprints.
pub(crate) fn canonical_mapper<S, M, O>(
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
) -> Option<KeyMapper<(GlobalState<S, M>, O)>>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if symmetry.is_trivial() {
        return None;
    }
    let symmetry = symmetry.clone();
    Some(Arc::new(move |key: &(GlobalState<S, M>, O)| {
        let (state, observer, _) = symmetry.canonicalize(&key.0, &key.1);
        (state, observer)
    }))
}

/// Runs a stateful breadth-first search and returns the report.
///
/// Dispatches on the property class: safety properties run the level-by-level
/// search below. Liveness properties need a cycle-capable search — a
/// breadth-first frontier has no stack to detect lassos against — so they
/// are routed to the fairness-aware liveness DFS of [`crate::liveness`]
/// (the report's strategy label says so).
///
/// With a non-trivial [`Symmetry`], the visited store canonicalizes every
/// inserted key to its orbit representative (via the store's canonical-key
/// wrapper), so only one member per orbit enters the frontier; exploration
/// and counterexample paths stay concrete.
pub fn run_stateful_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let strategy = if symmetry.is_trivial() {
        format!("stateful-bfs+{}", reducer.name())
    } else {
        format!("stateful-bfs+{}+{}", reducer.name(), symmetry.label())
    };

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    // Membership goes through the pluggable store; `nodes`/`states` keep
    // the parent pointers and frontier states needed to rebuild paths.
    let store = config.store.build_canonical(canonical_mapper(symmetry));
    let mut nodes: Vec<Node<M>> = Vec::new();
    let mut states: Vec<(GlobalState<S, M>, O)> = Vec::new();

    let rebuild_path = |nodes: &Vec<Node<M>>, mut at: usize| -> Vec<TransitionInstance<M>> {
        let mut path = Vec::new();
        while let Some(parent) = nodes[at].parent {
            if let Some(instance) = &nodes[at].incoming {
                path.push(instance.clone());
            }
            at = parent;
        }
        path.reverse();
        path
    };

    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        stats.elapsed = start.elapsed();
        stats.record_store(store.name(), store.stats());
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    store.insert((initial.clone(), initial_observer.clone()));
    nodes.push(Node {
        parent: None,
        incoming: None,
    });
    states.push((initial, initial_observer));
    stats.states = 1;

    let mut frontier: Vec<usize> = vec![0];
    let mut depth = 0usize;

    while !frontier.is_empty() {
        depth += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let mut next_frontier = Vec::new();

        for &node_idx in &frontier {
            let (state, observer) = states[node_idx].clone();
            stats.expansions += 1;

            let all = enabled_instances(spec, &state);
            if config.check_deadlocks && all.is_empty() {
                stats.elapsed = start.elapsed();
                stats.record_store(store.name(), store.stats());
                let path = rebuild_path(&nodes, node_idx);
                let cx = Counterexample::new(
                    spec,
                    property.name(),
                    "deadlock: no transition enabled",
                    &path,
                    &state,
                );
                return RunReport {
                    verdict: Verdict::Violated(Box::new(cx)),
                    stats,
                    strategy,
                };
            }
            let reduction = reducer.reduce(spec, &state, all);
            if reduction.reduced {
                stats.reduced_states += 1;
            }

            for instance in reduction.explore {
                let next_state = execute_enabled(spec, &state, &instance);
                let next_observer = observer.update(spec, &state, &instance, &next_state);
                stats.transitions_executed += 1;
                let key = (next_state, next_observer);
                if !store.insert_ref(&key) {
                    stats.revisits += 1;
                    continue;
                }

                let (next_state, next_observer) = key;
                if let PropertyStatus::Violated(reason) =
                    property.evaluate(&next_state, &next_observer)
                {
                    let mut path = rebuild_path(&nodes, node_idx);
                    path.push(instance);
                    stats.states += 1;
                    stats.elapsed = start.elapsed();
                    stats.record_store(store.name(), store.stats());
                    let cx = Counterexample::new(spec, property.name(), reason, &path, &next_state);
                    return RunReport {
                        verdict: Verdict::Violated(Box::new(cx)),
                        stats,
                        strategy,
                    };
                }

                if states.len() >= config.max_states {
                    stats.elapsed = start.elapsed();
                    stats.record_store(store.name(), store.stats());
                    return RunReport {
                        verdict: Verdict::LimitReached {
                            what: format!("state limit of {}", config.max_states),
                        },
                        stats,
                        strategy,
                    };
                }
                if let Some(limit) = config.time_limit {
                    if start.elapsed() > limit {
                        stats.elapsed = start.elapsed();
                        stats.record_store(store.name(), store.stats());
                        return RunReport {
                            verdict: Verdict::LimitReached {
                                what: format!("time limit of {limit:?}"),
                            },
                            stats,
                            strategy,
                        };
                    }
                }

                let new_index = states.len();
                states.push((next_state, next_observer));
                nodes.push(Node {
                    parent: Some(node_idx),
                    incoming: Some(instance),
                });
                stats.states += 1;
                next_frontier.push(new_index);
            }
        }
        frontier = next_frontier;
    }

    stats.elapsed = start.elapsed();
    stats.record_store(store.name(), store.stats());
    RunReport {
        verdict: Verdict::Verified,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn bfs_and_dfs_agree_on_state_counts() {
        let spec = independent(3, 2);
        let bfs = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        assert!(bfs.verdict.is_verified());
        assert_eq!(bfs.stats.states, 27);
    }

    #[test]
    fn bfs_finds_shortest_counterexample() {
        let spec = independent(2, 4);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-2", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 2) {
                    Err("reached 2".into())
                } else {
                    Ok(())
                }
            });
        let report = run_stateful_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        let cx = report.verdict.counterexample().unwrap();
        assert_eq!(cx.len(), 2, "BFS must find the 2-step shortest violation");
    }

    #[test]
    fn bfs_with_spor_still_verifies() {
        let spec = independent(3, 2);
        let reducer = SporReducer::new(&spec);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        assert!(report.verdict.is_verified());
        assert!(report.stats.states < 27);
    }

    #[test]
    fn bfs_state_limit() {
        let spec = independent(3, 3);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs().with_max_states(4),
        );
        assert!(matches!(report.verdict, Verdict::LimitReached { .. }));
    }

    #[test]
    fn bfs_deadlock_check() {
        let spec = independent(1, 1);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs().with_deadlock_check(true),
        );
        assert!(report.verdict.is_violated());
    }
}
