//! Stateful breadth-first search over a pluggable, spillable frontier.
//!
//! Explores states level by level, which makes the first counterexample
//! found a shortest one — convenient for the paper's debugging experiments
//! ("finding the first bug ... requires little resources"). The engine keeps
//! a parent pointer per stored state so counterexample paths can be rebuilt.
//!
//! The level queues and the parent-pointer table are driven through
//! `mp-store`'s [`FrontierBackend`] and [`SpillLog`]: with the default
//! in-memory frontier the behaviour is the classic two-queue BFS; with
//! [`FrontierConfig::Disk`](mp_store::FrontierConfig) selected
//! (`CheckerConfig::frontier`, strategy suffix `+spill`) encoded states are
//! spilled to watermark-sized segments and read back level by level, so the
//! resident set stays bounded by the watermark while verdicts and state
//! counts remain byte-identical (both frontiers are strictly FIFO).
//!
//! With a non-trivial [`Symmetry`] the engine canonicalizes each successor
//! **once** and uses the canonical pair `(ŝ, ô)` both as the visited-store
//! key and as the frontier payload, alongside the group element δ that
//! produced it. On dequeue the concrete state is recovered as
//! `apply_element(δ⁻¹, ŝ)`, and the parent table records concrete
//! transition instances — so frontier (and spill) bytes shrink with the
//! orbit collapse while exploration, properties and counterexample paths
//! all stay concrete.
//!
//! Note on soundness with POR: a breadth-first search has no stack, so the
//! cycle proviso of the DFS engine does not apply. On cyclic state graphs
//! the BFS engine therefore only applies the reducer when the protocol's
//! state graph is known to be acyclic (all three protocols in the paper
//! terminate); for safety it falls back to full expansion whenever it
//! re-encounters a state that is still in the frontier of the same level.

use std::sync::Arc;
use std::time::Instant;

use mp_store::{
    canonical_label, manifest_exists, CheckpointWriter, FrontierBackend, ItemCodec, Manifest,
    PlainCodec, SpillLog, StateStoreBackend,
};

use mp_model::{
    enabled_instances, execute_enabled, DecodeError, Encode, GlobalState, LocalState, Message,
    ProtocolSpec, TransitionInstance,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;
use mp_trace::{Counter, Gauge, Histogram, Phase, TraceHandle};

use crate::{
    liveness::run_liveness_dfs, obs::LevelObserver, CheckerConfig, Counterexample,
    ExplorationStats, Observer, Property, PropertyStatus, RunReport, Verdict,
};

/// A frontier entry of the BFS engines: `(parent-table index, δ, state,
/// observer)`, where the state/observer pair is the canonical orbit
/// representative and δ the group element that produced it (0 = identity,
/// so symmetry-free runs carry the concrete state unchanged). The parallel
/// engine reconstructs no paths and leaves the index at 0.
pub(crate) type Entry<S, M, O> = (usize, usize, GlobalState<S, M>, O);

/// One parent-table record: `None` for the root, `Some((parent index,
/// incoming instance))` for every other state.
pub(crate) type PathEntry<M> = Option<(usize, TransitionInstance<M>)>;

/// The frontier item codec of the BFS engines: plain data goes through the
/// `mp-model` codec, the observer is rebuilt with the run's initial
/// observer as the decode template (see [`Observer::decode_like`]).
pub(crate) struct EntryCodec<O> {
    pub(crate) template: O,
}

impl<S, M, O> ItemCodec<Entry<S, M, O>> for EntryCodec<O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    fn encode_item(&self, item: &Entry<S, M, O>, out: &mut Vec<u8>) {
        item.0.encode(out);
        item.1.encode(out);
        item.2.encode(out);
        item.3.encode(out);
    }

    fn decode_item(&self, input: &mut &[u8]) -> Result<Entry<S, M, O>, DecodeError> {
        Ok((
            mp_model::Decode::decode(input)?,
            mp_model::Decode::decode(input)?,
            mp_model::Decode::decode(input)?,
            self.template.decode_like(input)?,
        ))
    }
}

/// What [`insert_successor`] returns for a first-visit successor: the
/// group element δ plus the canonical representative (`None` = the
/// concrete pair itself is the representative, so callers can move it into
/// the frontier entry without a clone).
pub(crate) type FreshSuccessor<S, M, O> = (usize, Option<(GlobalState<S, M>, O)>);

/// Canonicalizes a freshly generated successor once and inserts its
/// visited-store key — the canonical orbit representative under a
/// non-trivial group (`trivial` is hoisted by the engines so hot loops skip
/// the dyn call), the concrete pair itself otherwise.
///
/// Returns `None` when the key was already visited.
pub(crate) fn insert_successor<S, M, O>(
    trivial: bool,
    symmetry: &dyn Symmetry<S, M, O>,
    store: &mp_store::CanonicalStore<(GlobalState<S, M>, O)>,
    concrete: &(GlobalState<S, M>, O),
    trace: &TraceHandle,
) -> Option<FreshSuccessor<S, M, O>>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let (canonical, delta) = if trivial {
        (None, 0)
    } else {
        let (cs, co, e) = symmetry.canonicalize_traced(&concrete.0, &concrete.1, trace);
        (Some((cs, co)), e)
    };
    let _lookup = trace.span(Phase::StoreLookup);
    let inserted = match &canonical {
        Some(key) => store.insert_ref(key),
        None => store.insert_ref(concrete),
    };
    inserted.then_some((delta, canonical))
}

/// Rebuilds the instance path from the root to node `at` out of the
/// (possibly spilled) parent table.
fn rebuild_path<M: Message>(
    nodes: &mut SpillLog<PathEntry<M>, PlainCodec>,
    mut at: usize,
) -> Vec<TransitionInstance<M>> {
    let mut path = Vec::new();
    while let Some((parent, instance)) = nodes.get(at) {
        path.push(instance);
        at = parent;
    }
    path.reverse();
    path
}

/// Runs a stateful breadth-first search and returns the report.
///
/// Dispatches on the property class: safety properties run the level-by-level
/// search below. Liveness properties need a cycle-capable search — a
/// breadth-first frontier has no stack to detect lassos against — so they
/// are routed to the fairness-aware liveness DFS of [`crate::liveness`]
/// (the report's strategy label says so).
///
/// With a non-trivial [`Symmetry`], successors are canonicalized once and
/// the canonical representatives keyed into the visited store *and* carried
/// by the frontier (see the module docs); exploration and counterexample
/// paths stay concrete.
pub fn run_stateful_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let trivial = symmetry.is_trivial();
    let mut strategy = format!("stateful-bfs+{}", reducer.name());
    if !trivial {
        strategy.push('+');
        strategy.push_str(&symmetry.label());
    }
    if config.frontier.spills() {
        strategy.push_str("+spill");
    }
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    // Keys are pre-canonicalized by this engine (one canonicalization per
    // successor, shared between the store key and the frontier entry), so
    // the store's canonical wrapper runs in passthrough mode.
    let store = config.store.build_canonical::<(GlobalState<S, M>, O)>(None);
    let store_name = if trivial {
        store.name()
    } else {
        canonical_label(store.name())
    };
    let mut nodes: SpillLog<PathEntry<M>, PlainCodec> = config.frontier.build_log(PlainCodec);
    nodes.set_trace(trace.handle());
    let mut frontier = config.frontier.build(EntryCodec {
        template: initial_observer.clone(),
    });
    frontier.set_trace(trace.handle());

    // Checkpoint identity: the manifest records the protocol structure, the
    // full strategy label (engine + reducer + symmetry + spill) and the
    // semantic configuration fields, so a resume under anything that would
    // explore a different state space is refused.
    let spec_fp = spec.structure_fingerprint();
    let identity = format!(
        "{} sym={}",
        config.checkpoint_identity(),
        if trivial {
            "off".to_string()
        } else {
            symmetry.label()
        }
    );
    let every = config
        .checkpoint
        .as_ref()
        .map(|c| c.every_levels.max(1))
        .unwrap_or(1);
    let entry_codec = EntryCodec {
        template: initial_observer.clone(),
    };
    let mut ckpt: Option<CheckpointWriter> = None;
    let mut scratch: Vec<u8> = Vec::new();
    let mut store_hits_base = 0usize;

    macro_rules! finish_stats {
        ($verdict:expr) => {
            stats.elapsed = start.elapsed();
            stats.record_store(store_name, store.stats());
            stats.store_hits += store_hits_base;
            stats.record_frontier(frontier.name(), frontier.stats(), nodes.spilled_bytes());
            stats.phases = trace.phase_times();
            trace.finish($verdict);
        };
    }
    macro_rules! ckpt_write {
        ($result:expr) => {
            $result.unwrap_or_else(|e| panic!("checkpoint write failed: {e}"))
        };
    }
    macro_rules! ckpt_counters {
        () => {
            [
                ("states", stats.states as u64),
                ("expansions", stats.expansions as u64),
                ("transitions", stats.transitions_executed as u64),
                ("revisits", stats.revisits as u64),
                ("reduced_states", stats.reduced_states as u64),
                ("proviso_expansions", stats.proviso_expansions as u64),
                ("max_depth", stats.max_depth as u64),
            ]
        };
    }

    let resume_manifest = match &config.checkpoint {
        Some(c) if manifest_exists(&c.dir) => {
            let manifest = Manifest::load(&c.dir)
                .unwrap_or_else(|e| panic!("checkpoint manifest in {}: {e}", c.dir.display()));
            manifest
                .validate(spec_fp, &strategy, &identity)
                .unwrap_or_else(|e| panic!("refusing to resume from {}: {e}", c.dir.display()));
            Some(manifest)
        }
        _ => None,
    };

    let mut depth = 0usize;
    if let Some(manifest) = &resume_manifest {
        let dir = &config
            .checkpoint
            .as_ref()
            .expect("a resume manifest implies a checkpoint config")
            .dir;
        // Rebuild the visited set from every committed level; the last one
        // also re-seeds the frontier, exactly as the original run left it.
        for level in 0..=manifest.level {
            let raws = manifest
                .read_level(dir, level)
                .unwrap_or_else(|e| panic!("checkpoint in {}: {e}", dir.display()));
            let last = level == manifest.level;
            for raw in raws {
                let mut input = raw.as_slice();
                let entry = entry_codec
                    .decode_item(&mut input)
                    .unwrap_or_else(|e| panic!("corrupted checkpoint entry: {e}"));
                if last {
                    store.insert((entry.2.clone(), entry.3.clone()));
                    frontier.push(entry);
                } else {
                    store.insert((entry.2, entry.3));
                }
            }
        }
        // Replay the parent log so node indices keep their meaning for
        // counterexample reconstruction.
        for raw in manifest
            .read_parents(dir)
            .unwrap_or_else(|e| panic!("checkpoint in {}: {e}", dir.display()))
        {
            let mut input = raw.as_slice();
            let record: PathEntry<M> = mp_model::Decode::decode(&mut input)
                .unwrap_or_else(|e| panic!("corrupted checkpoint parent record: {e}"));
            nodes.push(record);
        }
        depth = manifest.level;
        stats.states = manifest.counter("states") as usize;
        stats.expansions = manifest.counter("expansions") as usize;
        stats.transitions_executed = manifest.counter("transitions") as usize;
        stats.revisits = manifest.counter("revisits") as usize;
        stats.reduced_states = manifest.counter("reduced_states") as usize;
        stats.proviso_expansions = manifest.counter("proviso_expansions") as usize;
        stats.max_depth = manifest.counter("max_depth") as usize;
        // The rebuild inserts are all store misses, so the final hit count
        // needs the committed run's hits folded back in (hits == revisits
        // for the stateful engines).
        store_hits_base = stats.revisits;
        ckpt = Some(
            CheckpointWriter::resume(dir, manifest)
                .unwrap_or_else(|e| panic!("cannot resume checkpoint in {}: {e}", dir.display())),
        );
        trace.resume(depth as u64, stats.states as u64);
    } else {
        if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
            stats.states = 1;
            trace.add(Counter::States, 1);
            finish_stats!("violated");
            let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }

        // Validated groups fix the initial state, so its canonical form is
        // itself; canonicalize anyway so the key discipline has no exceptions
        // (mirrors the DFS engine).
        let (entry_state, entry_observer, initial_delta) = if trivial {
            (initial, initial_observer, 0)
        } else {
            symmetry.canonicalize_traced(&initial, &initial_observer, &trace)
        };
        store.insert((entry_state.clone(), entry_observer.clone()));
        let root = nodes.push(None);
        let root_entry = (root, initial_delta, entry_state, entry_observer);
        stats.states = 1;
        trace.add(Counter::States, 1);
        if let Some(c) = &config.checkpoint {
            let mut writer = CheckpointWriter::new(&c.dir)
                .unwrap_or_else(|e| panic!("cannot start checkpoint in {}: {e}", c.dir.display()));
            ckpt_write!(writer.begin_level(0));
            scratch.clear();
            entry_codec.encode_item(&root_entry, &mut scratch);
            ckpt_write!(writer.push_entry(&scratch));
            scratch.clear();
            let root_record: PathEntry<M> = None;
            root_record.encode(&mut scratch);
            ckpt_write!(writer.push_parent(&scratch));
            ckpt_write!(writer.seal_level());
            ckpt_write!(writer.commit(0, spec_fp, &strategy, &identity, &ckpt_counters!()));
            ckpt = Some(writer);
        }
        frontier.push(root_entry);
    }
    let mut level_obs = LevelObserver::new(&trace);
    if level_obs.enabled() {
        level_obs.seed(store.len() as u64, store.stats().hits as u64);
    }
    loop {
        let width = frontier.advance_level();
        if width == 0 {
            break;
        }
        trace.record(Histogram::LevelWidth, width as u64);
        depth += 1;
        stats.max_depth = stats.max_depth.max(depth);
        trace.add(Counter::Depth, depth as u64);
        level_obs.begin_level();
        if let Some(writer) = ckpt.as_mut() {
            ckpt_write!(writer.begin_level(depth));
        }

        while let Some((node_idx, delta, key_state, key_observer)) = frontier.pop() {
            // δ⁻¹ maps the stored orbit representative back to the concrete
            // state this entry was generated as.
            let (state, observer) = if delta == 0 {
                (key_state, key_observer)
            } else {
                symmetry.apply_element(symmetry.inverse(delta), &key_state, &key_observer)
            };
            stats.expansions += 1;
            trace.add(Counter::Expansions, 1);

            let all = {
                let _span = trace.span(Phase::Expansion);
                enabled_instances(spec, &state)
            };
            if config.check_deadlocks && all.is_empty() {
                let path = rebuild_path(&mut nodes, node_idx);
                finish_stats!("violated");
                let cx = Counterexample::new(
                    spec,
                    property.name(),
                    "deadlock: no transition enabled",
                    &path,
                    &state,
                );
                return RunReport {
                    verdict: Verdict::Violated(Box::new(cx)),
                    stats,
                    strategy,
                };
            }
            let reduction = reducer.reduce_traced(spec, &state, all, &trace);
            if reduction.reduced {
                stats.reduced_states += 1;
            }

            for instance in reduction.explore {
                let concrete = {
                    let _span = trace.span(Phase::Expansion);
                    let next_state = execute_enabled(spec, &state, &instance);
                    let next_observer = observer.update(spec, &state, &instance, &next_state);
                    (next_state, next_observer)
                };
                stats.transitions_executed += 1;
                trace.add(Counter::Transitions, 1);

                let Some((delta, canonical)) =
                    insert_successor(trivial, symmetry.as_ref(), &store, &concrete, &trace)
                else {
                    stats.revisits += 1;
                    trace.add(Counter::Revisits, 1);
                    continue;
                };

                if let PropertyStatus::Violated(reason) =
                    property.evaluate(&concrete.0, &concrete.1)
                {
                    let mut path = rebuild_path(&mut nodes, node_idx);
                    path.push(instance);
                    stats.states += 1;
                    trace.add(Counter::States, 1);
                    finish_stats!("violated");
                    let cx = Counterexample::new(spec, property.name(), reason, &path, &concrete.0);
                    return RunReport {
                        verdict: Verdict::Violated(Box::new(cx)),
                        stats,
                        strategy,
                    };
                }

                if stats.states >= config.max_states {
                    finish_stats!("limit");
                    return RunReport {
                        verdict: Verdict::LimitReached {
                            what: format!("state limit of {}", config.max_states),
                        },
                        stats,
                        strategy,
                    };
                }
                if let Some(limit) = config.time_limit {
                    if start.elapsed() > limit {
                        finish_stats!("limit");
                        return RunReport {
                            verdict: Verdict::LimitReached {
                                what: format!("time limit of {limit:?}"),
                            },
                            stats,
                            strategy,
                        };
                    }
                }

                let record = Some((node_idx, instance));
                if let Some(writer) = ckpt.as_mut() {
                    scratch.clear();
                    record.encode(&mut scratch);
                    ckpt_write!(writer.push_parent(&scratch));
                }
                let new_index = nodes.push(record);
                let (entry_state, entry_observer) = match canonical {
                    Some(key) => key,
                    None => concrete,
                };
                let entry = (new_index, delta, entry_state, entry_observer);
                if let Some(writer) = ckpt.as_mut() {
                    scratch.clear();
                    entry_codec.encode_item(&entry, &mut scratch);
                    ckpt_write!(writer.push_entry(&scratch));
                }
                frontier.push(entry);
                stats.states += 1;
                trace.add(Counter::States, 1);
            }
        }

        // Level boundary: let the external-memory store merge its sorted
        // runs (a no-op for the in-memory backends), then persist the
        // completed level.
        {
            let _span = trace.span(Phase::RunMerge);
            store.maintain();
        }
        if let Some(writer) = ckpt.as_mut() {
            ckpt_write!(writer.seal_level());
            if depth.is_multiple_of(every) {
                ckpt_write!(writer.commit(depth, spec_fp, &strategy, &identity, &ckpt_counters!()));
            }
        }

        // Per-level time-series and memory gauges; `enabled()` keeps every
        // stats read off the untraced path.
        if level_obs.enabled() {
            let store_stats = store.stats();
            let frontier_stats = frontier.stats();
            let summary = level_obs.end_level(
                depth as u64,
                width as u64,
                store.len() as u64,
                store_stats.hits as u64,
                frontier_stats.peak_bytes as u64,
            );
            trace.level_summary(&summary);
            trace.sample_gauge(Gauge::StoreBytes, store_stats.approx_bytes as u64);
            trace.sample_gauge(Gauge::FrontierBytes, frontier_stats.peak_bytes as u64);
            trace.sample_gauge(Gauge::ParentLogBytes, nodes.approx_bytes() as u64);
            // With symmetry on, the visited store *is* the canonical-
            // representative cache (keys are pre-canonicalized orbit reps).
            let canon_bytes = if trivial { 0 } else { store_stats.approx_bytes };
            trace.sample_gauge(Gauge::CanonicalCacheBytes, canon_bytes as u64);
        }
    }

    finish_stats!("verified");
    RunReport {
        verdict: Verdict::Verified,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};
    use mp_store::FrontierConfig;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn bfs_and_dfs_agree_on_state_counts() {
        let spec = independent(3, 2);
        let bfs = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        assert!(bfs.verdict.is_verified());
        assert_eq!(bfs.stats.states, 27);
        assert_eq!(bfs.stats.frontier_backend, "mem");
    }

    #[test]
    fn bfs_finds_shortest_counterexample() {
        let spec = independent(2, 4);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-2", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 2) {
                    Err("reached 2".into())
                } else {
                    Ok(())
                }
            });
        let report = run_stateful_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        let cx = report.verdict.counterexample().unwrap();
        assert_eq!(cx.len(), 2, "BFS must find the 2-step shortest violation");
    }

    #[test]
    fn bfs_with_spor_still_verifies() {
        let spec = independent(3, 2);
        let reducer = SporReducer::new(&spec);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::stateful_bfs(),
        );
        assert!(report.verdict.is_verified());
        assert!(report.stats.states < 27);
    }

    #[test]
    fn bfs_state_limit() {
        let spec = independent(3, 3);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs().with_max_states(4),
        );
        assert!(matches!(report.verdict, Verdict::LimitReached { .. }));
    }

    #[test]
    fn bfs_deadlock_check() {
        let spec = independent(1, 1);
        let report = run_stateful_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::stateful_bfs().with_deadlock_check(true),
        );
        assert!(report.verdict.is_violated());
    }

    #[test]
    fn disk_frontier_matches_mem_frontier_exactly() {
        // A tiny watermark forces multi-segment spilling even on this small
        // model; verdict, state count and counterexample must be identical.
        let spec = independent(3, 3);
        let run = |frontier: FrontierConfig| {
            run_stateful_bfs(
                &spec,
                &Invariant::always_true("true").into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                &CheckerConfig::stateful_bfs().with_frontier(frontier),
            )
        };
        let mem = run(FrontierConfig::Mem);
        let disk = run(FrontierConfig::disk_with_watermark(64));
        assert!(mem.verdict.is_verified() && disk.verdict.is_verified());
        assert_eq!(mem.stats.states, disk.stats.states);
        assert_eq!(
            mem.stats.transitions_executed,
            disk.stats.transitions_executed
        );
        assert_eq!(mem.stats.max_depth, disk.stats.max_depth);
        assert_eq!(disk.stats.frontier_backend, "disk");
        assert!(
            disk.stats.frontier_spilled_bytes > 0,
            "watermark must spill"
        );
        assert!(disk.strategy.ends_with("+spill"));
        assert!(!mem.strategy.contains("spill"));
    }

    #[test]
    fn spilled_counterexample_path_is_identical() {
        let spec = independent(2, 4);
        let property = || -> Invariant<u8, Tok, NullObserver> {
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            })
        };
        let run = |frontier: FrontierConfig| {
            run_stateful_bfs(
                &spec,
                &property().into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                &CheckerConfig::stateful_bfs().with_frontier(frontier),
            )
        };
        let mem = run(FrontierConfig::Mem);
        let disk = run(FrontierConfig::disk_with_watermark(16));
        let mem_cx = mem.verdict.counterexample().unwrap();
        let disk_cx = disk.verdict.counterexample().unwrap();
        assert_eq!(mem_cx.len(), disk_cx.len());
        assert_eq!(mem_cx.steps, disk_cx.steps, "identical concrete path");
    }
}
