//! The top-level [`Checker`] facade.
//!
//! A [`Checker`] bundles a protocol, a property, an observer, a reduction
//! strategy and a [`CheckerConfig`], and dispatches to one of the search
//! engines. It is the API every example, test and benchmark in this
//! repository goes through.

use std::sync::Arc;

use mp_model::{LocalState, Message, Permutable, ProtocolSpec};
use mp_por::{NoReduction, Reducer, SeedHeuristic, SporReducer};
use mp_symmetry::{NoSymmetry, OrbitReduction, RoleMap, Symmetry, SymmetryGroup};

use crate::{
    bfs::run_stateful_bfs, dfs::run_stateful_dfs, parallel::run_parallel_bfs,
    stateless::run_stateless, CheckerConfig, NullObserver, Observer, Property, RunReport,
    SearchStrategy,
};

/// A configured model-checking run.
///
/// # Examples
///
/// ```
/// use mp_checker::{Checker, Invariant};
/// use mp_model::{GlobalState, Message, Outcome, ProcessId, ProtocolSpec, TransitionSpec};
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// struct Tick;
/// mp_model::codec!(struct Tick);
/// impl Message for Tick {
///     fn kind(&self) -> &'static str { "TICK" }
/// }
///
/// let spec: ProtocolSpec<u8, Tick> = ProtocolSpec::builder("counter")
///     .process("c", 0u8)
///     .transition(
///         TransitionSpec::builder("inc", ProcessId(0))
///             .internal()
///             .guard(|l, _| *l < 3)
///             .effect(|l, _| Outcome::new(l + 1))
///             .build(),
///     )
///     .build()
///     .unwrap();
///
/// let report = Checker::new(&spec, Invariant::new("below-10", |s: &GlobalState<u8, Tick>, _| {
///     if s.locals[0] < 10 { Ok(()) } else { Err("overflow".into()) }
/// }))
/// .run();
/// assert!(report.verdict.is_verified());
/// assert_eq!(report.stats.states, 4);
/// ```
pub struct Checker<'a, S, M: Ord, O = NullObserver> {
    spec: &'a ProtocolSpec<S, M>,
    property: Property<S, M, O>,
    initial_observer: O,
    reducer: Arc<dyn Reducer<S, M>>,
    symmetry: Arc<dyn Symmetry<S, M, O>>,
    config: CheckerConfig,
}

impl<'a, S, M> Checker<'a, S, M, NullObserver>
where
    S: LocalState,
    M: Message,
{
    /// Creates a checker with the trivial observer, no reduction and the
    /// default configuration (stateful DFS). Accepts an [`Invariant`]
    /// (converted to a safety property) or any [`Property`] — safety,
    /// termination or leads-to.
    ///
    /// [`Invariant`]: crate::Invariant
    pub fn new(
        spec: &'a ProtocolSpec<S, M>,
        property: impl Into<Property<S, M, NullObserver>>,
    ) -> Self {
        Checker {
            spec,
            property: property.into(),
            initial_observer: NullObserver,
            reducer: Arc::new(NoReduction),
            symmetry: Arc::new(NoSymmetry),
            config: CheckerConfig::default(),
        }
    }
}

impl<'a, S, M, O> Checker<'a, S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    /// Creates a checker with an explicit observer initial value. Accepts an
    /// [`Invariant`](crate::Invariant) (converted to a safety property) or
    /// any [`Property`].
    pub fn with_observer(
        spec: &'a ProtocolSpec<S, M>,
        property: impl Into<Property<S, M, O>>,
        initial_observer: O,
    ) -> Self {
        Checker {
            spec,
            property: property.into(),
            initial_observer,
            reducer: Arc::new(NoReduction),
            symmetry: Arc::new(NoSymmetry),
            config: CheckerConfig::default(),
        }
    }

    /// Returns the protocol under verification.
    pub fn spec(&self) -> &ProtocolSpec<S, M> {
        self.spec
    }

    /// Uses the given reducer (builder style).
    pub fn reducer(mut self, reducer: impl Reducer<S, M> + 'static) -> Self {
        self.reducer = Arc::new(reducer);
        self
    }

    /// Uses static partial-order reduction with the default seed heuristic
    /// (builder style).
    pub fn spor(mut self) -> Self {
        self.reducer = Arc::new(SporReducer::new(self.spec));
        self
    }

    /// Uses static partial-order reduction with an explicit seed heuristic
    /// (builder style).
    pub fn spor_with_heuristic(mut self, heuristic: SeedHeuristic) -> Self {
        self.reducer = Arc::new(SporReducer::with_heuristic(self.spec, heuristic));
        self
    }

    /// Disables reduction (builder style; the default).
    pub fn unreduced(mut self) -> Self {
        self.reducer = Arc::new(NoReduction);
        self
    }

    /// Installs an explicit symmetry reduction (builder style). Every
    /// engine then inserts only canonical orbit representatives into its
    /// visited store; see `mp-symmetry` for the soundness contract.
    pub fn symmetry(mut self, symmetry: impl Symmetry<S, M, O> + 'static) -> Self {
        self.symmetry = Arc::new(symmetry);
        self
    }

    /// Disables symmetry reduction (builder style; the default).
    pub fn no_symmetry(mut self) -> Self {
        self.symmetry = Arc::new(NoSymmetry);
        self
    }

    /// Builds and installs the orbit reduction of a role declaration
    /// (builder style): the candidate permutations are validated against
    /// the protocol, so an asymmetric model degenerates to the identity
    /// group and the run is unaffected.
    pub fn with_role_symmetry(self, roles: &RoleMap) -> Self
    where
        S: Permutable,
        M: Permutable,
        O: Permutable + Ord,
    {
        let group = SymmetryGroup::build(self.spec, roles);
        self.symmetry(OrbitReduction::new(group))
    }

    /// Replaces the configuration (builder style).
    pub fn config(mut self, config: CheckerConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the configured engine and returns its report.
    pub fn run(&self) -> RunReport {
        match self.config.strategy {
            SearchStrategy::StatefulDfs => run_stateful_dfs(
                self.spec,
                &self.property,
                &self.initial_observer,
                self.reducer.as_ref(),
                &self.symmetry,
                &self.config,
            ),
            SearchStrategy::StatefulBfs => run_stateful_bfs(
                self.spec,
                &self.property,
                &self.initial_observer,
                self.reducer.as_ref(),
                &self.symmetry,
                &self.config,
            ),
            SearchStrategy::Stateless { dpor } => run_stateless(
                self.spec,
                &self.property,
                &self.initial_observer,
                dpor,
                &self.symmetry,
                &self.config,
            ),
            SearchStrategy::ParallelBfs { threads } => run_parallel_bfs(
                self.spec,
                &self.property,
                &self.initial_observer,
                self.reducer.as_ref(),
                &self.symmetry,
                threads,
                &self.config,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Invariant;
    use mp_model::{GlobalState, Kind, Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), ProcessId(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn all_strategies_agree_on_verification() {
        let spec = independent(3, 1);
        let strategies = [
            CheckerConfig::stateful_dfs(),
            CheckerConfig::stateful_bfs(),
            CheckerConfig::stateless(false),
            CheckerConfig::stateless(true),
            CheckerConfig::parallel_bfs(2),
        ];
        for config in strategies {
            let report = Checker::new(&spec, Invariant::always_true("true"))
                .config(config.clone())
                .run();
            assert!(
                report.verdict.is_verified(),
                "strategy {:?} failed to verify",
                config.strategy
            );
        }
    }

    #[test]
    fn all_strategies_agree_on_violation() {
        let spec = independent(2, 2);
        let property = || {
            Invariant::new("never-both-2", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().all(|l| *l == 2) {
                    Err("both counters reached 2".into())
                } else {
                    Ok(())
                }
            })
        };
        let strategies = [
            CheckerConfig::stateful_dfs(),
            CheckerConfig::stateful_bfs(),
            CheckerConfig::stateless(false),
            CheckerConfig::stateless(true),
            CheckerConfig::parallel_bfs(2),
        ];
        for config in strategies {
            let report = Checker::new(&spec, property()).config(config.clone()).run();
            assert!(
                report.verdict.is_violated(),
                "strategy {:?} missed the violation",
                config.strategy
            );
        }
    }

    #[test]
    fn spor_reduces_states_through_the_facade() {
        let spec = independent(4, 1);
        let unreduced = Checker::new(&spec, Invariant::always_true("true")).run();
        let reduced = Checker::new(&spec, Invariant::always_true("true"))
            .spor()
            .run();
        assert_eq!(unreduced.stats.states, 16);
        assert!(reduced.stats.states < unreduced.stats.states);
        assert!(reduced.verdict.is_verified());
    }

    #[test]
    fn heuristic_variant_is_available() {
        let spec = independent(3, 1);
        let report = Checker::new(&spec, Invariant::always_true("true"))
            .spor_with_heuristic(SeedHeuristic::Transaction)
            .run();
        assert!(report.verdict.is_verified());
    }

    #[test]
    fn strategy_label_reflects_engine_and_reducer() {
        let spec = independent(2, 1);
        let report = Checker::new(&spec, Invariant::always_true("true"))
            .spor()
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(report.strategy.contains("bfs"));
        assert!(report.strategy.contains("spor"));
        let text = report.to_string();
        assert!(text.contains("verified"));
    }
}
