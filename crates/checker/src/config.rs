//! Checker configuration and run reports.

use std::fmt;
use std::time::Duration;

use mp_store::{CheckpointConfig, FrontierConfig, StoreConfig};
use mp_trace::Tracer;

use crate::{Counterexample, ExplorationStats};

/// Which search engine to use.
///
/// The paper's experiments use three engines: unreduced or SPOR-reduced
/// *stateful* search (MP-Basset), and *stateless* search for DPOR (Basset);
/// see the footnotes of Table I. The parallel engine is an extension of this
/// reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchStrategy {
    /// Depth-first search with a visited-state store (stateful search).
    #[default]
    StatefulDfs,
    /// Breadth-first search with a visited-state store. Finds shortest
    /// counterexamples.
    StatefulBfs,
    /// Stateless depth-first search (no visited set); required by dynamic
    /// POR, which must revisit subtrees to install backtrack points.
    Stateless {
        /// Enable Flanagan–Godefroid dynamic POR.
        dpor: bool,
    },
    /// Level-synchronous parallel breadth-first search (extension; does not
    /// reconstruct counterexample paths).
    ParallelBfs {
        /// Number of worker threads (0 = number of available CPUs).
        threads: usize,
    },
}

impl fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchStrategy::StatefulDfs => write!(f, "stateful-dfs"),
            SearchStrategy::StatefulBfs => write!(f, "stateful-bfs"),
            SearchStrategy::Stateless { dpor: true } => write!(f, "stateless-dpor"),
            SearchStrategy::Stateless { dpor: false } => write!(f, "stateless"),
            SearchStrategy::ParallelBfs { threads } => write!(f, "parallel-bfs({threads})"),
        }
    }
}

/// Configuration of a model-checking run.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Search engine.
    pub strategy: SearchStrategy,
    /// Abort after storing/expanding this many states.
    pub max_states: usize,
    /// Maximum path depth for the stateless engine (guards against cycles,
    /// which a stateless search would otherwise follow forever).
    pub max_depth: usize,
    /// Treat deadlock states (no enabled transition) as violations. Off by
    /// default because terminating protocols end in technical deadlocks.
    pub check_deadlocks: bool,
    /// Apply the stack (cycle) proviso: if a reduced expansion closes a
    /// cycle back into the DFS stack, re-expand the state fully. Needed for
    /// soundness of invariant checking on cyclic state graphs. The liveness
    /// search ([`crate::liveness`]) ignores this flag and applies the
    /// proviso unconditionally — reduced cycles are exactly what would hide
    /// a lasso.
    pub cycle_proviso: bool,
    /// Optional wall-clock budget; the run stops with a limit verdict when
    /// it is exceeded.
    pub time_limit: Option<Duration>,
    /// Which visited-state backend the stateful engines use (`mp-store`).
    /// The parallel engine upgrades [`StoreConfig::Exact`] to the sharded
    /// store so workers never serialise on a global visited-set lock; the
    /// stateless engine ignores this field. Selecting a fingerprint store
    /// makes `Verified` verdicts probabilistic — see the `mp-store` crate
    /// docs for the soundness contract.
    pub store: StoreConfig,
    /// Which frontier the breadth-first engines drive (`mp-store`). The
    /// in-memory frontier is the default; the disk frontier spills encoded
    /// states past its watermark so paper-scale fault sweeps fit in memory
    /// next to the visited set (strategy labels gain a `+spill` suffix).
    /// Exploration order is identical either way, so verdicts and state
    /// counts are byte-identical. The depth-first and stateless engines
    /// have no frontier and ignore this field.
    pub frontier: FrontierConfig,
    /// How many frontier entries the parallel BFS engine feeds to the
    /// worker pool per batch. `0` (the default) selects the engine's
    /// historical automatic size, `threads * 64`. Larger batches amortise
    /// coordinator round-trips; smaller ones bound the resident level size
    /// when the disk frontier is spilling. The sequential engines ignore
    /// this field.
    pub batch_size: usize,
    /// Checkpoint/resume directory for the breadth-first engines
    /// (`mp-store`). When set, every completed BFS level is persisted
    /// (frontier entries, parent records, counters plus a versioned
    /// manifest) and a later run pointed at the same directory resumes at
    /// the last committed level with byte-identical verdicts and counters.
    /// The manifest records the spec fingerprint and this configuration's
    /// identity, so resuming under a different protocol or search
    /// configuration is refused. The depth-first and stateless engines
    /// ignore this field. See `docs/ON_DISK_FORMATS.md` for the layout.
    pub checkpoint: Option<CheckpointConfig>,
    /// Observability sink (`mp-trace`). The default disabled tracer makes
    /// every instrumentation point a no-op — no clock reads, no atomics
    /// beyond one pointer check. An enabled tracer gives each run a
    /// heartbeat (progress lines / NDJSON events), per-phase wall-clock
    /// attribution (reported in [`ExplorationStats::phases`]) and metric
    /// histograms. Verdicts and state counts are identical either way.
    pub trace: Tracer,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            strategy: SearchStrategy::StatefulDfs,
            max_states: 20_000_000,
            max_depth: 100_000,
            check_deadlocks: false,
            cycle_proviso: true,
            time_limit: None,
            store: StoreConfig::Exact,
            frontier: FrontierConfig::Mem,
            batch_size: 0,
            checkpoint: None,
            trace: Tracer::disabled(),
        }
    }
}

impl CheckerConfig {
    /// Configuration for a stateful depth-first run (the default).
    pub fn stateful_dfs() -> Self {
        Self::default()
    }

    /// Configuration for a stateful breadth-first run.
    pub fn stateful_bfs() -> Self {
        CheckerConfig {
            strategy: SearchStrategy::StatefulBfs,
            ..Self::default()
        }
    }

    /// Configuration for a stateless run, optionally with dynamic POR.
    pub fn stateless(dpor: bool) -> Self {
        CheckerConfig {
            strategy: SearchStrategy::Stateless { dpor },
            ..Self::default()
        }
    }

    /// Configuration for the parallel breadth-first engine.
    pub fn parallel_bfs(threads: usize) -> Self {
        CheckerConfig {
            strategy: SearchStrategy::ParallelBfs { threads },
            ..Self::default()
        }
    }

    /// Sets the state limit (builder style).
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Sets the depth limit (builder style).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the wall-clock budget (builder style).
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Enables or disables deadlock checking (builder style).
    pub fn with_deadlock_check(mut self, check: bool) -> Self {
        self.check_deadlocks = check;
        self
    }

    /// Selects the visited-state backend (builder style).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// Selects the BFS frontier backend (builder style);
    /// [`FrontierConfig::disk`] or
    /// [`FrontierConfig::disk_with_watermark`] turn on spilling.
    pub fn with_frontier(mut self, frontier: FrontierConfig) -> Self {
        self.frontier = frontier;
        self
    }

    /// Sets the parallel engine's batch size (builder style); `0` restores
    /// the automatic `threads * 64` default.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enables checkpoint/resume for the breadth-first engines (builder
    /// style): completed levels are persisted under the configured
    /// directory and a later run pointed at the same directory resumes at
    /// the last committed level.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// The configuration-identity string persisted in checkpoint manifests
    /// and re-validated on resume. It covers every field that changes what
    /// the search explores (strategy, store, frontier, deadlock checking,
    /// the cycle proviso) and deliberately omits run *budgets* (state,
    /// depth and time limits) and observability settings — resuming with a
    /// bigger budget or a different tracer is exactly the point.
    pub fn checkpoint_identity(&self) -> String {
        format!(
            "strategy={} store={} frontier={} deadlocks={} proviso={}",
            self.strategy, self.store, self.frontier, self.check_deadlocks, self.cycle_proviso
        )
    }

    /// Installs an observability tracer (builder style); every engine then
    /// emits a run header, heartbeat progress, a phase summary and a final
    /// verdict event for each run it executes.
    pub fn with_trace(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }
}

/// Outcome of a model-checking run.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds in every explored state and the exploration was
    /// exhaustive (within the configured strategy's guarantees).
    Verified,
    /// A counterexample was found.
    Violated(Box<Counterexample>),
    /// A resource limit (states, depth, time) stopped the run before it
    /// finished; the property was not violated in the explored portion.
    LimitReached {
        /// Which limit stopped the run.
        what: String,
    },
}

impl Verdict {
    /// Returns `true` if the run verified the property exhaustively.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// Returns `true` if a counterexample was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// Returns the counterexample, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Violated(cx) => Some(cx),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => write!(f, "verified"),
            Verdict::Violated(cx) => write!(f, "counterexample found ({} steps)", cx.len()),
            Verdict::LimitReached { what } => write!(f, "limit reached: {what}"),
        }
    }
}

/// The report returned by every engine: verdict plus statistics.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The verdict of the run.
    pub verdict: Verdict,
    /// Exploration statistics.
    pub stats: ExplorationStats,
    /// Name of the strategy that produced this report (engine + reducer).
    pub strategy: String,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.strategy, self.verdict, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = CheckerConfig::default();
        assert_eq!(c.strategy, SearchStrategy::StatefulDfs);
        assert!(c.cycle_proviso);
        assert!(!c.check_deadlocks);
        assert!(c.time_limit.is_none());
        assert_eq!(c.store, StoreConfig::Exact);
        assert_eq!(c.frontier, FrontierConfig::Mem);
        assert_eq!(c.batch_size, 0, "0 = the automatic threads*64 batch");
    }

    #[test]
    fn builder_methods_compose() {
        let c = CheckerConfig::stateless(true)
            .with_max_states(10)
            .with_max_depth(20)
            .with_time_limit(Duration::from_secs(1))
            .with_deadlock_check(true)
            .with_store(StoreConfig::fingerprint(32))
            .with_frontier(FrontierConfig::disk_with_watermark(1024))
            .with_batch_size(256);
        assert_eq!(c.strategy, SearchStrategy::Stateless { dpor: true });
        assert_eq!(c.max_states, 10);
        assert_eq!(c.max_depth, 20);
        assert_eq!(c.batch_size, 256);
        assert!(c.check_deadlocks);
        assert_eq!(c.time_limit, Some(Duration::from_secs(1)));
        assert_eq!(c.store, StoreConfig::fingerprint(32));
        assert_eq!(
            c.frontier,
            FrontierConfig::Disk {
                watermark_bytes: 1024,
                delta: false
            }
        );
    }

    #[test]
    fn checkpoint_identity_covers_semantics_not_budgets() {
        let base = CheckerConfig::stateful_bfs();
        let id = base.checkpoint_identity();
        // Budgets and tracing may differ between the killed run and the
        // resumed one; the identity must not change.
        assert_eq!(
            base.clone().with_max_states(7).checkpoint_identity(),
            id,
            "state budget must not be part of the identity"
        );
        // Anything that changes what the search explores must change it.
        assert_ne!(
            base.clone()
                .with_store(StoreConfig::fingerprint(32))
                .checkpoint_identity(),
            id
        );
        assert_ne!(
            base.clone()
                .with_frontier(FrontierConfig::disk_with_watermark(64))
                .checkpoint_identity(),
            id
        );
        assert_ne!(base.with_deadlock_check(true).checkpoint_identity(), id);
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(SearchStrategy::StatefulDfs.to_string(), "stateful-dfs");
        assert_eq!(SearchStrategy::StatefulBfs.to_string(), "stateful-bfs");
        assert_eq!(
            SearchStrategy::Stateless { dpor: true }.to_string(),
            "stateless-dpor"
        );
        assert_eq!(
            SearchStrategy::ParallelBfs { threads: 4 }.to_string(),
            "parallel-bfs(4)"
        );
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Verified.is_verified());
        assert!(!Verdict::Verified.is_violated());
        assert!(Verdict::Verified.counterexample().is_none());
        let lim = Verdict::LimitReached {
            what: "states".into(),
        };
        assert!(!lim.is_verified());
        assert!(lim.to_string().contains("states"));
    }
}
