//! Counterexamples.
//!
//! "A counterexample is a path that violates the property" (paper, Section
//! II-A). When the search finds a violating state it reconstructs the path
//! from the initial state and reports the sequence of executed transitions,
//! the violating state and the reason returned by the property.

use std::fmt;

use mp_model::{GlobalState, LocalState, Message, ProcessId, ProtocolSpec, TransitionInstance};

/// One step of a counterexample path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterexampleStep {
    /// Name of the executed transition.
    pub transition: String,
    /// Process that executed it.
    pub process: ProcessId,
    /// Display name of that process in the protocol.
    pub process_name: String,
    /// The senders of the messages consumed by the step (empty for internal
    /// transitions).
    pub consumed_from: Vec<ProcessId>,
}

impl CounterexampleStep {
    /// Builds a step record from a transition instance.
    pub fn from_instance<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        instance: &TransitionInstance<M>,
    ) -> Self {
        CounterexampleStep {
            transition: spec.transition(instance.transition).name().to_string(),
            process: instance.process,
            process_name: spec.process_name(instance.process).to_string(),
            consumed_from: instance.senders(),
        }
    }
}

impl fmt::Display for CounterexampleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.transition, self.process_name)?;
        if !self.consumed_from.is_empty() {
            let senders: Vec<String> = self.consumed_from.iter().map(|p| p.to_string()).collect();
            write!(f, " consuming from {{{}}}", senders.join(", "))?;
        }
        Ok(())
    }
}

/// A property-violating execution: the path from the initial state and the
/// violating state itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Name of the violated property.
    pub property: String,
    /// Explanation returned by the property check.
    pub reason: String,
    /// The executed steps, in order.
    pub steps: Vec<CounterexampleStep>,
    /// A rendering of the violating global state.
    pub violating_state: String,
}

impl Counterexample {
    /// Builds a counterexample from a path of instances ending in
    /// `violating_state`.
    pub fn new<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        property: impl Into<String>,
        reason: impl Into<String>,
        path: &[TransitionInstance<M>],
        violating_state: &GlobalState<S, M>,
    ) -> Self {
        Counterexample {
            property: property.into(),
            reason: reason.into(),
            steps: path
                .iter()
                .map(|i| CounterexampleStep::from_instance(spec, i))
                .collect(),
            violating_state: format!("{violating_state:#?}"),
        }
    }

    /// Length of the counterexample path (number of transitions).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the violation occurs already in the initial state.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample to `{}` ({} steps): {}",
            self.property,
            self.steps.len(),
            self.reason
        )?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, step)?;
        }
        writeln!(f, "violating state:")?;
        for line in self.violating_state.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{
        Envelope, Kind, Outcome, ProcessId, ProtocolSpec, TransitionId, TransitionSpec,
    };

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Ping;

    impl Message for Ping {
        fn kind(&self) -> Kind {
            "PING"
        }
    }

    fn spec() -> ProtocolSpec<u8, Ping> {
        ProtocolSpec::builder("cx")
            .process("sender", 0u8)
            .process("receiver", 0u8)
            .transition(
                TransitionSpec::builder("SEND", ProcessId(0))
                    .internal()
                    .effect(|_, _| Outcome::new(1).send(ProcessId(1), Ping))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("RECV", ProcessId(1))
                    .single_input("PING")
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn steps_render_transition_and_process() {
        let spec = spec();
        let inst = TransitionInstance::new(
            TransitionId(1),
            ProcessId(1),
            vec![Envelope::new(ProcessId(0), Ping)],
        );
        let step = CounterexampleStep::from_instance(&spec, &inst);
        assert_eq!(step.transition, "RECV");
        assert_eq!(step.process_name, "receiver");
        assert_eq!(step.consumed_from, vec![ProcessId(0)]);
        let rendered = step.to_string();
        assert!(rendered.contains("RECV"));
        assert!(rendered.contains("p0"));
    }

    #[test]
    fn counterexample_display_lists_path() {
        let spec = spec();
        let path = vec![
            TransitionInstance::new(TransitionId(0), ProcessId(0), Vec::new()),
            TransitionInstance::new(
                TransitionId(1),
                ProcessId(1),
                vec![Envelope::new(ProcessId(0), Ping)],
            ),
        ];
        let state = spec.initial_state();
        let cx = Counterexample::new(&spec, "agreement", "values differ", &path, &state);
        assert_eq!(cx.len(), 2);
        assert!(!cx.is_empty());
        let text = cx.to_string();
        assert!(text.contains("agreement"));
        assert!(text.contains("SEND"));
        assert!(text.contains("RECV"));
        assert!(text.contains("values differ"));
    }

    #[test]
    fn empty_counterexample_means_initial_violation() {
        let spec = spec();
        let state = spec.initial_state();
        let cx = Counterexample::new(&spec, "inv", "bad init", &[], &state);
        assert!(cx.is_empty());
        assert_eq!(cx.len(), 0);
    }
}
