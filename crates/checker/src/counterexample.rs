//! Counterexamples: finite violating paths and liveness **lassos**.
//!
//! "A counterexample is a path that violates the property" (paper, Section
//! II-A). When the search finds a violating state it reconstructs the path
//! from the initial state and reports the sequence of executed transitions,
//! the violating state and the reason returned by the property.
//!
//! Liveness properties (termination, leads-to) are violated by *maximal
//! executions*, not single states; their counterexamples are lassos: a
//! finite **stem** from the initial state followed by a **cycle** the system
//! can repeat forever without discharging the outstanding obligation. A
//! lasso with an empty cycle denotes a maximal finite execution — the system
//! deadlocks (quiesces) with the obligation still pending and stutters in
//! that final state forever.

use std::fmt;

use mp_model::{GlobalState, LocalState, Message, ProcessId, ProtocolSpec, TransitionInstance};

/// One step of a counterexample path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterexampleStep {
    /// Name of the executed transition.
    pub transition: String,
    /// Process that executed it.
    pub process: ProcessId,
    /// Display name of that process in the protocol.
    pub process_name: String,
    /// The senders of the messages consumed by the step (empty for internal
    /// transitions).
    pub consumed_from: Vec<ProcessId>,
}

impl CounterexampleStep {
    /// Builds a step record from a transition instance.
    pub fn from_instance<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        instance: &TransitionInstance<M>,
    ) -> Self {
        CounterexampleStep {
            transition: spec.transition(instance.transition).name().to_string(),
            process: instance.process,
            process_name: spec.process_name(instance.process).to_string(),
            consumed_from: instance.senders(),
        }
    }
}

impl fmt::Display for CounterexampleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.transition, self.process_name)?;
        if !self.consumed_from.is_empty() {
            let senders: Vec<String> = self.consumed_from.iter().map(|p| p.to_string()).collect();
            write!(f, " consuming from {{{}}}", senders.join(", "))?;
        }
        Ok(())
    }
}

/// A property-violating execution: the path from the initial state and the
/// violating state itself. Liveness violations additionally carry a
/// [`cycle`](Counterexample::cycle) — see the module docs on lassos.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Name of the violated property.
    pub property: String,
    /// Explanation returned by the property check.
    pub reason: String,
    /// The executed steps, in order. For a lasso this is the **stem**: the
    /// path from the initial state to the cycle entry (or to the premature
    /// quiescent state when `cycle` is empty).
    pub steps: Vec<CounterexampleStep>,
    /// The steps of the repeatable cycle of a lasso, in order; executing
    /// them from the violating state returns to it. Empty for safety
    /// counterexamples and for deadlock-style liveness counterexamples
    /// (the system stutters in the final state).
    pub cycle: Vec<CounterexampleStep>,
    /// `true` for liveness counterexamples (a lasso: stem + cycle, or stem +
    /// stutter when `cycle` is empty).
    pub is_lasso: bool,
    /// A rendering of the violating global state: the first violating state
    /// for safety, the cycle-entry (or quiescent) state for lassos.
    pub violating_state: String,
}

impl Counterexample {
    /// Builds a counterexample from a path of instances ending in
    /// `violating_state`.
    pub fn new<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        property: impl Into<String>,
        reason: impl Into<String>,
        path: &[TransitionInstance<M>],
        violating_state: &GlobalState<S, M>,
    ) -> Self {
        Counterexample {
            property: property.into(),
            reason: reason.into(),
            steps: path
                .iter()
                .map(|i| CounterexampleStep::from_instance(spec, i))
                .collect(),
            cycle: Vec::new(),
            is_lasso: false,
            violating_state: format!("{violating_state:#?}"),
        }
    }

    /// Builds a lasso counterexample: `stem` leads from the initial state to
    /// `entry_state`, and `cycle` (possibly empty, meaning the execution
    /// ends and stutters there) returns to it.
    pub fn lasso<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        property: impl Into<String>,
        reason: impl Into<String>,
        stem: &[TransitionInstance<M>],
        cycle: &[TransitionInstance<M>],
        entry_state: &GlobalState<S, M>,
    ) -> Self {
        Counterexample {
            property: property.into(),
            reason: reason.into(),
            steps: stem
                .iter()
                .map(|i| CounterexampleStep::from_instance(spec, i))
                .collect(),
            cycle: cycle
                .iter()
                .map(|i| CounterexampleStep::from_instance(spec, i))
                .collect(),
            is_lasso: true,
            violating_state: format!("{entry_state:#?}"),
        }
    }

    /// Length of the counterexample (number of transitions: stem plus, for
    /// lassos, one unrolling of the cycle).
    pub fn len(&self) -> usize {
        self.steps.len() + self.cycle.len()
    }

    /// Returns `true` if the violation occurs already in the initial state
    /// (safety) or the initial state itself is the quiescent/looping state
    /// of a stem-less lasso.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && self.cycle.is_empty()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_lasso {
            writeln!(
                f,
                "lasso counterexample to `{}` ({} stem + {} cycle steps): {}",
                self.property,
                self.steps.len(),
                self.cycle.len(),
                self.reason
            )?;
        } else {
            writeln!(
                f,
                "counterexample to `{}` ({} steps): {}",
                self.property,
                self.steps.len(),
                self.reason
            )?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, step)?;
        }
        if self.is_lasso {
            if self.cycle.is_empty() {
                writeln!(f, "  ... execution ends here (stutters forever)")?;
            } else {
                writeln!(f, "  cycle (repeats forever):")?;
                for (i, step) in self.cycle.iter().enumerate() {
                    writeln!(f, "  {:>3}. {}", self.steps.len() + i + 1, step)?;
                }
            }
        }
        writeln!(f, "violating state:")?;
        for line in self.violating_state.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{
        Envelope, Kind, Outcome, ProcessId, ProtocolSpec, TransitionId, TransitionSpec,
    };

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Ping;
    mp_model::codec!(struct Ping);

    impl Message for Ping {
        fn kind(&self) -> Kind {
            "PING"
        }
    }

    fn spec() -> ProtocolSpec<u8, Ping> {
        ProtocolSpec::builder("cx")
            .process("sender", 0u8)
            .process("receiver", 0u8)
            .transition(
                TransitionSpec::builder("SEND", ProcessId(0))
                    .internal()
                    .effect(|_, _| Outcome::new(1).send(ProcessId(1), Ping))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("RECV", ProcessId(1))
                    .single_input("PING")
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn steps_render_transition_and_process() {
        let spec = spec();
        let inst = TransitionInstance::new(
            TransitionId(1),
            ProcessId(1),
            vec![Envelope::new(ProcessId(0), Ping)],
        );
        let step = CounterexampleStep::from_instance(&spec, &inst);
        assert_eq!(step.transition, "RECV");
        assert_eq!(step.process_name, "receiver");
        assert_eq!(step.consumed_from, vec![ProcessId(0)]);
        let rendered = step.to_string();
        assert!(rendered.contains("RECV"));
        assert!(rendered.contains("p0"));
    }

    #[test]
    fn counterexample_display_lists_path() {
        let spec = spec();
        let path = vec![
            TransitionInstance::new(TransitionId(0), ProcessId(0), Vec::new()),
            TransitionInstance::new(
                TransitionId(1),
                ProcessId(1),
                vec![Envelope::new(ProcessId(0), Ping)],
            ),
        ];
        let state = spec.initial_state();
        let cx = Counterexample::new(&spec, "agreement", "values differ", &path, &state);
        assert_eq!(cx.len(), 2);
        assert!(!cx.is_empty());
        let text = cx.to_string();
        assert!(text.contains("agreement"));
        assert!(text.contains("SEND"));
        assert!(text.contains("RECV"));
        assert!(text.contains("values differ"));
    }

    #[test]
    fn empty_counterexample_means_initial_violation() {
        let spec = spec();
        let state = spec.initial_state();
        let cx = Counterexample::new(&spec, "inv", "bad init", &[], &state);
        assert!(cx.is_empty());
        assert_eq!(cx.len(), 0);
        assert!(!cx.is_lasso);
    }

    #[test]
    fn lasso_display_shows_stem_and_cycle() {
        let spec = spec();
        let stem = vec![TransitionInstance::new(
            TransitionId(0),
            ProcessId(0),
            Vec::new(),
        )];
        let cycle = vec![TransitionInstance::new(
            TransitionId(1),
            ProcessId(1),
            vec![Envelope::new(ProcessId(0), Ping)],
        )];
        let state = spec.initial_state();
        let cx = Counterexample::lasso(&spec, "termination", "fair cycle", &stem, &cycle, &state);
        assert!(cx.is_lasso);
        assert_eq!(cx.len(), 2);
        let text = cx.to_string();
        assert!(text.contains("lasso counterexample"));
        assert!(text.contains("cycle (repeats forever)"));
        assert!(text.contains("RECV"));
    }

    #[test]
    fn deadlock_lasso_has_empty_cycle() {
        let spec = spec();
        let stem = vec![TransitionInstance::new(
            TransitionId(0),
            ProcessId(0),
            Vec::new(),
        )];
        let state = spec.initial_state();
        let cx = Counterexample::lasso(&spec, "termination", "stuck", &stem, &[], &state);
        assert!(cx.is_lasso);
        assert!(cx.cycle.is_empty());
        assert_eq!(cx.len(), 1);
        assert!(cx.to_string().contains("stutters forever"));
    }
}
