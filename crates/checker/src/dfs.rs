//! Stateful depth-first search.
//!
//! This is the workhorse engine of the reproduction (the analogue of
//! MP-Basset's stateful search inside JPF). It stores every visited
//! `(state, observer)` pair in the backend selected by
//! [`CheckerConfig::store`], asks the configured [`Reducer`] which enabled
//! instances to explore in each state, checks the invariant in every state,
//! and applies the **stack (cycle) proviso**: if a reduced expansion produces
//! a successor that is still on the DFS stack, the state is re-expanded fully
//! so that no transition is ignored forever (the "ignoring problem" of
//! partial-order reduction).
//!
//! The `on_stack` set used by the proviso is always exact (it is bounded by
//! the search depth), so with a fingerprint store only the *visited* set is
//! probabilistic, never the proviso.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use mp_store::StateStoreBackend;

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
    TransitionInstance,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;
use mp_trace::{Counter, Phase, TraceHandle};

use crate::{
    liveness::run_liveness_dfs, CheckerConfig, Counterexample, ExplorationStats, Observer,
    Property, PropertyStatus, RunReport, Verdict,
};

struct Frame<S, M: Ord, O> {
    state: GlobalState<S, M>,
    observer: O,
    /// The key this frame occupies in the `on_stack` set: the concrete
    /// `(state, observer)` pair, or its canonical orbit representative when
    /// symmetry reduction is active.
    stack_key: (GlobalState<S, M>, O),
    /// Instance that led into this state (None for the initial state).
    incoming: Option<TransitionInstance<M>>,
    /// Instances chosen by the reducer, explored in order.
    explore: Vec<TransitionInstance<M>>,
    /// Instances pruned by the reducer, re-added if the proviso fires.
    pruned: Vec<TransitionInstance<M>>,
    next: usize,
    reduced: bool,
}

/// Runs a stateful depth-first search and returns the report.
///
/// Dispatches on the property class: safety properties run the invariant
/// search below (unchanged semantics and state counts); liveness properties
/// (termination / leads-to) run the fairness-aware lasso search of
/// [`crate::liveness`], which this engine's on-stack cycle detector was
/// built for.
///
/// With a non-trivial [`Symmetry`], exploration stays concrete but the
/// visited store and the proviso's on-stack set are keyed by canonical
/// orbit representatives: a successor whose orbit was already visited is
/// pruned (a symmetric sibling's subtree covers it), and a successor whose
/// orbit is on the DFS stack closes a cycle *in the quotient graph*, firing
/// the cycle proviso. Counterexample paths remain fully concrete.
pub fn run_stateful_dfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let trivial = symmetry.is_trivial();
    let strategy = if trivial {
        format!("stateful-dfs+{}", reducer.name())
    } else {
        format!("stateful-dfs+{}+{}", reducer.name(), symmetry.label())
    };
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    // Keys are pre-canonicalized by this engine (the on-stack proviso needs
    // them too), so the store wrapper stays in passthrough mode.
    let store = config.store.build_canonical::<(GlobalState<S, M>, O)>(None);
    let store_label = |trivial: bool, name: &'static str| -> &'static str {
        if trivial {
            name
        } else {
            mp_store::canonical_label(name)
        }
    };
    let mut on_stack: HashSet<(GlobalState<S, M>, O)> = HashSet::new();
    let mut stack: Vec<Frame<S, M, O>> = Vec::new();

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    macro_rules! finish_stats {
        ($verdict:expr) => {
            stats.elapsed = start.elapsed();
            stats.record_store(store_label(trivial, store.name()), store.stats());
            stats.phases = trace.phase_times();
            trace.finish($verdict);
        };
    }

    // Check the initial state before exploring.
    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        trace.add(Counter::States, 1);
        finish_stats!("violated");
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    // Validated groups fix the initial state, so its canonical form is
    // itself; canonicalize anyway so the key discipline has no exceptions.
    let initial_key = if trivial {
        (initial.clone(), initial_observer.clone())
    } else {
        let (s, o, _) = symmetry.canonicalize_traced(&initial, &initial_observer, &trace);
        (s, o)
    };
    store.insert(initial_key.clone());
    on_stack.insert(initial_key.clone());
    stats.states = 1;
    stats.expansions = 1;
    trace.add(Counter::States, 1);
    trace.add(Counter::Expansions, 1);
    let first_frame = make_frame(
        spec,
        reducer,
        &mut stats,
        config,
        initial,
        initial_observer,
        initial_key,
        None,
        &trace,
    );
    if config.check_deadlocks && first_frame.explore.is_empty() && first_frame.pruned.is_empty() {
        finish_stats!("violated");
        let cx = Counterexample::new(
            spec,
            property.name(),
            "deadlock in the initial state",
            &[],
            &first_frame.state,
        );
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }
    stack.push(first_frame);

    while !stack.is_empty() {
        stats.max_depth = stats.max_depth.max(stack.len());
        trace.add(Counter::Depth, stack.len() as u64);
        let top = stack.last_mut().expect("stack checked non-empty");

        if top.next >= top.explore.len() {
            // Frame exhausted.
            let frame = stack.pop().expect("non-empty stack");
            on_stack.remove(&frame.stack_key);
            continue;
        }

        let instance = top.explore[top.next].clone();
        top.next += 1;
        let key = {
            let _span = trace.span(Phase::Expansion);
            let next_state = execute_enabled(spec, &top.state, &instance);
            let next_observer = top
                .observer
                .update(spec, &top.state, &instance, &next_state);
            (next_state, next_observer)
        };
        stats.transitions_executed += 1;
        trace.add(Counter::Transitions, 1);

        // With symmetry on, membership and the proviso are judged on the
        // canonical orbit representative; exploration stays concrete.
        let canon = (!trivial).then(|| {
            let (s, o, _) = symmetry.canonicalize_traced(&key.0, &key.1, &trace);
            (s, o)
        });
        let probe = canon.as_ref().unwrap_or(&key);

        // Cycle proviso: the successor closes a cycle into the DFS stack
        // (exactly, or modulo a symmetry permutation) and the current state
        // was expanded with a reduced set — re-expand it fully so no enabled
        // transition is postponed around the cycle.
        if config.cycle_proviso && top.reduced && on_stack.contains(probe) {
            top.explore.append(&mut top.pruned);
            top.reduced = false;
            stats.proviso_expansions += 1;
        }

        // A single insert doubles as the membership test (unified hit
        // accounting: a duplicate is a store hit = one revisit); the
        // by-reference form clones the key only when it is actually new.
        let inserted = {
            let _span = trace.span(Phase::StoreLookup);
            store.insert_ref(probe)
        };
        if !inserted {
            stats.revisits += 1;
            trace.add(Counter::Revisits, 1);
            continue;
        }

        let stack_key = match canon {
            Some(c) => c,
            None => key.clone(),
        };
        let (next_state, next_observer) = key;

        // Property check on the newly discovered state.
        if let PropertyStatus::Violated(reason) = property.evaluate(&next_state, &next_observer) {
            let mut path: Vec<TransitionInstance<M>> =
                stack.iter().filter_map(|f| f.incoming.clone()).collect();
            path.push(instance);
            stats.states += 1;
            trace.add(Counter::States, 1);
            finish_stats!("violated");
            let cx = Counterexample::new(spec, property.name(), reason, &path, &next_state);
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }

        if store.len() > config.max_states {
            finish_stats!("limit");
            return RunReport {
                verdict: Verdict::LimitReached {
                    what: format!("state limit of {}", config.max_states),
                },
                stats,
                strategy,
            };
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                finish_stats!("limit");
                return RunReport {
                    verdict: Verdict::LimitReached {
                        what: format!("time limit of {limit:?}"),
                    },
                    stats,
                    strategy,
                };
            }
        }

        on_stack.insert(stack_key.clone());
        stats.states += 1;
        stats.expansions += 1;
        trace.add(Counter::States, 1);
        trace.add(Counter::Expansions, 1);

        let frame = make_frame(
            spec,
            reducer,
            &mut stats,
            config,
            next_state,
            next_observer,
            stack_key,
            Some(instance.clone()),
            &trace,
        );

        if config.check_deadlocks && frame.explore.is_empty() && frame.pruned.is_empty() {
            let mut path: Vec<TransitionInstance<M>> =
                stack.iter().filter_map(|f| f.incoming.clone()).collect();
            path.push(instance);
            finish_stats!("violated");
            let cx = Counterexample::new(
                spec,
                property.name(),
                "deadlock: no transition enabled",
                &path,
                &frame.state,
            );
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }

        stack.push(frame);
    }

    finish_stats!("verified");
    RunReport {
        verdict: Verdict::Verified,
        stats,
        strategy,
    }
}

#[allow(clippy::too_many_arguments)] // a DFS frame genuinely has this many parts
fn make_frame<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    reducer: &dyn Reducer<S, M>,
    stats: &mut ExplorationStats,
    _config: &CheckerConfig,
    state: GlobalState<S, M>,
    observer: O,
    stack_key: (GlobalState<S, M>, O),
    incoming: Option<TransitionInstance<M>>,
    trace: &TraceHandle,
) -> Frame<S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let all = {
        let _span = trace.span(Phase::Expansion);
        enabled_instances(spec, &state)
    };
    let reduction = reducer.reduce_traced(spec, &state, all, trace);
    if reduction.reduced {
        stats.reduced_states += 1;
    }
    Frame {
        state,
        observer,
        stack_key,
        incoming,
        explore: reduction.explore,
        pruned: reduction.pruned,
        next: 0,
        reduced: reduction.reduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    /// `n` independent processes each taking `steps` internal steps.
    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn unreduced_dfs_counts_the_full_product() {
        // 3 processes × 2 steps each: (2+1)^3 = 27 states.
        let spec = independent(3, 2);
        let report = run_stateful_dfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 27);
    }

    #[test]
    fn spor_dfs_explores_fewer_states() {
        let spec = independent(3, 2);
        let reducer = SporReducer::new(&spec);
        let report = run_stateful_dfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_verified());
        assert!(
            report.stats.states < 27,
            "independent processes must be interleaved in fewer orders, got {}",
            report.stats.states
        );
        // Fully independent: one linearisation suffices => 7 states on a line.
        assert_eq!(report.stats.states, 7);
    }

    #[test]
    fn all_store_backends_agree_on_the_state_count() {
        use mp_store::StoreConfig;
        let spec = independent(3, 2);
        for store in [
            StoreConfig::Exact,
            StoreConfig::sharded(),
            StoreConfig::fingerprint(64),
        ] {
            let report = run_stateful_dfs(
                &spec,
                &Invariant::always_true("true").into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                &CheckerConfig::default().with_store(store),
            );
            assert!(report.verdict.is_verified(), "{store} failed");
            assert_eq!(report.stats.states, 27, "{store} state count");
            assert_eq!(
                report.stats.store_hits, report.stats.revisits,
                "{store} hits"
            );
            assert!(report.stats.store_bytes > 0, "{store} bytes");
        }
    }

    #[test]
    fn violation_is_reported_with_path() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("a process reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_stateful_dfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        let cx = report.verdict.counterexample().expect("violation expected");
        assert_eq!(
            cx.len(),
            3,
            "shortest possible path has 3 steps; DFS found {}",
            cx.len()
        );
        assert!(cx.reason.contains("reached 3"));
    }

    #[test]
    fn initial_state_violation_gives_empty_counterexample() {
        let spec = independent(1, 1);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("never", |_: &GlobalState<u8, Tok>, _| {
                Err("init is bad".into())
            });
        let report = run_stateful_dfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        let cx = report.verdict.counterexample().unwrap();
        assert!(cx.is_empty());
        // Store stats are recorded even on the initial-state early return.
        assert_eq!(report.stats.store_backend, "exact");
    }

    #[test]
    fn state_limit_stops_the_search() {
        let spec = independent(3, 3);
        let report = run_stateful_dfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default().with_max_states(5),
        );
        assert!(matches!(report.verdict, Verdict::LimitReached { .. }));
        assert!(report.stats.states <= 6);
    }

    #[test]
    fn deadlock_detection_reports_terminal_states() {
        let spec = independent(1, 1);
        let report = run_stateful_dfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default().with_deadlock_check(true),
        );
        assert!(report.verdict.is_violated());
        let cx = report.verdict.counterexample().unwrap();
        assert!(cx.reason.contains("deadlock"));
    }

    /// A cyclic protocol: one process toggles its bit forever, the other
    /// makes a single visible move. Without the cycle proviso a naive
    /// reduction could postpone the second process forever.
    #[test]
    fn cycle_proviso_keeps_search_sound_on_cycles() {
        let spec: ProtocolSpec<u8, Tok> = ProtocolSpec::builder("cycle")
            .process("toggler", 0u8)
            .process("mover", 0u8)
            .transition(
                TransitionSpec::builder("toggle", p(0))
                    .internal()
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(1 - *l))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("move", p(1))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .visible()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap();
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("mover-never-moves", |s: &GlobalState<u8, Tok>, _| {
                if *s.local(p(1)) == 1 {
                    Err("mover moved".into())
                } else {
                    Ok(())
                }
            });
        let reducer = SporReducer::new(&spec);
        let report = run_stateful_dfs(
            &spec,
            &property.into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(
            report.verdict.is_violated(),
            "the reduced search must still find the mover's step"
        );
    }
}
