//! # mp-checker — explicit-state model checking engines
//!
//! This crate is the search layer of the MP-Basset reproduction (DSN 2011,
//! "Efficient Model Checking of Fault-Tolerant Distributed Protocols"). It
//! takes a protocol model from `mp-model`, a reduction strategy from
//! `mp-por`, and an [`Invariant`] property, and exhaustively explores the
//! protocol-level state space:
//!
//! * **stateful DFS** — the default engine, with a visited-state store and a
//!   cycle proviso that keeps partial-order reduction sound for invariants;
//! * **stateful BFS** — finds shortest counterexamples (useful for the
//!   paper's debugging experiments);
//! * **stateless DFS** — no visited set, required by dynamic POR
//!   (Flanagan–Godefroid), matching the way Basset runs DPOR in the paper;
//! * **parallel BFS** — an extension exploiting the natural parallelism of
//!   protocol-level models.
//!
//! The stateful engines store visited `(state, observer)` pairs in a
//! pluggable backend from the `mp-store` crate, selected by
//! [`CheckerConfig::store`]: exact, lock-striped sharded (for the parallel
//! engine), or hash-compaction fingerprints. **The fingerprint backend
//! trades a bounded omission probability for order-of-magnitude memory
//! savings** — a `Verified` verdict becomes probabilistic while
//! counterexamples stay exact; see the `mp-store` crate-level documentation
//! for the precise soundness contract before using it on certification
//! runs.
//!
//! Properties come in three classes ([`Property`]): **safety** invariants
//! (the class MP-Basset supports), evaluated over the global state and an
//! optional [`Observer`] history variable — the sound counterpart of the
//! paper's "assertions that peek at remote state" — plus two **liveness**
//! classes, **termination** (every fair maximal execution reaches a
//! quiescent/goal state) and **leads-to** (`p ⇝ q`). Liveness properties
//! carry a [`Fairness`] policy that by default exempts environment (fault)
//! transitions — a crash is never "unfairly required" to happen — and their
//! counterexamples are **lassos** (stem + repeatable cycle, or stem +
//! stutter for premature quiescence); see the [`liveness`] module. Every
//! engine dispatches on the property class, so the same protocol, fault
//! configuration and reducer answer both "can this go wrong?" and "does
//! this always finish?".
//!
//! ```
//! use mp_checker::{Checker, CheckerConfig, Invariant};
//! use mp_model::{GlobalState, Message, Outcome, ProcessId, ProtocolSpec, TransitionSpec};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! struct Ping;
//! mp_model::codec!(struct Ping);
//! impl Message for Ping {
//!     fn kind(&self) -> &'static str { "PING" }
//! }
//!
//! // Two processes ping each other once.
//! let spec: ProtocolSpec<u8, Ping> = ProtocolSpec::builder("ping")
//!     .process("a", 0u8)
//!     .process("b", 0u8)
//!     .transition(
//!         TransitionSpec::builder("SEND", ProcessId(0))
//!             .internal()
//!             .guard(|l, _| *l == 0)
//!             .sends(&["PING"])
//!             .effect(|_, _| Outcome::new(1).send(ProcessId(1), Ping))
//!             .build(),
//!     )
//!     .transition(
//!         TransitionSpec::builder("RECV", ProcessId(1))
//!             .single_input("PING")
//!             .effect(|_, _| Outcome::new(1))
//!             .build(),
//!     )
//!     .build()
//!     .unwrap();
//!
//! let report = Checker::new(
//!     &spec,
//!     Invariant::new("receiver-only-after-sender", |s: &GlobalState<u8, Ping>, _| {
//!         if s.locals[1] == 1 && s.locals[0] == 0 {
//!             Err("receiver done before sender sent".into())
//!         } else {
//!             Ok(())
//!         }
//!     }),
//! )
//! .spor()
//! .config(CheckerConfig::stateful_dfs())
//! .run();
//! assert!(report.verdict.is_verified());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod checker;
pub mod config;
pub mod counterexample;
pub mod dfs;
pub mod liveness;
mod obs;
pub mod observer;
pub mod parallel;
pub mod property;
pub mod stateless;
pub mod stats;

pub use checker::Checker;
pub use config::{CheckerConfig, RunReport, SearchStrategy, Verdict};
pub use counterexample::{Counterexample, CounterexampleStep};
pub use liveness::{run_liveness_dfs, run_stateless_liveness};
pub use observer::{NullObserver, Observer, TransitionCountObserver};
pub use property::{
    all_of, Fairness, Invariant, Property, PropertyClass, PropertyStatus, StatePredicate,
};
pub use stats::{ExplorationStats, StatsCounters};
// Visited-state storage lives in the `mp-store` subsystem; the most-used
// names are re-exported here so engine callers need only one import.
pub use mp_store::{
    CheckpointConfig, CheckpointError, Manifest, StateStore, StateStoreBackend, StoreConfig,
    StoreStats,
};
// Observability lives in the `mp-trace` subsystem; the tracer and its
// options are re-exported so harnesses can configure tracing without a
// direct dependency.
pub use mp_trace::{TraceOptions, Tracer};

pub use bfs::run_stateful_bfs;
pub use dfs::run_stateful_dfs;
pub use parallel::run_parallel_bfs;
pub use stateless::run_stateless;
