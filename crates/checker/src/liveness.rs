//! Liveness search: fairness-aware lasso detection for termination and
//! leads-to properties.
//!
//! A liveness property is violated by a *maximal execution*, not by a single
//! state: either an infinite execution that loops through a cycle without
//! ever discharging the outstanding obligation, or a finite maximal
//! execution that quiesces (deadlocks) with the obligation still pending.
//! Both are reported as **lassos** ([`Counterexample::lasso`]): a stem from
//! the initial state plus a cycle (possibly empty for the quiescent case).
//!
//! The search explores the product of the protocol state, the observer and
//! one **obligation bit** ("is a goal state still owed on this path?"),
//! folded by [`Property::step_pending`]. The stateful engine is a DFS with
//! an **on-stack cycle detector**: every cycle of a directed graph contains
//! a back edge, so a DFS that checks each successor against the stack finds
//! a cycle whenever one exists. A detected cycle is a counterexample iff
//!
//! 1. every product state on it carries the obligation bit, and
//! 2. it is *fair* under the property's [`Fairness`] policy: no transition
//!    instance that fairness requires (by default, any non-environment
//!    instance) is enabled in every state of the cycle yet never executed
//!    in it. Environment (fault) transitions are exempt by default, so a
//!    crash is never "unfairly required" to happen.
//!
//! **Partial-order reduction.** Running with a reducer, the search applies
//! the cycle/ignoring proviso unconditionally: whenever a reduced expansion
//! closes a cycle back into the DFS stack, the state is re-expanded with
//! the pruned instances ([`mp_por::Reduction::pruned`]) added back, so no
//! enabled transition is ignored around a cycle. Soundness additionally
//! requires the transitions that can change the property's trigger/goal
//! predicates to be annotated *visible* (as the bundled protocols do);
//! the integration tests assert that SPOR on and off agree on every
//! liveness verdict across the evaluation protocols.
//!
//! **Completeness.** The on-stack detector alone is sound but not
//! complete: the stack segment closed by a back edge is the DFS *tree*
//! path, which can route through a discharged (goal) state even though a
//! different, all-pending cycle reaches the same product state via a cross
//! edge to an already-visited node. The stateful search therefore runs a
//! second pass when the DFS finds nothing: it records the **pending
//! subgraph** (obligation-carrying product states and the edges between
//! them) during the search and then checks its strongly connected
//! components. An SCC admits a fair cycle iff every instance the fairness
//! policy requires that is enabled in *every* state of the SCC is executed
//! by some edge inside it — exact for weak fairness, because the
//! all-states/all-required-edges covering walk is then itself a fair
//! cycle, and conversely a globally-enabled-but-never-executed instance
//! starves every cycle the SCC contains. The pass reconstructs a concrete
//! lasso (stem via a product BFS, cycle via a covering walk inside the
//! SCC), so reported counterexamples stay replayable.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use mp_store::StateStoreBackend;

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
    TransitionInstance,
};
use mp_por::Reducer;
use mp_symmetry::{NoSymmetry, Symmetry};
use mp_trace::{Counter, Gauge, Phase};

use crate::{
    CheckerConfig, Counterexample, ExplorationStats, Fairness, Observer, Property, PropertyClass,
    RunReport, Verdict,
};

struct Frame<S, M: Ord, O> {
    state: GlobalState<S, M>,
    observer: O,
    /// `true` while a goal state is still owed on this path.
    pending: bool,
    /// The key this frame occupies in the `on_stack` map: the concrete
    /// product key, or its canonical orbit representative when symmetry
    /// reduction is active.
    stack_key: (GlobalState<S, M>, O, bool),
    /// Index of the symmetry-group element that canonicalizes this frame's
    /// concrete state (`0` = identity; always `0` when symmetry is off).
    /// Cycles that close modulo symmetry compose these to recover the
    /// concrete closing permutation.
    elem: usize,
    /// Instance that led into this state (`None` for the initial state).
    incoming: Option<TransitionInstance<M>>,
    /// Every enabled instance in this state (pre-reduction); the fairness
    /// check of the cycle detector intersects these along the cycle.
    all_enabled: Vec<TransitionInstance<M>>,
    /// Instances chosen by the reducer, explored in order.
    explore: Vec<TransitionInstance<M>>,
    /// Instances pruned by the reducer, re-added if the proviso fires.
    pruned: Vec<TransitionInstance<M>>,
    next: usize,
    reduced: bool,
    /// Index of this state in the recorded pending subgraph (`Some` iff
    /// `pending`); phase 2 runs SCC detection over that graph.
    node: Option<usize>,
}

fn violation_reason(class: PropertyClass, quiescent: bool, fairness: Fairness) -> String {
    match (class, quiescent) {
        (PropertyClass::Termination, true) => {
            "the execution quiesces before reaching the goal (no transition enabled)".to_string()
        }
        (PropertyClass::Termination, false) => {
            format!("{fairness} cycle: the system can loop forever without reaching the goal")
        }
        (PropertyClass::LeadsTo, true) => {
            "a trigger state is never followed by a goal state: the execution quiesces \
             with the obligation outstanding"
                .to_string()
        }
        (PropertyClass::LeadsTo, false) => format!(
            "{fairness} cycle with a triggered obligation outstanding: no goal state follows"
        ),
        (PropertyClass::Safety, _) => unreachable!("safety has no liveness violations"),
    }
}

/// The shared weak-fairness test used by every cycle detector in this
/// module: a cycle (or SCC) given by the enabled sets of its states and the
/// instances it executes is **fair** iff no instance the policy requires is
/// enabled in every state yet never executed.
fn cycle_fair<S, M>(
    spec: &ProtocolSpec<S, M>,
    fairness: Fairness,
    enabled_per_state: &[&[TransitionInstance<M>]],
    executed: &[&TransitionInstance<M>],
) -> bool
where
    S: LocalState,
    M: Message,
{
    if fairness == Fairness::Unfair {
        return true;
    }
    let (first, rest) = enabled_per_state
        .split_first()
        .expect("a cycle has at least one state");
    // Candidates: instances the policy insists on, enabled at the entry...
    let mut starved: Vec<&TransitionInstance<M>> = first
        .iter()
        .filter(|i| fairness.requires(spec.transition(i.transition).annotations().is_environment))
        .collect();
    // ...and in every other state of the cycle...
    for enabled in rest {
        starved.retain(|i| enabled.contains(i));
    }
    // ...that the cycle never executes.
    starved.retain(|i| !executed.contains(i));
    starved.is_empty()
}

/// [`cycle_fair`] applied to a DFS stack segment plus its closing edge.
fn stack_cycle_is_fair<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    frames: &[Frame<S, M, O>],
    closing: &TransitionInstance<M>,
    fairness: Fairness,
) -> bool
where
    S: LocalState,
    M: Message,
{
    let enabled: Vec<&[TransitionInstance<M>]> =
        frames.iter().map(|f| f.all_enabled.as_slice()).collect();
    let mut executed: Vec<&TransitionInstance<M>> = frames[1..]
        .iter()
        .filter_map(|f| f.incoming.as_ref())
        .collect();
    executed.push(closing);
    cycle_fair(spec, fairness, &enabled, &executed)
}

/// The pending subgraph recorded during the stateful search: one node per
/// obligation-carrying product state, with its full (pre-reduction) enabled
/// set and the explored edges to other pending product states. Nodes are
/// `Arc`-shared between the node list and the lookup map, so each pending
/// product state is cloned exactly once.
type PendingNode<S, M, O> = std::sync::Arc<(GlobalState<S, M>, O)>;

struct PendingGraph<S, M: Ord, O> {
    nodes: Vec<PendingNode<S, M, O>>,
    enabled: Vec<Vec<TransitionInstance<M>>>,
    edges: Vec<Vec<(usize, TransitionInstance<M>)>>,
    /// Node lookup, keyed by the *canonical* `(state, observer)` pair (the
    /// concrete pair itself when symmetry is off) — cross edges are resolved
    /// by the same key the visited store uses.
    ids: HashMap<(GlobalState<S, M>, O), usize>,
}

impl<S, M, O> PendingGraph<S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    fn new() -> Self {
        PendingGraph {
            nodes: Vec::new(),
            enabled: Vec::new(),
            edges: Vec::new(),
            ids: HashMap::new(),
        }
    }

    fn add_node(
        &mut self,
        state: &GlobalState<S, M>,
        observer: &O,
        canonical: (GlobalState<S, M>, O),
        enabled: &[TransitionInstance<M>],
    ) -> usize {
        let id = self.nodes.len();
        let node = std::sync::Arc::new((state.clone(), observer.clone()));
        self.nodes.push(node);
        self.enabled.push(enabled.to_vec());
        self.edges.push(Vec::new());
        self.ids.insert(canonical, id);
        id
    }

    /// Looks up the node of a revisited pending product state by its
    /// canonical key. Returns `None` when the state has no node — possible
    /// only with a hash-compaction (fingerprint) store, where a collision
    /// can report an unseen state as visited; the edge is then silently
    /// dropped, which keeps the (already documented)
    /// probabilistic-`Verified` contract of that backend instead of
    /// panicking.
    fn try_id_of(&self, canonical: &(GlobalState<S, M>, O)) -> Option<usize> {
        self.ids.get(canonical).copied()
    }

    fn add_edge(&mut self, from: usize, to: usize, instance: TransitionInstance<M>) {
        self.edges[from].push((to, instance));
    }

    /// Returns `true` if some strongly connected component of the recorded
    /// subgraph contains an internal edge (i.e. a cycle candidate exists).
    fn has_cycle_candidate(&self) -> bool {
        tarjan_sccs(self).into_iter().any(|scc| {
            let member: HashSet<usize> = scc.iter().copied().collect();
            scc.iter()
                .any(|&v| self.edges[v].iter().any(|(w, _)| member.contains(w)))
        })
    }
}

/// Iterative Tarjan SCC over the pending subgraph; returns the components.
fn tarjan_sccs<S, M: Ord, O>(graph: &PendingGraph<S, M, O>) -> Vec<Vec<usize>> {
    let n = graph.nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next-edge-offset) explicit DFS stack.
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut edge)) = work.last_mut() {
            if *edge == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                scc_stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&(w, _)) = graph.edges[v].get(*edge) {
                *edge += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = scc_stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

/// Shortest instance-labelled path from `from` to a node satisfying `done`,
/// restricted to `allowed` nodes of the pending subgraph. Returns the node
/// reached and the edge path.
fn bfs_within<S: LocalState, M: Message, O>(
    graph: &PendingGraph<S, M, O>,
    allowed: &[bool],
    from: usize,
    done: impl Fn(usize) -> bool,
) -> Option<(usize, Vec<TransitionInstance<M>>)> {
    if done(from) {
        return Some((from, Vec::new()));
    }
    let mut parent: HashMap<usize, (usize, TransitionInstance<M>)> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for (w, instance) in &graph.edges[v] {
            if !allowed[*w] || *w == from || parent.contains_key(w) {
                continue;
            }
            parent.insert(*w, (v, instance.clone()));
            if done(*w) {
                let mut path = Vec::new();
                let mut at = *w;
                while at != from {
                    let (prev, inst) = parent[&at].clone();
                    path.push(inst);
                    at = prev;
                }
                path.reverse();
                return Some((*w, path));
            }
            queue.push_back(*w);
        }
    }
    None
}

/// Phase 2 of the stateful search: SCC-based fair-cycle detection over the
/// recorded pending subgraph, run when the on-stack detector found nothing.
/// Returns the reconstructed lasso of the first violating component, if any.
fn pending_scc_violation<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    graph: &PendingGraph<S, M, O>,
    fairness: Fairness,
) -> Option<Counterexample>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    for scc in tarjan_sccs(graph) {
        let mut member = vec![false; graph.nodes.len()];
        for &v in &scc {
            member[v] = true;
        }
        // Internal edges: the cycles of this component are built from them.
        let internal: Vec<(usize, usize, &TransitionInstance<M>)> = scc
            .iter()
            .flat_map(|&v| {
                graph.edges[v]
                    .iter()
                    .filter(|(w, _)| member[*w])
                    .map(move |(w, i)| (v, *w, i))
            })
            .collect();
        if internal.is_empty() {
            continue; // trivial component: no cycle at all
        }
        let enabled: Vec<&[TransitionInstance<M>]> =
            scc.iter().map(|&v| graph.enabled[v].as_slice()).collect();
        let executed: Vec<&TransitionInstance<M>> = internal.iter().map(|&(_, _, i)| i).collect();
        if !cycle_fair(spec, fairness, &enabled, &executed) {
            // Some required instance is enabled everywhere in the component
            // but never executed inside it: every cycle in here is unfair.
            continue;
        }

        // A fair cycle exists: the covering walk that visits every state of
        // the component and executes one edge per required instance. Build
        // it by stitching BFS paths inside the component.
        let entry = scc[0];
        let mut cycle: Vec<TransitionInstance<M>> = Vec::new();
        let mut at = entry;
        let mut to_visit: Vec<usize> = scc.clone();
        // Required instances enabled in every component state, and one
        // internal edge executing each (they exist: the component is fair).
        let mut required_edges: Vec<(usize, usize, TransitionInstance<M>)> = {
            let mut candidates: Vec<&TransitionInstance<M>> = graph.enabled[entry]
                .iter()
                .filter(|i| {
                    fairness.requires(spec.transition(i.transition).annotations().is_environment)
                })
                .collect();
            for &v in &scc {
                candidates.retain(|i| graph.enabled[v].contains(i));
            }
            candidates
                .iter()
                .map(|c| {
                    let &(v, w, i) = internal
                        .iter()
                        .find(|(_, _, i)| *i == *c)
                        .expect("fair component executes every required instance");
                    (v, w, i.clone())
                })
                .collect()
        };
        loop {
            to_visit.retain(|&v| v != at);
            if let Some(pos) = required_edges.iter().position(|(v, _, _)| *v == at) {
                let (_, w, i) = required_edges.remove(pos);
                cycle.push(i);
                at = w;
                continue;
            }
            if let Some((reached, path)) = bfs_within(graph, &member, at, |v| {
                to_visit.contains(&v) || required_edges.iter().any(|(from, _, _)| *from == v)
            }) {
                cycle.extend(path);
                at = reached;
                continue;
            }
            break;
        }
        // Close the walk back to the entry state.
        if at != entry {
            let (_, path) = bfs_within(graph, &member, at, |v| v == entry)
                .expect("the component is strongly connected");
            cycle.extend(path);
        } else if cycle.is_empty() {
            // Single-node component: its cycle is a self-loop edge.
            cycle.push(internal[0].2.clone());
        }

        // Stem: product-graph BFS from the initial state to the entry node.
        let stem = stem_to(spec, property, initial_observer, graph, entry);
        return Some(Counterexample::lasso(
            spec,
            property.name(),
            violation_reason(property.class(), false, fairness),
            &stem,
            &cycle,
            &graph.nodes[entry].0,
        ));
    }
    None
}

/// Breadth-first path from the initial product state to the pending-graph
/// node `target`, re-executing the protocol (shortest stem for the lasso).
fn stem_to<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    graph: &PendingGraph<S, M, O>,
    target: usize,
) -> Vec<TransitionInstance<M>>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let goal = &graph.nodes[target];
    let initial = spec.initial_state();
    let observer = initial_observer.clone();
    let pending = property.initial_pending(&initial, &observer);
    let start_key = (initial, observer, pending);
    if pending && start_key.0 == goal.0 && start_key.1 == goal.1 {
        return Vec::new();
    }
    let mut visited: HashSet<(GlobalState<S, M>, O, bool)> = HashSet::from([start_key.clone()]);
    let mut parents: Vec<(usize, TransitionInstance<M>)> = Vec::new();
    let mut keys: Vec<(GlobalState<S, M>, O, bool)> = vec![start_key];
    let mut frontier = vec![0usize];
    while !frontier.is_empty() {
        let mut next_frontier = Vec::new();
        for &at in &frontier {
            let (state, observer, pending) = keys[at].clone();
            for instance in enabled_instances(spec, &state) {
                let next_state = execute_enabled(spec, &state, &instance);
                let next_observer = observer.update(spec, &state, &instance, &next_state);
                let next_pending = property.step_pending(pending, &next_state, &next_observer);
                let key = (next_state, next_observer, next_pending);
                if !visited.insert(key.clone()) {
                    continue;
                }
                let idx = keys.len();
                keys.push(key.clone());
                parents.push((at, instance));
                if next_pending && key.0 == goal.0 && key.1 == goal.1 {
                    // Reconstruct the path.
                    let mut path = Vec::new();
                    let mut cursor = idx;
                    while cursor != 0 {
                        let (prev, inst) = parents[cursor - 1].clone();
                        path.push(inst);
                        cursor = prev;
                    }
                    path.reverse();
                    return path;
                }
                next_frontier.push(idx);
            }
        }
        frontier = next_frontier;
    }
    unreachable!("every pending-graph node was reached during the search")
}

/// Runs the stateful liveness search: a depth-first search over
/// `(state, observer, obligation)` product states with an on-stack cycle
/// detector and the cycle/ignoring proviso for reduced expansions. Called by
/// every stateful engine when the property is a liveness property.
///
/// **Symmetry.** With a non-trivial [`Symmetry`], the visited store and the
/// on-stack map are keyed by canonical orbit representatives while the
/// exploration stays concrete, so cycles are detected **modulo the group**:
/// a successor whose canonical product key is on the stack closes a quotient
/// cycle. When the closing permutation is the identity the concrete cycle
/// closes exactly and the usual pending/fairness checks apply; otherwise the
/// cycle is **un-canonicalized** by unrolling the closing element `δ` until
/// it returns to the identity (`e →A→ δ(e) →δ(A)→ δ²(e) → … → e`, by
/// equivariance of the transition relation), and the unrolled concrete lasso
/// is re-executed to validate enabledness, the pending obligation and
/// fairness before it is reported — reported lassos are always genuine
/// concrete executions with concrete process ids. The phase-2 SCC backstop
/// judges fairness on per-node concrete enabled sets, which mix orbit
/// members under symmetry; to stay exact it therefore *falls back to the
/// symmetry-free search* whenever the recorded quotient pending subgraph
/// contains a cycle candidate at all (rare: the evaluation protocols'
/// fault-augmented models are acyclic in their budget counters, so verified
/// runs record no pending cycles and never pay the fallback).
pub fn run_liveness_dfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    debug_assert!(property.is_liveness(), "dispatched on property class");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let trivial = symmetry.is_trivial();
    let strategy = if trivial {
        format!("liveness-dfs+{}", reducer.name())
    } else {
        format!("liveness-dfs+{}+{}", reducer.name(), symmetry.label())
    };
    let fairness = property.fairness();
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    // Keys are pre-canonicalized by this engine (the on-stack map and the
    // pending graph need them too), so the wrapper stays in passthrough.
    let store = config
        .store
        .build_canonical::<(GlobalState<S, M>, O, bool)>(None);
    let store_label = |name: &'static str| -> &'static str {
        if trivial {
            name
        } else {
            mp_store::canonical_label(name)
        }
    };
    // Canonical product key + canonicalizing element of a concrete state.
    let canon = |state: &GlobalState<S, M>, observer: &O, pending: bool| {
        if trivial {
            ((state.clone(), observer.clone(), pending), 0usize)
        } else {
            let (s, o, elem) = symmetry.canonicalize_traced(state, observer, &trace);
            ((s, o, pending), elem)
        }
    };
    let mut on_stack: HashMap<(GlobalState<S, M>, O, bool), usize> = HashMap::new();
    let mut stack: Vec<Frame<S, M, O>> = Vec::new();
    // The pending subgraph recorded for the phase-2 SCC backstop (see the
    // module docs on completeness).
    let mut pending_graph: PendingGraph<S, M, O> = PendingGraph::new();

    macro_rules! finish {
        ($verdict:expr) => {{
            let verdict = $verdict;
            stats.elapsed = start.elapsed();
            stats.record_store(store_label(store.name()), store.stats());
            stats.phases = trace.phase_times();
            // This engine has no level structure, so memory gauges are
            // sampled once at the end (peak == final for a grow-only store).
            if trace.is_enabled() {
                let bytes = store.approx_bytes() as u64;
                trace.sample_gauge(Gauge::StoreBytes, bytes);
                trace.sample_gauge(Gauge::CanonicalCacheBytes, if trivial { 0 } else { bytes });
            }
            trace.finish(match &verdict {
                Verdict::Verified => "verified",
                Verdict::Violated(_) => "violated",
                Verdict::LimitReached { .. } => "limit",
            });
            return RunReport {
                verdict,
                stats,
                strategy,
            };
        }};
    }

    let initial = spec.initial_state();
    let observer = initial_observer.clone();
    let pending = property.initial_pending(&initial, &observer);
    let (initial_key, initial_elem) = canon(&initial, &observer, pending);
    store.insert(initial_key.clone());
    stats.states = 1;
    trace.add(Counter::States, 1);

    let all = {
        let _span = trace.span(Phase::Expansion);
        enabled_instances(spec, &initial)
    };
    if all.is_empty() {
        // The initial state is already maximal.
        let verdict = if pending {
            let cx = Counterexample::lasso(
                spec,
                property.name(),
                violation_reason(property.class(), true, fairness),
                &[],
                &[],
                &initial,
            );
            Verdict::Violated(Box::new(cx))
        } else {
            Verdict::Verified
        };
        finish!(verdict);
    }
    if !pending && property.discharged_forever() {
        // Termination goal already holds initially: every execution has
        // reached it before taking a single step.
        finish!(Verdict::Verified);
    }

    stats.expansions = 1;
    trace.add(Counter::Expansions, 1);
    let first_node = pending.then(|| {
        pending_graph.add_node(
            &initial,
            &observer,
            (initial_key.0.clone(), initial_key.1.clone()),
            &all,
        )
    });
    let first = make_frame(
        spec,
        reducer,
        &mut stats,
        initial,
        observer,
        pending,
        initial_key,
        initial_elem,
        None,
        all,
        first_node,
        &trace,
    );
    on_stack.insert(first.stack_key.clone(), 0);
    stack.push(first);

    while !stack.is_empty() {
        stats.max_depth = stats.max_depth.max(stack.len());
        trace.add(Counter::Depth, stack.len() as u64);
        let top_index = stack.len() - 1;
        if stack[top_index].next >= stack[top_index].explore.len() {
            let frame = stack.pop().expect("stack checked non-empty");
            on_stack.remove(&frame.stack_key);
            continue;
        }

        let (instance, next_state, next_observer, next_pending) = {
            let _span = trace.span(Phase::Expansion);
            let top = &mut stack[top_index];
            let instance = top.explore[top.next].clone();
            top.next += 1;
            let next_state = execute_enabled(spec, &top.state, &instance);
            let next_observer = top
                .observer
                .update(spec, &top.state, &instance, &next_state);
            let next_pending = property.step_pending(top.pending, &next_state, &next_observer);
            (instance, next_state, next_observer, next_pending)
        };
        stats.transitions_executed += 1;
        trace.add(Counter::Transitions, 1);
        let key = (next_state, next_observer, next_pending);
        // Membership, the on-stack map and the pending graph are judged on
        // the canonical orbit key; exploration stays concrete.
        let canon_pair = (!trivial).then(|| canon(&key.0, &key.1, key.2));
        let probe = canon_pair.as_ref().map(|(k, _)| k).unwrap_or(&key);
        let celem = canon_pair.as_ref().map(|(_, e)| *e).unwrap_or(0);
        let top_node = stack[top_index].node;

        if let Some(&entry) = on_stack.get(probe) {
            // The successor closes a cycle into the DFS stack — exactly, or
            // modulo a symmetry permutation.
            if let (Some(from), true) = (top_node, key.2) {
                let to = stack[entry].node.expect("pending frames carry a node");
                pending_graph.add_edge(from, to, instance.clone());
            }
            //
            // Cycle/ignoring proviso (always on for liveness): a reduced
            // expansion may not be left around a cycle — re-expand fully.
            {
                let top = &mut stack[top_index];
                if top.reduced {
                    let mut pruned = std::mem::take(&mut top.pruned);
                    top.explore.append(&mut pruned);
                    top.reduced = false;
                    stats.proviso_expansions += 1;
                }
            }
            // Violating cycle: the obligation is outstanding in every
            // product state of the cycle, and the cycle is fair.
            if key.2 && stack[entry..].iter().all(|f| f.pending) {
                let entry_elem = stack[entry].elem;
                if celem == entry_elem {
                    // The concrete cycle closes exactly (same canonical key
                    // and same canonicalizing element force state equality).
                    if stack_cycle_is_fair(spec, &stack[entry..], &instance, fairness) {
                        let stem: Vec<TransitionInstance<M>> = stack[..=entry]
                            .iter()
                            .filter_map(|f| f.incoming.clone())
                            .collect();
                        let mut cycle: Vec<TransitionInstance<M>> = stack[entry + 1..]
                            .iter()
                            .filter_map(|f| f.incoming.clone())
                            .collect();
                        cycle.push(instance);
                        let cx = Counterexample::lasso(
                            spec,
                            property.name(),
                            violation_reason(property.class(), false, fairness),
                            &stem,
                            &cycle,
                            &stack[entry].state,
                        );
                        finish!(Verdict::Violated(Box::new(cx)));
                    }
                } else {
                    // The cycle closes through a non-identity permutation:
                    // un-canonicalize by unrolling the closing element and
                    // validate the concrete lasso by re-execution.
                    let mut segment: Vec<TransitionInstance<M>> = stack[entry + 1..]
                        .iter()
                        .filter_map(|f| f.incoming.clone())
                        .collect();
                    segment.push(instance.clone());
                    if let Some(cycle) = unroll_symmetric_cycle(
                        spec,
                        property,
                        symmetry,
                        fairness,
                        &stack[entry],
                        entry_elem,
                        celem,
                        &segment,
                    ) {
                        let stem: Vec<TransitionInstance<M>> = stack[..=entry]
                            .iter()
                            .filter_map(|f| f.incoming.clone())
                            .collect();
                        let cx = Counterexample::lasso(
                            spec,
                            property.name(),
                            violation_reason(property.class(), false, fairness),
                            &stem,
                            &cycle,
                            &stack[entry].state,
                        );
                        finish!(Verdict::Violated(Box::new(cx)));
                    }
                }
            }
            stats.revisits += 1;
            trace.add(Counter::Revisits, 1);
            continue;
        }

        let inserted = {
            let _span = trace.span(Phase::StoreLookup);
            store.insert_ref(probe)
        };
        if !inserted {
            // A cross or forward edge; if it stays within the pending
            // subgraph, record it — phase 2 finds the cycles the on-stack
            // detector cannot see from the tree path alone.
            if let (Some(from), true) = (top_node, key.2) {
                // `None` only under a fingerprint-store collision; see
                // [`PendingGraph::try_id_of`].
                if let Some(to) = pending_graph.try_id_of(&(probe.0.clone(), probe.1.clone())) {
                    pending_graph.add_edge(from, to, instance.clone());
                }
            }
            stats.revisits += 1;
            trace.add(Counter::Revisits, 1);
            continue;
        }
        let stack_key = match canon_pair {
            Some((k, _)) => k,
            None => key.clone(),
        };
        let (next_state, next_observer, next_pending) = key;
        stats.states += 1;
        trace.add(Counter::States, 1);

        if store.len() > config.max_states {
            finish!(Verdict::LimitReached {
                what: format!("state limit of {}", config.max_states),
            });
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                finish!(Verdict::LimitReached {
                    what: format!("time limit of {limit:?}"),
                });
            }
        }

        let all = {
            let _span = trace.span(Phase::Expansion);
            enabled_instances(spec, &next_state)
        };
        if all.is_empty() {
            if next_pending {
                // A maximal finite execution with the obligation pending:
                // the system stutters in this quiescent state forever.
                let mut stem: Vec<TransitionInstance<M>> =
                    stack.iter().filter_map(|f| f.incoming.clone()).collect();
                stem.push(instance);
                let cx = Counterexample::lasso(
                    spec,
                    property.name(),
                    violation_reason(property.class(), true, fairness),
                    &stem,
                    &[],
                    &next_state,
                );
                finish!(Verdict::Violated(Box::new(cx)));
            }
            // Quiescent and discharged: a satisfying maximal execution.
            continue;
        }
        if !next_pending && property.discharged_forever() {
            // Termination: goal states are closed — no extension of this
            // branch can ever violate, so prune below it.
            continue;
        }

        stats.expansions += 1;
        trace.add(Counter::Expansions, 1);
        let node = next_pending.then(|| {
            pending_graph.add_node(
                &next_state,
                &next_observer,
                (stack_key.0.clone(), stack_key.1.clone()),
                &all,
            )
        });
        if let (Some(from), Some(to)) = (top_node, node) {
            pending_graph.add_edge(from, to, instance.clone());
        }
        let frame = make_frame(
            spec,
            reducer,
            &mut stats,
            next_state,
            next_observer,
            next_pending,
            stack_key,
            celem,
            Some(instance),
            all,
            node,
            &trace,
        );
        on_stack.insert(frame.stack_key.clone(), stack.len());
        stack.push(frame);
    }

    // Phase 2: the on-stack detector saw no fair violating cycle, but it
    // only examines DFS tree segments — check the strongly connected
    // components of the recorded pending subgraph (see the module docs).
    if !trivial {
        // Under symmetry the recorded per-node enabled sets mix orbit
        // members, so the SCC fairness test is not exact on the quotient;
        // fall back to the symmetry-free search when (and only when) a
        // cycle candidate exists at all. The fallback runs inside the
        // caller's remaining wall-clock budget, and the symmetric pass's
        // elapsed time is folded back into the returned report.
        if pending_graph.has_cycle_candidate() {
            let spent = start.elapsed();
            let mut exact_config = config.clone();
            if let Some(limit) = config.time_limit {
                let Some(remaining) = limit.checked_sub(spent) else {
                    finish!(Verdict::LimitReached {
                        what: format!("time limit of {limit:?}"),
                    });
                };
                exact_config.time_limit = Some(remaining);
            }
            // The fallback re-runs the whole search symmetry-free with its
            // own trace run; close this run first so the NDJSON stream stays
            // a sequence of complete runs.
            stats.phases = trace.phase_times();
            trace.finish("fallback");
            let exact: Arc<dyn Symmetry<S, M, O>> = Arc::new(NoSymmetry);
            let mut report = run_liveness_dfs(
                spec,
                property,
                initial_observer,
                reducer,
                &exact,
                &exact_config,
            );
            report.stats.elapsed += spent;
            report.strategy = format!("{strategy} (scc fallback: {})", report.strategy);
            return report;
        }
    } else {
        let scc_violation = {
            let _span = trace.span(Phase::SccBackstop);
            pending_scc_violation(spec, property, initial_observer, &pending_graph, fairness)
        };
        if let Some(cx) = scc_violation {
            finish!(Verdict::Violated(Box::new(cx)));
        }
    }

    finish!(Verdict::Verified)
}

/// Un-canonicalizes a cycle that closed modulo a non-identity permutation.
///
/// The DFS found `e →segment→ f` with `canon(e) = canon(f)` via elements
/// `g_e(e) = c = g_f(f)`, so `f = δ(e)` with `δ = g_f⁻¹ ∘ g_e`. By
/// equivariance, repeating the segment with `δ`-powers applied walks
/// `e → δ(e) → δ²(e) → … → δᵏ(e) = e` where `k` is the order of `δ` — a
/// genuine concrete cycle. The unrolled instance list is validated by
/// re-execution (each step enabled, the obligation pending throughout, the
/// walk returning exactly to the entry product state) and by the weak
/// fairness test on the concrete enabled sets collected along the way.
/// Returns the unrolled cycle when it is a real fair violation; `None`
/// otherwise (including when a structurally-validated but semantically
/// asymmetric role declaration makes a permuted instance non-executable —
/// the conservative answer).
#[allow(clippy::too_many_arguments)] // the cycle context genuinely has this many parts
fn unroll_symmetric_cycle<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    fairness: Fairness,
    entry: &Frame<S, M, O>,
    entry_elem: usize,
    closing_elem: usize,
    segment: &[TransitionInstance<M>],
) -> Option<Vec<TransitionInstance<M>>>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    // δ = g_f⁻¹ ∘ g_e; its order is bounded by the group order.
    let delta = symmetry.compose(symmetry.inverse(closing_elem), entry_elem);
    let mut unrolled: Vec<TransitionInstance<M>> = Vec::new();
    let mut power = 0usize; // identity
    loop {
        for instance in segment {
            unrolled.push(symmetry.permute_instance(power, instance));
        }
        power = symmetry.compose(delta, power);
        if power == 0 {
            break;
        }
    }

    // Validate the unrolled lasso by concrete re-execution.
    let mut state = entry.state.clone();
    let mut observer = entry.observer.clone();
    let mut enabled_sets: Vec<Vec<TransitionInstance<M>>> = Vec::new();
    for instance in &unrolled {
        let enabled = enabled_instances(spec, &state);
        if !enabled.contains(instance) {
            return None;
        }
        let next_state = execute_enabled(spec, &state, instance);
        let next_observer = observer.update(spec, &state, instance, &next_state);
        if !property.step_pending(true, &next_state, &next_observer) {
            return None;
        }
        enabled_sets.push(enabled);
        state = next_state;
        observer = next_observer;
    }
    if state != entry.state || observer != entry.observer {
        return None;
    }
    let enabled_refs: Vec<&[TransitionInstance<M>]> =
        enabled_sets.iter().map(|v| v.as_slice()).collect();
    let executed: Vec<&TransitionInstance<M>> = unrolled.iter().collect();
    if !cycle_fair(spec, fairness, &enabled_refs, &executed) {
        return None;
    }
    Some(unrolled)
}

#[allow(clippy::too_many_arguments)] // a product-state frame genuinely has this many parts
fn make_frame<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    reducer: &dyn Reducer<S, M>,
    stats: &mut ExplorationStats,
    state: GlobalState<S, M>,
    observer: O,
    pending: bool,
    stack_key: (GlobalState<S, M>, O, bool),
    elem: usize,
    incoming: Option<TransitionInstance<M>>,
    all_enabled: Vec<TransitionInstance<M>>,
    node: Option<usize>,
    trace: &mp_trace::TraceHandle,
) -> Frame<S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let reduction = reducer.reduce_traced(spec, &state, all_enabled.clone(), trace);
    if reduction.reduced {
        stats.reduced_states += 1;
    }
    Frame {
        state,
        observer,
        pending,
        stack_key,
        elem,
        incoming,
        all_enabled,
        explore: reduction.explore,
        pruned: reduction.pruned,
        next: 0,
        reduced: reduction.reduced,
        node,
    }
}

/// Runs the stateless liveness search: a depth-first enumeration of paths
/// with an on-path cycle detector. The stateless engine keeps no visited
/// set, so every elementary cycle is eventually traversed and checked.
///
/// Dynamic POR is a *safety* algorithm (its backtrack sets track races, not
/// ignored cycles); for liveness the ignoring proviso would force full
/// expansion around every cycle, so this search conservatively explores the
/// full tree — the documented fallback when `dpor` is requested. The flag
/// only changes the strategy label.
pub fn run_stateless_liveness<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    dpor: bool,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    debug_assert!(property.is_liveness(), "dispatched on property class");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    stats.store_backend = "none".to_string();
    let strategy = if dpor {
        "stateless-liveness (dpor falls back to full expansion)".to_string()
    } else {
        "stateless-liveness".to_string()
    };
    let fairness = property.fairness();
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    struct PathFrame<S, M: Ord, O> {
        state: GlobalState<S, M>,
        observer: O,
        pending: bool,
        incoming: Option<TransitionInstance<M>>,
        enabled: Vec<TransitionInstance<M>>,
        next: usize,
    }

    let finish = |mut stats: ExplorationStats, verdict: Verdict| -> RunReport {
        stats.elapsed = start.elapsed();
        stats.phases = trace.phase_times();
        trace.finish(match &verdict {
            Verdict::Verified => "verified",
            Verdict::Violated(_) => "violated",
            Verdict::LimitReached { .. } => "limit",
        });
        RunReport {
            verdict,
            stats,
            strategy: strategy.clone(),
        }
    };

    let initial = spec.initial_state();
    let observer = initial_observer.clone();
    let pending = property.initial_pending(&initial, &observer);
    stats.states = 1;
    trace.add(Counter::States, 1);

    let enabled = {
        let _span = trace.span(Phase::Expansion);
        enabled_instances(spec, &initial)
    };
    if enabled.is_empty() {
        let verdict = if pending {
            let cx = Counterexample::lasso(
                spec,
                property.name(),
                violation_reason(property.class(), true, fairness),
                &[],
                &[],
                &initial,
            );
            Verdict::Violated(Box::new(cx))
        } else {
            Verdict::Verified
        };
        return finish(stats, verdict);
    }
    if !pending && property.discharged_forever() {
        return finish(stats, Verdict::Verified);
    }

    stats.expansions = 1;
    trace.add(Counter::Expansions, 1);
    let mut stack: Vec<PathFrame<S, M, O>> = vec![PathFrame {
        state: initial,
        observer,
        pending,
        incoming: None,
        enabled,
        next: 0,
    }];

    while !stack.is_empty() {
        stats.max_depth = stats.max_depth.max(stack.len());
        trace.add(Counter::Depth, stack.len() as u64);
        let top_index = stack.len() - 1;
        if stack[top_index].next >= stack[top_index].enabled.len() {
            stack.pop();
            continue;
        }
        let (instance, next_state, next_observer, next_pending) = {
            let _span = trace.span(Phase::Expansion);
            let top = &mut stack[top_index];
            let instance = top.enabled[top.next].clone();
            top.next += 1;
            let next_state = execute_enabled(spec, &top.state, &instance);
            let next_observer = top
                .observer
                .update(spec, &top.state, &instance, &next_state);
            let next_pending = property.step_pending(top.pending, &next_state, &next_observer);
            (instance, next_state, next_observer, next_pending)
        };
        stats.transitions_executed += 1;
        trace.add(Counter::Transitions, 1);

        // On-path cycle detection.
        if let Some(entry) = stack.iter().position(|f| {
            f.state == next_state && f.observer == next_observer && f.pending == next_pending
        }) {
            let cycle_frames = &stack[entry..];
            let fair = {
                let enabled: Vec<&[TransitionInstance<M>]> =
                    cycle_frames.iter().map(|f| f.enabled.as_slice()).collect();
                let mut executed: Vec<&TransitionInstance<M>> = cycle_frames[1..]
                    .iter()
                    .filter_map(|f| f.incoming.as_ref())
                    .collect();
                executed.push(&instance);
                cycle_fair(spec, fairness, &enabled, &executed)
            };
            if next_pending && cycle_frames.iter().all(|f| f.pending) && fair {
                let stem: Vec<TransitionInstance<M>> = stack[..=entry]
                    .iter()
                    .filter_map(|f| f.incoming.clone())
                    .collect();
                let mut cycle: Vec<TransitionInstance<M>> = stack[entry + 1..]
                    .iter()
                    .filter_map(|f| f.incoming.clone())
                    .collect();
                cycle.push(instance);
                let cx = Counterexample::lasso(
                    spec,
                    property.name(),
                    violation_reason(property.class(), false, fairness),
                    &stem,
                    &cycle,
                    &stack[entry].state,
                );
                return finish(stats, Verdict::Violated(Box::new(cx)));
            }
            // Cut the cycle: re-descending would loop forever.
            stats.revisits += 1;
            trace.add(Counter::Revisits, 1);
            continue;
        }

        stats.states += 1;
        trace.add(Counter::States, 1);
        if stats.expansions >= config.max_states {
            let verdict = Verdict::LimitReached {
                what: format!("expansion limit of {}", config.max_states),
            };
            return finish(stats, verdict);
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                let verdict = Verdict::LimitReached {
                    what: format!("time limit of {limit:?}"),
                };
                return finish(stats, verdict);
            }
        }
        if stack.len() >= config.max_depth {
            let verdict = Verdict::LimitReached {
                what: format!("depth limit of {}", config.max_depth),
            };
            return finish(stats, verdict);
        }

        let enabled = {
            let _span = trace.span(Phase::Expansion);
            enabled_instances(spec, &next_state)
        };
        if enabled.is_empty() {
            if next_pending {
                let mut stem: Vec<TransitionInstance<M>> =
                    stack.iter().filter_map(|f| f.incoming.clone()).collect();
                stem.push(instance);
                let cx = Counterexample::lasso(
                    spec,
                    property.name(),
                    violation_reason(property.class(), true, fairness),
                    &stem,
                    &[],
                    &next_state,
                );
                return finish(stats, Verdict::Violated(Box::new(cx)));
            }
            continue;
        }
        if !next_pending && property.discharged_forever() {
            continue;
        }

        stats.expansions += 1;
        trace.add(Counter::Expansions, 1);
        stack.push(PathFrame {
            state: next_state,
            observer: next_observer,
            pending: next_pending,
            incoming: Some(instance),
            enabled,
            next: 0,
        });
    }

    finish(stats, Verdict::Verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullObserver, Property};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(NoSymmetry)
    }

    /// A process counting 0..=steps; terminates at `steps`.
    fn counter(steps: u8) -> ProtocolSpec<u8, Tok> {
        ProtocolSpec::builder("counter")
            .process("c", 0u8)
            .transition(
                TransitionSpec::builder("inc", p(0))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    /// A toggler that flips a bit forever (pure cycle, no quiescence).
    fn toggler() -> ProtocolSpec<u8, Tok> {
        ProtocolSpec::builder("toggler")
            .process("t", 0u8)
            .transition(
                TransitionSpec::builder("toggle", p(0))
                    .internal()
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(1 - *l))
                    .build(),
            )
            .build()
            .unwrap()
    }

    fn reaches(value: u8) -> Property<u8, Tok, NullObserver> {
        Property::termination(
            format!("reaches-{value}"),
            move |s: &GlobalState<u8, Tok>, _| s.locals[0] == value,
        )
    }

    #[test]
    fn terminating_counter_verifies_termination() {
        let spec = counter(3);
        let report = run_liveness_dfs(
            &spec,
            &reaches(3),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_verified(), "{report}");
        assert!(report.strategy.contains("liveness-dfs"));
    }

    #[test]
    fn counter_stuck_before_goal_yields_quiescent_lasso() {
        // The counter stops at 2 but the goal is 5: every maximal execution
        // quiesces with the obligation outstanding.
        let spec = counter(2);
        let report = run_liveness_dfs(
            &spec,
            &reaches(5),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        let cx = report.verdict.counterexample().expect("must violate");
        assert!(cx.is_lasso);
        assert!(cx.cycle.is_empty(), "quiescent lasso has no cycle");
        assert_eq!(cx.steps.len(), 2, "two increments reach the stuck state");
        assert!(cx.reason.contains("quiesces"));
    }

    #[test]
    fn toggler_never_reaching_goal_yields_fair_cycle() {
        let spec = toggler();
        let report = run_liveness_dfs(
            &spec,
            &reaches(5),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        let cx = report.verdict.counterexample().expect("must violate");
        assert!(cx.is_lasso);
        assert!(!cx.cycle.is_empty(), "the toggle loop is the cycle");
        assert!(cx.reason.contains("cycle"));
    }

    #[test]
    fn weak_fairness_rejects_starving_cycles() {
        // Toggler + a mover that reaches the goal in one step. The toggle
        // cycle never reaches the goal, but the mover is enabled in every
        // state of that cycle and never executed — weak fairness rejects
        // the cycle, and since the mover's step leads to the goal in every
        // interleaving, termination holds.
        let spec: ProtocolSpec<u8, Tok> = ProtocolSpec::builder("toggle+move")
            .process("toggler", 0u8)
            .process("mover", 0u8)
            .transition(
                TransitionSpec::builder("toggle", p(0))
                    .internal()
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(1 - *l))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("move", p(1))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .visible()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap();
        let goal = Property::termination("mover-done", |s: &GlobalState<u8, Tok>, _| {
            *s.local(p(1)) == 1
        });
        let fair = run_liveness_dfs(
            &spec,
            &goal,
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(
            fair.verdict.is_verified(),
            "weak fairness must reject the starving toggle cycle: {fair}"
        );
        // Without fairness the starving schedule is legitimate.
        let unfair = run_liveness_dfs(
            &spec,
            &goal.clone().with_fairness(Fairness::Unfair),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(
            unfair.verdict.is_violated(),
            "without fairness the toggle loop is a counterexample: {unfair}"
        );
        // SPOR agrees with the unreduced verdicts (cycle proviso at work).
        let reducer = SporReducer::new(&spec);
        let fair_spor = run_liveness_dfs(
            &spec,
            &goal,
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(fair_spor.verdict.is_verified(), "{fair_spor}");
    }

    #[test]
    fn leads_to_holds_on_counter() {
        // 1 leads to 3 on the counter that counts to 3.
        let spec = counter(3);
        let prop = Property::leads_to(
            "1-leads-to-3",
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 1,
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 3,
        );
        let report = run_liveness_dfs(
            &spec,
            &prop,
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_verified(), "{report}");
        // ...but 1 never leads to 5.
        let prop = Property::leads_to(
            "1-leads-to-5",
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 1,
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 5,
        );
        let report = run_liveness_dfs(
            &spec,
            &prop,
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_violated(), "{report}");
    }

    #[test]
    fn stateless_liveness_agrees_with_stateful() {
        for steps in [2u8, 3] {
            for goal in [2u8, 5] {
                let spec = counter(steps);
                let stateful = run_liveness_dfs(
                    &spec,
                    &reaches(goal),
                    &NullObserver,
                    &NoReduction,
                    &no_sym(),
                    &CheckerConfig::default(),
                );
                let stateless = run_stateless_liveness(
                    &spec,
                    &reaches(goal),
                    &NullObserver,
                    false,
                    &CheckerConfig::stateless(false),
                );
                assert_eq!(
                    stateful.verdict.is_verified(),
                    stateless.verdict.is_verified(),
                    "steps={steps} goal={goal}"
                );
            }
        }
        // And on the cyclic toggler, where the stateless engine must cut
        // the cycle instead of descending forever.
        let spec = toggler();
        let report = run_stateless_liveness(
            &spec,
            &reaches(5),
            &NullObserver,
            true,
            &CheckerConfig::stateless(true),
        );
        assert!(report.verdict.is_violated(), "{report}");
        assert!(report.strategy.contains("full expansion"));
    }

    /// Regression test for the cross-edge completeness hole: the DFS tree
    /// path into the violating cycle routes through a goal state, so the
    /// on-stack segment at the back edge contains a discharged state and is
    /// rejected — the genuine all-pending cycle closes via a cross edge to
    /// an already-visited node and is only caught by the phase-2 SCC pass.
    ///
    /// One process, locals i=0, u=1, g=2, v=3, w=4; edges 0→1, 1→2, 1→3,
    /// 2→3, 3→4, 4→1; trigger {1, 3}, goal {2}. The fair run 1→3→4→1 never
    /// reaches the goal.
    #[test]
    fn cross_edge_cycles_are_found_by_the_scc_pass() {
        let edge = |name: &str, from: u8, to: u8| {
            TransitionSpec::builder(name.to_string(), p(0))
                .internal()
                .guard(move |l: &u8, _| *l == from)
                .sends_nothing()
                .visible()
                .effect(move |_, _| Outcome::new(to))
                .build()
        };
        let spec: ProtocolSpec<u8, Tok> = ProtocolSpec::builder("cross-edge")
            .process("only", 0u8)
            .transition(edge("iu", 0, 1))
            .transition(edge("ug", 1, 2))
            .transition(edge("uv", 1, 3))
            .transition(edge("gv", 2, 3))
            .transition(edge("vw", 3, 4))
            .transition(edge("wu", 4, 1))
            .build()
            .unwrap();
        let prop = Property::leads_to(
            "trigger-leads-to-goal",
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 1 || s.locals[0] == 3,
            |s: &GlobalState<u8, Tok>, _: &NullObserver| s.locals[0] == 2,
        );
        let stateful = run_liveness_dfs(
            &spec,
            &prop,
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        let cx = stateful
            .verdict
            .counterexample()
            .expect("the u→v→w→u cycle never reaches g");
        assert!(cx.is_lasso);
        assert!(
            !cx.cycle.is_empty(),
            "a genuine cycle, not a deadlock: {cx}"
        );
        // The stateless path enumerator agrees (it sees every elementary
        // cycle directly).
        let stateless = run_stateless_liveness(
            &spec,
            &prop,
            &NullObserver,
            false,
            &CheckerConfig::stateless(false),
        );
        assert!(stateless.verdict.is_violated(), "{stateless}");
        // And SPOR agrees too (single process: nothing to reduce, but the
        // code path exercises the recorded reduced subgraph).
        let reducer = SporReducer::new(&spec);
        let spor = run_liveness_dfs(
            &spec,
            &prop,
            &NullObserver,
            &reducer,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(spor.verdict.is_violated(), "{spor}");
    }

    /// A fingerprint store can report an unseen pending state as visited
    /// (hash collision); the pending-graph recording must drop the edge —
    /// matching that backend's probabilistic-`Verified` contract — rather
    /// than panic. An 8-bit fingerprint over a ~400-state grid guarantees
    /// collisions.
    #[test]
    fn fingerprint_store_liveness_degrades_gracefully() {
        use mp_store::StoreConfig;
        let mut builder = ProtocolSpec::builder("grid");
        for i in 0..2 {
            builder = builder.process(format!("c{i}"), 0u8);
        }
        for i in 0..2 {
            builder = builder.transition(
                TransitionSpec::builder(format!("inc{i}"), p(i))
                    .internal()
                    .guard(|l, _| *l < 20)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        let spec: ProtocolSpec<u8, Tok> = builder.build().unwrap();
        let prop = Property::termination("both-at-20", |s: &GlobalState<u8, Tok>, _| {
            s.locals.iter().all(|l| *l == 20)
        });
        let report = run_liveness_dfs(
            &spec,
            &prop,
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default().with_store(StoreConfig::fingerprint(8)),
        );
        assert!(report.verdict.is_verified(), "{report}");
        assert_eq!(report.stats.store_backend, "fingerprint");
    }

    #[test]
    fn goal_in_initial_state_is_trivially_verified() {
        let spec = counter(3);
        let report = run_liveness_dfs(
            &spec,
            &reaches(0),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            &CheckerConfig::default(),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 1, "goal states are closed: no search");
    }
}
