//! Engine-side observability helpers: per-level time-series bookkeeping
//! shared by the BFS engines.
//!
//! The `level_summary` NDJSON event wants *per-level deltas* (new states,
//! store hits) on top of cumulative counters the store reports, plus the
//! level's wall-clock. [`LevelObserver`] keeps the previous level's
//! cumulative figures and the level-start instant so each engine's level
//! loop stays two calls long. Everything here is gated on the tracer: a
//! disabled tracer means [`LevelObserver::enabled`] is `false`, the engines
//! skip the store/frontier stats reads entirely, and no clock is touched —
//! preserving the invariant that an untraced run does no extra work.

use std::time::Instant;

use mp_trace::{LevelSummary, TraceHandle};

/// Rolling state for per-level `level_summary` emission. See module docs.
pub(crate) struct LevelObserver {
    enabled: bool,
    level_start: Option<Instant>,
    prev_states: u64,
    prev_hits: u64,
}

impl LevelObserver {
    /// Captures whether `trace` is live; a disabled trace makes every other
    /// method a no-op and `enabled()` lets callers skip stats reads.
    pub fn new(trace: &TraceHandle) -> Self {
        LevelObserver {
            enabled: trace.is_enabled(),
            level_start: None,
            prev_states: 0,
            prev_hits: 0,
        }
    }

    /// `true` when the run is traced — callers gate their stats reads on
    /// this so untraced runs skip the bookkeeping entirely.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the pre-search baseline (the root state the engines insert
    /// before the level loop), so level 1's `new_states` counts only what
    /// the level itself discovered and the per-level deltas tile the
    /// search: `Σ new_states = states − 1`. Gate the stats reads on
    /// [`enabled`](Self::enabled), like `end_level`.
    pub fn seed(&mut self, store_states: u64, store_hits: u64) {
        self.prev_states = store_states;
        self.prev_hits = store_hits;
    }

    /// Marks the start of a level (reads the clock only when enabled).
    pub fn begin_level(&mut self) {
        if self.enabled {
            self.level_start = Some(Instant::now());
        }
    }

    /// Folds the level's cumulative end-state into a [`LevelSummary`] with
    /// per-level deltas, advancing the rolling baseline. `store_states` and
    /// `store_hits` are cumulative; `frontier_bytes` is reported as given
    /// (the engines pass the frontier's peak so far).
    pub fn end_level(
        &mut self,
        level: u64,
        width: u64,
        store_states: u64,
        store_hits: u64,
        frontier_bytes: u64,
    ) -> LevelSummary {
        let duration_us = self
            .level_start
            .take()
            .map_or(0, |t| t.elapsed().as_micros() as u64);
        let summary = LevelSummary {
            level,
            width,
            new_states: store_states.saturating_sub(self.prev_states),
            store_hits: store_hits.saturating_sub(self.prev_hits),
            frontier_bytes,
            duration_us,
        };
        self.prev_states = store_states;
        self.prev_hits = store_hits;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_trace::{SharedBuffer, Tracer};

    #[test]
    fn disabled_traces_disable_the_observer() {
        let tracer = Tracer::disabled();
        let run = tracer.begin_run("p", "s", "prop");
        let obs = LevelObserver::new(&run.handle());
        assert!(!obs.enabled());
    }

    #[test]
    fn levels_report_deltas_not_cumulative_counts() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("p", "s", "prop");
        let mut obs = LevelObserver::new(&run.handle());
        assert!(obs.enabled());
        obs.seed(1, 0); // the pre-inserted root

        obs.begin_level();
        let first = obs.end_level(1, 1, 5, 2, 128);
        assert_eq!(first.new_states, 4, "root doesn't count as discovered");
        assert_eq!(first.store_hits, 2);

        obs.begin_level();
        let second = obs.end_level(2, 4, 12, 9, 256);
        assert_eq!(second.new_states, 7, "12 total - 5 prior");
        assert_eq!(second.store_hits, 7, "9 total - 2 prior");
        assert_eq!(second.frontier_bytes, 256);
        run.finish("verified");
    }
}
