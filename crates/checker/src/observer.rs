//! History observers (ghost state).
//!
//! The paper's specifications are Java assertions that may peek at the state
//! of remote processes (its footnote 7 calls this a "hack"). The sound
//! equivalent in this reproduction is an **observer**: a deterministic
//! history variable folded by the checker into every explored state. The
//! observer sees each executed step together with the pre- and post-state and
//! can record whatever the property needs (e.g. "which writes had completed
//! when this read was invoked" for the regular-storage regularity property).
//!
//! Because the observer value is part of the explored state, stateful search
//! remains sound; because observer-relevant transitions are annotated
//! *visible*, partial-order reduction never postpones them past the
//! reduction (see `mp-por`).

use std::fmt::Debug;
use std::hash::Hash;

use mp_model::{
    DecodeError, Encode, GlobalState, LocalState, Message, ProtocolSpec, TransitionInstance,
};

/// A deterministic history variable updated on every executed transition.
///
/// Observers are part of the stored state, so the disk-backed BFS frontier
/// (`mp-store`) must be able to spill and restore them: every observer is
/// [`Encode`], and [`Observer::decode_like`] rebuilds one from its encoded
/// bytes. Decoding takes `&self` as a *template* because some observers
/// carry non-serializable configuration next to their history (a base-spec
/// handle, say, in `mp-faults`' lifted observer): the template — in
/// practice the run's initial observer — supplies the configuration, the
/// bytes supply the history. Plain observers ignore the template and
/// delegate to their [`Decode`](mp_model::Decode) implementation.
pub trait Observer<S: LocalState, M: Message>:
    Clone + Eq + Hash + Debug + Send + Sync + Encode + 'static
{
    /// Returns the observer value after `instance` was executed, taking the
    /// system from `pre` to `post`.
    fn update(
        &self,
        spec: &ProtocolSpec<S, M>,
        pre: &GlobalState<S, M>,
        instance: &TransitionInstance<M>,
        post: &GlobalState<S, M>,
    ) -> Self;

    /// Rebuilds an observer from the bytes its [`Encode`] wrote, inheriting
    /// any non-serialized configuration from `self` (see the trait docs).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    fn decode_like(&self, input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// The trivial observer: records nothing and costs nothing. Used by every
/// property that is expressible directly over the global state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NullObserver;

// The trivial observer embeds no process ids: symmetry reduction
// (`mp-symmetry`) canonicalizes it as plain data.
impl mp_model::Permutable for NullObserver {
    fn permute(&self, _perm: &mp_model::Permutation) -> Self {
        NullObserver
    }
}

mp_model::codec!(struct NullObserver);

impl<S: LocalState, M: Message> Observer<S, M> for NullObserver {
    fn update(
        &self,
        _spec: &ProtocolSpec<S, M>,
        _pre: &GlobalState<S, M>,
        _instance: &TransitionInstance<M>,
        _post: &GlobalState<S, M>,
    ) -> Self {
        NullObserver
    }

    fn decode_like(&self, input: &mut &[u8]) -> Result<Self, DecodeError> {
        mp_model::Decode::decode(input)
    }
}

/// An observer that counts how many times each transition (by id) has been
/// executed along the current path. Mostly useful in tests and debugging;
/// note that including it in the state distinguishes paths that would
/// otherwise merge, so it inflates the state space.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct TransitionCountObserver {
    counts: Vec<(usize, u32)>,
}

impl TransitionCountObserver {
    /// Creates an observer with all counts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns how many times transition `index` has fired on this path.
    pub fn count(&self, index: usize) -> u32 {
        self.counts
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Returns the total number of steps observed.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|(_, c)| c).sum()
    }
}

mp_model::codec!(struct TransitionCountObserver { counts });

impl<S: LocalState, M: Message> Observer<S, M> for TransitionCountObserver {
    fn decode_like(&self, input: &mut &[u8]) -> Result<Self, DecodeError> {
        mp_model::Decode::decode(input)
    }

    fn update(
        &self,
        _spec: &ProtocolSpec<S, M>,
        _pre: &GlobalState<S, M>,
        instance: &TransitionInstance<M>,
        _post: &GlobalState<S, M>,
    ) -> Self {
        let mut next = self.clone();
        let idx = instance.transition.index();
        match next.counts.iter_mut().find(|(i, _)| *i == idx) {
            Some((_, c)) => *c += 1,
            None => {
                next.counts.push((idx, 1));
                next.counts.sort_unstable();
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, ProcessId, ProtocolSpec, TransitionId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn tiny_spec() -> ProtocolSpec<u8, Tok> {
        ProtocolSpec::builder("tiny")
            .process("a", 0u8)
            .transition(
                TransitionSpec::builder("step", ProcessId(0))
                    .internal()
                    .effect(|l: &u8, _| Outcome::new(l.wrapping_add(1)))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn null_observer_is_constant() {
        let spec = tiny_spec();
        let s = spec.initial_state();
        let inst = TransitionInstance::new(TransitionId(0), ProcessId(0), Vec::new());
        let o = NullObserver;
        assert_eq!(o.update(&spec, &s, &inst, &s), NullObserver);
    }

    #[test]
    fn transition_count_observer_counts_steps() {
        let spec = tiny_spec();
        let s = spec.initial_state();
        let inst = TransitionInstance::new(TransitionId(0), ProcessId(0), Vec::new());
        let o = TransitionCountObserver::new();
        assert_eq!(o.count(0), 0);
        let o = Observer::<u8, Tok>::update(&o, &spec, &s, &inst, &s);
        let o = Observer::<u8, Tok>::update(&o, &spec, &s, &inst, &s);
        assert_eq!(o.count(0), 2);
        assert_eq!(o.count(1), 0);
        assert_eq!(o.total(), 2);
    }

    #[test]
    fn distinct_histories_are_distinct_observers() {
        let spec = tiny_spec();
        let s = spec.initial_state();
        let inst = TransitionInstance::new(TransitionId(0), ProcessId(0), Vec::new());
        let zero = TransitionCountObserver::new();
        let one = Observer::<u8, Tok>::update(&zero, &spec, &s, &inst, &s);
        assert_ne!(zero, one);
    }
}
