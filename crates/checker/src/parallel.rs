//! Level-synchronous parallel breadth-first search over a persistent
//! work-stealing worker pool (extension).
//!
//! The paper's engines are single-threaded (a JPF limitation); this engine
//! is an extension showing that the protocol-level models of `mp-model`
//! parallelise naturally. The visited set is a shared `mp-store` backend,
//! selected by [`CheckerConfig::store`] with one twist: the plain exact
//! store would serialise every worker on its single mutex, so
//! [`StoreConfig::for_parallel`](mp_store::StoreConfig::for_parallel)
//! upgrades it to the lock-striped sharded store — there is **no global
//! mutex on the visited set**. A fingerprint store can be selected
//! explicitly for large runs (probabilistic `Verified`; see the `mp-store`
//! docs).
//!
//! # Pool lifecycle
//!
//! Exactly `threads` OS workers are spawned **once per run** and live for
//! the whole search (the spawn count is reported in
//! [`ExplorationStats::worker_spawns`] and asserted by a test). Earlier
//! revisions re-spawned a scoped thread set for every batch of every level;
//! at paper scale that paid a spawn/join barrier thousands of times per
//! run. The coordinator (the calling thread) keeps sole ownership of the
//! frontier — [`FrontierBackend`] is a `&mut self` API — and feeds the pool
//! through per-worker deques.
//!
//! # Stealing protocol
//!
//! Each worker owns a deque of work chunks. The coordinator deals the
//! chunks of a batch round-robin across the deques; a worker pops from the
//! *front* of its own deque and, when that is empty, scans the other
//! workers and steals from the *back* of the first non-empty victim (one
//! [`Counter::Steals`] bump per stolen chunk). A worker that finds nothing
//! anywhere parks on a condvar until the coordinator deals more work or
//! shuts the pool down. Two amortizations ride on the chunk granularity:
//! each worker buffers its first-visit successors thread-locally and
//! flushes them to the coordinator in one block per chunk, and successor
//! canonicalization is batched — one [`Phase::Canonicalize`] span (and one
//! [`Phase::StoreLookup`] span) covers a whole chunk's run of successors
//! instead of one span pair per successor.
//!
//! # Termination detection
//!
//! Termination is detected at level boundaries: the coordinator counts the
//! chunks it dealt (`outstanding`), workers count them back down as they
//! finish, and a level is complete exactly when the frontier's current
//! level is drained *and* `outstanding` is zero. Only then does the
//! coordinator advance the frontier level, so exploration remains strictly
//! level-synchronous — verdicts, state counts and peak depth are identical
//! to the sequential BFS. With the disk frontier selected (`+spill`
//! strategy suffix) only the in-flight chunks plus the spill watermark are
//! resident at a time, because flushed successor blocks stream into the
//! (spilling) next level as the coordinator receives them.
//!
//! Symmetry composes the same way as in the sequential engine: entries
//! carry canonical representatives plus δ, and workers reconstruct the
//! concrete state before expanding. The engine checks invariants and
//! counts states; it does not reconstruct counterexample *paths* — the
//! violating state is reported with the depth and store size at violation
//! time — so the sequential engines remain the right tool for debugging
//! runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mp_store::{
    canonical_label, manifest_exists, CheckpointWriter, FrontierBackend, ItemCodec, Manifest,
    StateStoreBackend,
};

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;
use mp_trace::{Counter, Gauge, Histogram, Phase, TraceHandle};

use crate::{
    bfs::{Entry, EntryCodec},
    liveness::run_liveness_dfs,
    obs::LevelObserver,
    CheckerConfig, Counterexample, ExplorationStats, Observer, Property, PropertyStatus, RunReport,
    Verdict,
};

/// Upper bound on a blind park. The condvar protocol below has no lost
/// wakeups by construction (every producer notifies while holding the same
/// mutex the waiter re-checks under), so this timeout never matters for
/// progress — it is a belt-and-braces guard that turns any future protocol
/// bug into a bounded slowdown instead of a hung CI job.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Locks a mutex, ignoring poisoning. Every mutex in the pool guards plain
/// collections that stay structurally valid if a worker panics mid-run; by
/// not re-panicking here the coordinator can still drain the pool and let
/// the thread scope propagate the original panic instead of deadlocking.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared coordination state of the persistent worker pool. One instance
/// lives on the coordinator's stack for the duration of a run; workers
/// reach it by reference through the thread scope.
struct Pool<T> {
    /// One work deque per worker: the owner pops from the front, thieves
    /// pop from the back (so a steal takes the chunk the owner would reach
    /// last).
    queues: Vec<Mutex<VecDeque<Vec<T>>>>,
    /// Chunks currently sitting in deques. Announced *before* the deque
    /// push and decremented only after a successful pop, so the count never
    /// underflows; a worker that reads a stale positive value simply
    /// rescans.
    queued: AtomicUsize,
    /// Chunks dealt to the pool and not yet fully expanded. The
    /// coordinator's level-boundary termination test is `queued == 0` on
    /// the frontier side plus `outstanding == 0` here.
    outstanding: AtomicUsize,
    /// Workers park here when every deque is empty.
    idle: Mutex<()>,
    idle_cvar: Condvar,
    /// First-visit successor blocks flushed by workers, awaiting the
    /// coordinator (which alone may touch the frontier).
    discovered: Mutex<Vec<T>>,
    /// Entries buffered in `discovered` (updated under its lock; read
    /// lock-free by the coordinator to skip a needless lock).
    ready: AtomicUsize,
    /// The coordinator parks here waiting for flushes or completions.
    progress: Mutex<()>,
    progress_cvar: Condvar,
    /// Run-over flag: workers exit their take loop once the deques drain.
    shutdown: AtomicBool,
    /// OS threads actually started — the one-spawn-per-run contract made
    /// observable (surfaces as [`ExplorationStats::worker_spawns`]).
    spawned: AtomicUsize,
}

impl<T> Pool<T> {
    fn new(workers: usize) -> Self {
        Pool {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cvar: Condvar::new(),
            discovered: Mutex::new(Vec::new()),
            ready: AtomicUsize::new(0),
            progress: Mutex::new(()),
            progress_cvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Deals one chunk into `worker`'s deque and wakes a parked worker.
    fn submit(&self, worker: usize, chunk: Vec<T>) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::SeqCst);
        lock(&self.queues[worker]).push_back(chunk);
        // Notify while holding the idle mutex: a worker that re-checked
        // `queued` under this mutex and decided to wait cannot miss this.
        let _guard = lock(&self.idle);
        self.idle_cvar.notify_one();
    }

    /// Takes the next chunk for `worker`: its own deque first, then a steal
    /// sweep over the victims, then a park. Returns the chunk plus whether
    /// it was stolen; `None` once the pool is shut down and drained.
    fn take(&self, worker: usize) -> Option<(Vec<T>, bool)> {
        loop {
            if let Some(chunk) = lock(&self.queues[worker]).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some((chunk, false));
            }
            for offset in 1..self.queues.len() {
                let victim = (worker + offset) % self.queues.len();
                if let Some(chunk) = lock(&self.queues[victim]).pop_back() {
                    self.queued.fetch_sub(1, Ordering::SeqCst);
                    return Some((chunk, true));
                }
            }
            let guard = lock(&self.idle);
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                let _ = self.idle_cvar.wait_timeout(guard, PARK_TIMEOUT);
            }
        }
    }

    /// Flushes a worker's thread-local block of first-visit successors to
    /// the coordinator.
    fn flush(&self, block: &mut Vec<T>) {
        if block.is_empty() {
            return;
        }
        let mut buffer = lock(&self.discovered);
        self.ready.fetch_add(block.len(), Ordering::SeqCst);
        buffer.append(block);
        drop(buffer);
        let _guard = lock(&self.progress);
        self.progress_cvar.notify_all();
    }

    /// Takes every successor entry flushed so far (coordinator side).
    fn drain_ready(&self) -> Vec<T> {
        if self.ready.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        let mut buffer = lock(&self.discovered);
        self.ready.store(0, Ordering::SeqCst);
        std::mem::take(&mut *buffer)
    }

    /// Parks the coordinator until a worker flushes successors or finishes
    /// a chunk (bounded by [`PARK_TIMEOUT`]).
    fn wait_progress(&self) {
        let guard = lock(&self.progress);
        if self.outstanding.load(Ordering::SeqCst) != 0 && self.ready.load(Ordering::SeqCst) == 0 {
            let _ = self.progress_cvar.wait_timeout(guard, PARK_TIMEOUT);
        }
    }

    /// Shuts the pool down: workers finish any chunks still queued, then
    /// their take loops return `None`.
    fn finish(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _guard = lock(&self.idle);
        self.idle_cvar.notify_all();
    }
}

/// Decrements `outstanding` and wakes the coordinator when dropped — a
/// drop guard so a panicking worker still counts its chunk back down and
/// the coordinator drains instead of waiting forever (the panic itself is
/// re-raised by the thread scope's join).
struct Completion<'a, T>(&'a Pool<T>);

impl<T> Drop for Completion<'_, T> {
    fn drop(&mut self) {
        self.0.outstanding.fetch_sub(1, Ordering::SeqCst);
        let _guard = lock(&self.0.progress);
        self.0.progress_cvar.notify_all();
    }
}

/// Shuts the pool down when dropped, so a coordinator panic (a frontier
/// I/O failure, say) releases the workers and the scope can join instead
/// of deadlocking.
struct FinishOnDrop<'a, T>(&'a Pool<T>);

impl<T> Drop for FinishOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.finish();
    }
}

/// Canonicalizes and keys one chunk's worth of freshly generated
/// successors. This is the batched half of the pool's amortization: a
/// single [`Phase::Canonicalize`] span covers the whole run of successors
/// (the sequential engines open one per successor) and a single
/// [`Phase::StoreLookup`] span covers the insert sweep. First-visit
/// entries are appended to `block` carrying the canonical representative
/// plus δ; `pending` is left empty for the next chunk.
fn insert_chunk_successors<S, M, O>(
    trivial: bool,
    symmetry: &dyn Symmetry<S, M, O>,
    store: &mp_store::CanonicalStore<(GlobalState<S, M>, O)>,
    trace: &TraceHandle,
    pending: &mut Vec<(GlobalState<S, M>, O)>,
    block: &mut Vec<Entry<S, M, O>>,
) where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if pending.is_empty() {
        return;
    }
    if trivial {
        let _lookup = trace.span(Phase::StoreLookup);
        for concrete in pending.drain(..) {
            if store.insert_ref(&concrete) {
                trace.add(Counter::States, 1);
                block.push((0, 0, concrete.0, concrete.1));
            } else {
                trace.add(Counter::Revisits, 1);
            }
        }
        return;
    }
    let keys: Vec<(GlobalState<S, M>, O, usize)> = {
        let _span = trace.span(Phase::Canonicalize);
        pending
            .iter()
            .map(|(state, observer)| symmetry.canonicalize(state, observer))
            .collect()
    };
    if trace.is_enabled() {
        // Same orbit accounting `canonicalize_traced` would have done,
        // kept off the untraced path because it costs an extra group sweep.
        for (state, observer) in pending.iter() {
            trace.record(
                Histogram::OrbitSize,
                symmetry.orbit_size(state, observer) as u64,
            );
        }
    }
    pending.clear();
    let _lookup = trace.span(Phase::StoreLookup);
    for (canonical_state, canonical_observer, delta) in keys {
        let key = (canonical_state, canonical_observer);
        if store.insert_ref(&key) {
            trace.add(Counter::States, 1);
            block.push((0, delta, key.0, key.1));
        } else {
            trace.add(Counter::Revisits, 1);
        }
    }
}

/// Runs a parallel breadth-first search over `threads` workers
/// (0 = available parallelism).
///
/// Dispatches on the property class: safety properties run the pooled
/// level-synchronous search below (see the module docs for the pool
/// lifecycle, stealing protocol and termination detection). Liveness
/// properties need a cycle-capable search, which a level-synchronous
/// frontier cannot provide, so they are routed to the (sequential)
/// fairness-aware liveness DFS of [`crate::liveness`] — the report's
/// strategy label says so.
///
/// With a non-trivial [`Symmetry`], workers canonicalize each successor
/// once (batched per chunk); the canonical pair is both the shared-store
/// key and the frontier payload (alongside δ), so only one member per
/// orbit enters the next level and frontier bytes shrink with the orbit
/// collapse.
pub fn run_parallel_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    threads: usize,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    stats.worker_threads = threads;
    let trivial = symmetry.is_trivial();
    let mut strategy = format!("parallel-bfs({threads})+{}", reducer.name());
    if !trivial {
        strategy.push('+');
        strategy.push_str(&symmetry.label());
    }
    if config.frontier.spills() {
        strategy.push_str("+spill");
    }
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    // Like the sequential BFS, keys are pre-canonicalized (once per
    // successor, inside the workers), so the canonical wrapper runs in
    // passthrough mode on the lock-striped store.
    let store = config
        .store
        .for_parallel()
        .build_canonical::<(GlobalState<S, M>, O)>(None);
    let store_name = if trivial {
        store.name()
    } else {
        canonical_label(store.name())
    };
    let mut frontier = config.frontier.build(EntryCodec {
        template: initial_observer.clone(),
    });
    frontier.set_trace(trace.handle());

    // Checkpoint identity mirrors the sequential BFS: protocol structure,
    // the full strategy label and the semantic configuration fields. The
    // strategy label embeds the worker count, so a resume under a different
    // thread count (or engine, reducer, symmetry) is refused.
    let spec_fp = spec.structure_fingerprint();
    let identity = format!(
        "{} sym={}",
        config.checkpoint_identity(),
        if trivial {
            "off".to_string()
        } else {
            symmetry.label()
        }
    );
    let every = config
        .checkpoint
        .as_ref()
        .map(|c| c.every_levels.max(1))
        .unwrap_or(1);
    let entry_codec = EntryCodec {
        template: initial_observer.clone(),
    };
    let mut ckpt: Option<CheckpointWriter> = None;
    let mut scratch: Vec<u8> = Vec::new();
    // Committed counter totals from a resumed manifest. The worker-side
    // atomics restart at zero on a resume, so the finalization below adds
    // these bases back in.
    let mut expansions_base = 0usize;
    let mut transitions_base = 0usize;
    let mut reduced_base = 0usize;
    let mut revisits_base = 0usize;

    let violation: Mutex<Option<Counterexample>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let transitions_executed = AtomicUsize::new(0);
    let reduced_states = AtomicUsize::new(0);
    let expansions = AtomicUsize::new(0);
    // The BFS level currently being expanded, mirrored for the workers so
    // a violation report can say how deep it was found.
    let depth_now = AtomicUsize::new(0);
    let mut depth = 0usize;

    macro_rules! ckpt_write {
        ($result:expr) => {
            $result.unwrap_or_else(|e| panic!("checkpoint write failed: {e}"))
        };
    }
    // At a level boundary the pool is idle, so the cumulative store and
    // atomic counter reads below are stable snapshots. This engine does no
    // path reconstruction and no proviso accounting, hence the fixed zero.
    macro_rules! ckpt_counters {
        () => {
            [
                ("states", store.len() as u64),
                (
                    "expansions",
                    (expansions_base + expansions.load(Ordering::SeqCst)) as u64,
                ),
                (
                    "transitions",
                    (transitions_base + transitions_executed.load(Ordering::SeqCst)) as u64,
                ),
                ("revisits", (revisits_base + store.stats().hits) as u64),
                (
                    "reduced_states",
                    (reduced_base + reduced_states.load(Ordering::SeqCst)) as u64,
                ),
                ("proviso_expansions", 0u64),
                ("max_depth", depth as u64),
            ]
        };
    }

    let resume_manifest = match &config.checkpoint {
        Some(c) if manifest_exists(&c.dir) => {
            let manifest = Manifest::load(&c.dir)
                .unwrap_or_else(|e| panic!("checkpoint manifest in {}: {e}", c.dir.display()));
            manifest
                .validate(spec_fp, &strategy, &identity)
                .unwrap_or_else(|e| panic!("refusing to resume from {}: {e}", c.dir.display()));
            Some(manifest)
        }
        _ => None,
    };

    if let Some(manifest) = &resume_manifest {
        let dir = &config
            .checkpoint
            .as_ref()
            .expect("a resume manifest implies a checkpoint config")
            .dir;
        // Rebuild the visited set from every committed level; the last one
        // also re-seeds the frontier, exactly as the original run left it.
        for level in 0..=manifest.level {
            let raws = manifest
                .read_level(dir, level)
                .unwrap_or_else(|e| panic!("checkpoint in {}: {e}", dir.display()));
            let last = level == manifest.level;
            for raw in raws {
                let mut input = raw.as_slice();
                let entry = entry_codec
                    .decode_item(&mut input)
                    .unwrap_or_else(|e| panic!("corrupted checkpoint entry: {e}"));
                if last {
                    store.insert((entry.2.clone(), entry.3.clone()));
                    frontier.push(entry);
                } else {
                    store.insert((entry.2, entry.3));
                }
            }
        }
        depth = manifest.level;
        expansions_base = manifest.counter("expansions") as usize;
        transitions_base = manifest.counter("transitions") as usize;
        reduced_base = manifest.counter("reduced_states") as usize;
        revisits_base = manifest.counter("revisits") as usize;
        ckpt = Some(
            CheckpointWriter::resume(dir, manifest)
                .unwrap_or_else(|e| panic!("cannot resume checkpoint in {}: {e}", dir.display())),
        );
        trace.resume(depth as u64, store.len() as u64);
    } else {
        if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
            stats.states = 1;
            trace.add(Counter::States, 1);
            stats.elapsed = start.elapsed();
            stats.record_store(store_name, store.stats());
            stats.record_frontier(frontier.name(), frontier.stats(), 0);
            stats.phases = trace.phase_times();
            trace.finish("violated");
            let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }

        let (entry_state, entry_observer, initial_delta) = if trivial {
            (initial, initial_observer, 0)
        } else {
            symmetry.canonicalize_traced(&initial, &initial_observer, &trace)
        };
        store.insert((entry_state.clone(), entry_observer.clone()));
        trace.add(Counter::States, 1);
        let root_entry = (0, initial_delta, entry_state, entry_observer);
        if let Some(c) = &config.checkpoint {
            let mut writer = CheckpointWriter::new(&c.dir)
                .unwrap_or_else(|e| panic!("cannot start checkpoint in {}: {e}", c.dir.display()));
            ckpt_write!(writer.begin_level(0));
            scratch.clear();
            entry_codec.encode_item(&root_entry, &mut scratch);
            ckpt_write!(writer.push_entry(&scratch));
            ckpt_write!(writer.seal_level());
            ckpt_write!(writer.commit(0, spec_fp, &strategy, &identity, &ckpt_counters!()));
            ckpt = Some(writer);
        }
        frontier.push(root_entry);
    }

    // The coordinator deals one batch at a time; with the disk frontier
    // this (plus the watermark) bounds the resident level size.
    let batch_size = if config.batch_size == 0 {
        threads * 64
    } else {
        config.batch_size
    };
    let pool: Pool<Entry<S, M, O>> = Pool::new(threads);
    let mut limit: Option<String> = None;
    let mut level_obs = LevelObserver::new(&trace);
    if level_obs.enabled() {
        level_obs.seed(store.len() as u64, store.stats().hits as u64);
    }

    std::thread::scope(|scope| {
        // Releases the workers even if the coordinator code below panics.
        let _finish = FinishOnDrop(&pool);
        for id in 0..threads {
            let pool = &pool;
            let store = &store;
            let violation = &violation;
            let stop = &stop;
            let transitions_executed = &transitions_executed;
            let reduced_states = &reduced_states;
            let expansions = &expansions;
            let depth_now = &depth_now;
            let symmetry = Arc::clone(symmetry);
            let trace = trace.handle();
            let spawned = std::thread::Builder::new()
                .name(format!("mp-pbfs-{id}"))
                .spawn_scoped(scope, move || {
                    pool.spawned.fetch_add(1, Ordering::SeqCst);
                    let timed = trace.is_enabled();
                    let mut busy_us = 0u64;
                    // Thread-local buffers, reused across chunks: freshly
                    // generated successors awaiting the batched
                    // canonicalize+insert, and the first-visit block
                    // flushed to the coordinator.
                    let mut pending: Vec<(GlobalState<S, M>, O)> = Vec::new();
                    let mut block: Vec<Entry<S, M, O>> = Vec::new();
                    while let Some((chunk, stolen)) = pool.take(id) {
                        let _completion = Completion(pool);
                        if stolen {
                            trace.add(Counter::Steals, 1);
                        }
                        let started = timed.then(Instant::now);
                        for (_, delta, key_state, key_observer) in &chunk {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // δ⁻¹ recovers the concrete state the entry
                            // was generated as.
                            let reconstructed;
                            let (state, observer) = if *delta == 0 {
                                (key_state, key_observer)
                            } else {
                                reconstructed = symmetry.apply_element(
                                    symmetry.inverse(*delta),
                                    key_state,
                                    key_observer,
                                );
                                (&reconstructed.0, &reconstructed.1)
                            };
                            expansions.fetch_add(1, Ordering::Relaxed);
                            trace.add(Counter::Expansions, 1);
                            let all = {
                                let _span = trace.span(Phase::Expansion);
                                enabled_instances(spec, state)
                            };
                            let reduction = reducer.reduce_traced(spec, state, all, &trace);
                            if reduction.reduced {
                                reduced_states.fetch_add(1, Ordering::Relaxed);
                            }
                            for instance in reduction.explore {
                                let (next_state, next_observer) = {
                                    let _span = trace.span(Phase::Expansion);
                                    let ns = execute_enabled(spec, state, &instance);
                                    let no = observer.update(spec, state, &instance, &ns);
                                    (ns, no)
                                };
                                transitions_executed.fetch_add(1, Ordering::Relaxed);
                                trace.add(Counter::Transitions, 1);
                                if let PropertyStatus::Violated(reason) =
                                    property.evaluate(&next_state, &next_observer)
                                {
                                    let cx = Counterexample::new(
                                        spec,
                                        property.name(),
                                        format!(
                                            "{reason} (path not tracked by the parallel \
                                             engine; violated at depth {} with {} states \
                                             stored)",
                                            depth_now.load(Ordering::Relaxed),
                                            store.len(),
                                        ),
                                        &[],
                                        &next_state,
                                    );
                                    *lock(violation) = Some(cx);
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                                pending.push((next_state, next_observer));
                            }
                        }
                        insert_chunk_successors(
                            trivial,
                            symmetry.as_ref(),
                            store,
                            &trace,
                            &mut pending,
                            &mut block,
                        );
                        if let Some(started) = started {
                            busy_us += started.elapsed().as_micros() as u64;
                            trace.sample_gauge(Gauge::WorkerBusyUs, busy_us);
                        }
                        pool.flush(&mut block);
                    }
                });
            if let Err(err) = spawned {
                // FinishOnDrop releases the workers already running.
                panic!("failed to spawn parallel BFS worker {id}: {err}");
            }
        }

        'levels: loop {
            let width = frontier.advance_level();
            if width == 0 || stop.load(Ordering::Relaxed) {
                break;
            }
            trace.record(Histogram::LevelWidth, width as u64);
            depth += 1;
            depth_now.store(depth, Ordering::Relaxed);
            trace.add(Counter::Depth, depth as u64);
            level_obs.begin_level();
            if let Some(writer) = ckpt.as_mut() {
                ckpt_write!(writer.begin_level(depth));
            }

            let mut next_worker = 0usize;
            loop {
                // Stream flushed successor blocks into the next frontier
                // level as they arrive — with the disk frontier this keeps
                // residency bounded by the watermark, not the level width.
                // The checkpoint tee rides here because the coordinator is
                // the only thread allowed to touch the writer.
                for entry in pool.drain_ready() {
                    if let Some(writer) = ckpt.as_mut() {
                        scratch.clear();
                        entry_codec.encode_item(&entry, &mut scratch);
                        ckpt_write!(writer.push_entry(&scratch));
                    }
                    frontier.push(entry);
                }
                let mut batch = Vec::with_capacity(batch_size);
                while batch.len() < batch_size {
                    match frontier.pop() {
                        Some(entry) => batch.push(entry),
                        None => break,
                    }
                }
                if batch.is_empty() {
                    // Level drained on the frontier side; it is complete
                    // once the workers have counted every chunk back down.
                    if pool.outstanding.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    pool.wait_progress();
                } else {
                    trace.record(Histogram::BatchOccupancy, batch.len() as u64);
                    let chunk_size = batch.len().div_ceil(threads).max(1);
                    let mut entries = batch.into_iter();
                    loop {
                        let chunk: Vec<_> = entries.by_ref().take(chunk_size).collect();
                        if chunk.is_empty() {
                            break;
                        }
                        pool.submit(next_worker, chunk);
                        next_worker = (next_worker + 1) % threads;
                    }
                }
                if store.len() >= config.max_states {
                    limit = Some(format!("state limit of {}", config.max_states));
                    stop.store(true, Ordering::Relaxed);
                    break 'levels;
                }
                if let Some(time_limit) = config.time_limit {
                    if start.elapsed() > time_limit {
                        limit = Some(format!("time limit of {time_limit:?}"));
                        stop.store(true, Ordering::Relaxed);
                        break 'levels;
                    }
                }
                if stop.load(Ordering::Relaxed) {
                    break 'levels;
                }
            }
            // A flush can land between the last drain and the final
            // `outstanding` read; collect it before advancing the level.
            for entry in pool.drain_ready() {
                if let Some(writer) = ckpt.as_mut() {
                    scratch.clear();
                    entry_codec.encode_item(&entry, &mut scratch);
                    ckpt_write!(writer.push_entry(&scratch));
                }
                frontier.push(entry);
            }
            if stop.load(Ordering::Relaxed) {
                break 'levels;
            }
            // The level is complete: fold the store's in-memory buffer into
            // its sorted runs (a no-op for the purely in-memory backends)
            // and commit the checkpoint.
            {
                let _span = trace.span(Phase::RunMerge);
                store.maintain();
            }
            if let Some(writer) = ckpt.as_mut() {
                ckpt_write!(writer.seal_level());
                if depth.is_multiple_of(every) {
                    ckpt_write!(writer.commit(
                        depth,
                        spec_fp,
                        &strategy,
                        &identity,
                        &ckpt_counters!()
                    ));
                }
            }

            // Per-level time-series and memory gauges (the pool is idle at
            // a level boundary, so the cumulative store figures are stable
            // here); `enabled()` keeps the stats reads off the untraced
            // path. This engine keeps no parent log — that gauge stays at
            // its default 0.
            if level_obs.enabled() {
                let store_stats = store.stats();
                let frontier_stats = frontier.stats();
                let summary = level_obs.end_level(
                    depth as u64,
                    width as u64,
                    store.len() as u64,
                    store_stats.hits as u64,
                    frontier_stats.peak_bytes as u64,
                );
                trace.level_summary(&summary);
                trace.sample_gauge(Gauge::StoreBytes, store_stats.approx_bytes as u64);
                trace.sample_gauge(Gauge::FrontierBytes, frontier_stats.peak_bytes as u64);
                let canon_bytes = if trivial { 0 } else { store_stats.approx_bytes };
                trace.sample_gauge(Gauge::CanonicalCacheBytes, canon_bytes as u64);
            }
        }

        // Wait for in-flight chunks so the counters below are final (on a
        // stop the per-entry stop check makes the workers skim through
        // whatever is still queued).
        while pool.outstanding.load(Ordering::SeqCst) != 0 {
            pool.wait_progress();
        }
        // FinishOnDrop shuts the pool down; the scope joins the workers.
    });
    stats.worker_spawns = pool.spawned.load(Ordering::SeqCst);

    stats.states = store.len();
    stats.expansions = expansions_base + expansions.load(Ordering::Relaxed);
    stats.transitions_executed = transitions_base + transitions_executed.load(Ordering::Relaxed);
    stats.reduced_states = reduced_base + reduced_states.load(Ordering::Relaxed);
    stats.max_depth = depth;
    stats.elapsed = start.elapsed();
    stats.record_store(store_name, store.stats());
    // The store's unified hit accounting is the revisit count for a
    // stateful engine (see `ExplorationStats::store_hits`); the workers
    // have no per-thread revisit field to sum by hand. On a resume the
    // rebuild inserts were all misses, so the committed run's hits come
    // back via the manifest's revisit counter.
    stats.store_hits += revisits_base;
    stats.revisits = stats.store_hits;
    stats.record_frontier(frontier.name(), frontier.stats(), 0);
    stats.phases = trace.phase_times();

    let verdict = match lock(&violation).take() {
        Some(cx) => {
            trace.finish("violated");
            Verdict::Violated(Box::new(cx))
        }
        None => match limit {
            Some(what) => {
                trace.finish("limit");
                Verdict::LimitReached { what }
            }
            None => {
                trace.finish("verified");
                Verdict::Verified
            }
        },
    };
    RunReport {
        verdict,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};
    use mp_store::{FrontierConfig, StoreConfig};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), ProcessId(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn parallel_bfs_counts_the_same_states_as_sequential() {
        let spec = independent(3, 2);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 27);
        // The exact default is upgraded to the lock-striped store.
        assert_eq!(report.stats.store_backend, "sharded");
        assert_eq!(report.stats.frontier_backend, "mem");
    }

    #[test]
    fn parallel_bfs_detects_violations() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_parallel_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_violated());
    }

    #[test]
    fn violation_message_reports_depth_and_store_size() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_parallel_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let cx = report
            .verdict
            .counterexample()
            .expect("a violation was found");
        assert!(
            cx.reason.contains("violated at depth") && cx.reason.contains("states stored"),
            "the parallel engine must report where the violation was found: {}",
            cx.reason
        );
    }

    #[test]
    fn parallel_bfs_with_spor_reduces() {
        let spec = independent(4, 1);
        let reducer = SporReducer::new(&spec);
        let unreduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let reduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(unreduced.verdict.is_verified());
        assert!(reduced.verdict.is_verified());
        assert!(reduced.stats.states < unreduced.stats.states);
    }

    #[test]
    fn zero_threads_means_auto() {
        let spec = independent(2, 1);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            0,
            &CheckerConfig::parallel_bfs(0),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 4);
        assert!(report.stats.worker_threads >= 1);
    }

    #[test]
    fn pool_spawns_exactly_threads_workers_per_run() {
        // Multi-level search with a tiny batch size: the per-batch scoped
        // engine this pool replaced would have spawned a thread set for
        // every one of the dozens of batches. The persistent pool must
        // start exactly `threads` OS threads for the whole run.
        let spec = independent(3, 3);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            3,
            &CheckerConfig::parallel_bfs(3).with_batch_size(2),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 64);
        assert_eq!(report.stats.worker_threads, 3);
        assert_eq!(
            report.stats.worker_spawns, 3,
            "the pool must spawn once per run, not once per batch"
        );
    }

    #[test]
    fn batch_size_knob_does_not_change_the_exploration() {
        let spec = independent(3, 2);
        let run = |batch_size: usize| {
            run_parallel_bfs(
                &spec,
                &Invariant::always_true("true").into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                2,
                &CheckerConfig::parallel_bfs(2).with_batch_size(batch_size),
            )
        };
        let auto = run(0);
        let tiny = run(1);
        let wide = run(1024);
        assert!(auto.verdict.is_verified());
        assert!(tiny.verdict.is_verified());
        assert!(wide.verdict.is_verified());
        assert_eq!(auto.stats.counters(), tiny.stats.counters());
        assert_eq!(auto.stats.counters(), wide.stats.counters());
    }

    #[test]
    fn idle_workers_steal_from_the_back_of_a_victims_deque() {
        let pool: Pool<u32> = Pool::new(2);
        pool.submit(0, vec![1]);
        pool.submit(0, vec![2]);
        let (own, stolen) = pool.take(0).expect("worker 0 has queued work");
        assert_eq!(own, vec![1], "owners pop from the front");
        assert!(!stolen);
        let (theft, stolen) = pool.take(1).expect("worker 1 can steal");
        assert_eq!(theft, vec![2], "thieves pop from the back");
        assert!(stolen, "a cross-deque take must count as a steal");
        pool.finish();
        assert!(pool.take(0).is_none());
        assert!(pool.take(1).is_none());
    }

    #[test]
    fn fingerprint_store_agrees_and_uses_less_memory() {
        let spec = independent(4, 2);
        let exact = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let fp = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2).with_store(StoreConfig::fingerprint(48)),
        );
        assert!(exact.verdict.is_verified());
        assert!(fp.verdict.is_verified());
        assert_eq!(fp.stats.states, exact.stats.states);
        assert_eq!(fp.stats.store_backend, "fingerprint");
        assert!(
            fp.stats.store_bytes < exact.stats.store_bytes,
            "fingerprints ({}) must be smaller than full keys ({})",
            fp.stats.store_bytes,
            exact.stats.store_bytes
        );
    }

    #[test]
    fn disk_frontier_agrees_with_mem_frontier() {
        let spec = independent(3, 3);
        let run = |frontier: FrontierConfig| {
            run_parallel_bfs(
                &spec,
                &Invariant::always_true("true").into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                2,
                &CheckerConfig::parallel_bfs(2).with_frontier(frontier),
            )
        };
        let mem = run(FrontierConfig::Mem);
        let disk = run(FrontierConfig::disk_with_watermark(64));
        assert!(mem.verdict.is_verified() && disk.verdict.is_verified());
        assert_eq!(mem.stats.states, disk.stats.states);
        assert_eq!(disk.stats.frontier_backend, "disk");
        assert!(disk.stats.frontier_spilled_bytes > 0);
        assert!(disk.strategy.ends_with("+spill"));
    }
}
