//! Level-synchronous parallel breadth-first search (extension).
//!
//! The paper's engines are single-threaded (a JPF limitation); this engine
//! is an extension showing that the protocol-level models of `mp-model`
//! parallelise naturally: each BFS level is partitioned across worker
//! threads and the visited set is a shared `mp-store` backend. The store is
//! selected by [`CheckerConfig::store`], with one twist: the plain exact
//! store would serialise every worker on its single mutex, so
//! [`StoreConfig::for_parallel`](mp_store::StoreConfig::for_parallel)
//! upgrades it to the lock-striped sharded store — there is **no global
//! mutex on the visited set**. A fingerprint store can be selected
//! explicitly for large runs (probabilistic `Verified`; see the `mp-store`
//! docs).
//!
//! The engine checks invariants and counts states; it does not reconstruct
//! counterexample *paths* (the violating state is reported instead), so the
//! sequential engines remain the right tool for debugging runs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mp_store::StateStoreBackend;

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;

use crate::{
    bfs::canonical_mapper, liveness::run_liveness_dfs, CheckerConfig, Counterexample,
    ExplorationStats, Observer, Property, PropertyStatus, RunReport, Verdict,
};

/// Runs a parallel breadth-first search over `threads` workers
/// (0 = available parallelism).
///
/// Dispatches on the property class: safety properties run the parallel
/// level-synchronous search below. Liveness properties need a cycle-capable
/// search, which a level-synchronous frontier cannot provide, so they are
/// routed to the (sequential) fairness-aware liveness DFS of
/// [`crate::liveness`] — the report's strategy label says so.
///
/// With a non-trivial [`Symmetry`], the shared visited store canonicalizes
/// every inserted key to its orbit representative (the canonical-key store
/// wrapper works on any backend, including the lock-striped ones), so only
/// one member per orbit enters the next frontier.
pub fn run_parallel_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    threads: usize,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let strategy = if symmetry.is_trivial() {
        format!("parallel-bfs({threads})+{}", reducer.name())
    } else {
        format!(
            "parallel-bfs({threads})+{}+{}",
            reducer.name(),
            symmetry.label()
        )
    };

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    let store = config
        .store
        .for_parallel()
        .build_canonical(canonical_mapper(symmetry));

    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        stats.elapsed = start.elapsed();
        stats.record_store(store.name(), store.stats());
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    store.insert((initial.clone(), initial_observer.clone()));

    let violation: Mutex<Option<Counterexample>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let transitions_executed = AtomicUsize::new(0);
    let reduced_states = AtomicUsize::new(0);
    let expansions = AtomicUsize::new(0);

    let mut frontier: Vec<(GlobalState<S, M>, O)> = vec![(initial, initial_observer)];
    let mut depth = 0usize;

    while !frontier.is_empty() && !stop.load(Ordering::Relaxed) {
        depth += 1;
        let chunk_size = frontier.len().div_ceil(threads).max(1);

        // Each worker explores its slice of the frontier and returns the
        // successor states it was first to insert; join collects them into
        // the next frontier. The visited set is the shared lock-striped
        // store — workers only contend per shard, never on a global lock.
        let next_frontier: Vec<(GlobalState<S, M>, O)> = std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk_size)
                .map(|chunk| {
                    let store = &store;
                    let violation = &violation;
                    let stop = &stop;
                    let transitions_executed = &transitions_executed;
                    let reduced_states = &reduced_states;
                    let expansions = &expansions;
                    scope.spawn(move || {
                        let mut discovered = Vec::new();
                        for (state, observer) in chunk {
                            if stop.load(Ordering::Relaxed) {
                                return discovered;
                            }
                            expansions.fetch_add(1, Ordering::Relaxed);
                            let all = enabled_instances(spec, state);
                            let reduction = reducer.reduce(spec, state, all);
                            if reduction.reduced {
                                reduced_states.fetch_add(1, Ordering::Relaxed);
                            }
                            for instance in reduction.explore {
                                let next_state = execute_enabled(spec, state, &instance);
                                let next_observer =
                                    observer.update(spec, state, &instance, &next_state);
                                transitions_executed.fetch_add(1, Ordering::Relaxed);
                                if let PropertyStatus::Violated(reason) =
                                    property.evaluate(&next_state, &next_observer)
                                {
                                    let cx = Counterexample::new(
                                        spec,
                                        property.name(),
                                        format!(
                                            "{reason} (path not tracked by the parallel engine)"
                                        ),
                                        &[],
                                        &next_state,
                                    );
                                    *violation.lock().expect("violation lock poisoned") = Some(cx);
                                    stop.store(true, Ordering::Relaxed);
                                    return discovered;
                                }
                                let key = (next_state, next_observer);
                                if store.insert_ref(&key) {
                                    discovered.push(key);
                                }
                            }
                        }
                        discovered
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        frontier = next_frontier;

        if store.len() >= config.max_states {
            stats.states = store.len();
            stats.elapsed = start.elapsed();
            stats.transitions_executed = transitions_executed.load(Ordering::Relaxed);
            stats.record_store(store.name(), store.stats());
            return RunReport {
                verdict: Verdict::LimitReached {
                    what: format!("state limit of {}", config.max_states),
                },
                stats,
                strategy,
            };
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                stats.states = store.len();
                stats.elapsed = start.elapsed();
                stats.record_store(store.name(), store.stats());
                return RunReport {
                    verdict: Verdict::LimitReached {
                        what: format!("time limit of {limit:?}"),
                    },
                    stats,
                    strategy,
                };
            }
        }
    }

    stats.states = store.len();
    stats.expansions = expansions.load(Ordering::Relaxed);
    stats.transitions_executed = transitions_executed.load(Ordering::Relaxed);
    stats.reduced_states = reduced_states.load(Ordering::Relaxed);
    stats.max_depth = depth;
    stats.elapsed = start.elapsed();
    stats.record_store(store.name(), store.stats());

    let verdict = match violation.into_inner().expect("violation lock poisoned") {
        Some(cx) => Verdict::Violated(Box::new(cx)),
        None => Verdict::Verified,
    };
    RunReport {
        verdict,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};
    use mp_store::StoreConfig;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), ProcessId(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn parallel_bfs_counts_the_same_states_as_sequential() {
        let spec = independent(3, 2);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 27);
        // The exact default is upgraded to the lock-striped store.
        assert_eq!(report.stats.store_backend, "sharded");
    }

    #[test]
    fn parallel_bfs_detects_violations() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_parallel_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_violated());
    }

    #[test]
    fn parallel_bfs_with_spor_reduces() {
        let spec = independent(4, 1);
        let reducer = SporReducer::new(&spec);
        let unreduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let reduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(unreduced.verdict.is_verified());
        assert!(reduced.verdict.is_verified());
        assert!(reduced.stats.states < unreduced.stats.states);
    }

    #[test]
    fn zero_threads_means_auto() {
        let spec = independent(2, 1);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            0,
            &CheckerConfig::parallel_bfs(0),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 4);
    }

    #[test]
    fn fingerprint_store_agrees_and_uses_less_memory() {
        let spec = independent(4, 2);
        let exact = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let fp = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2).with_store(StoreConfig::fingerprint(48)),
        );
        assert!(exact.verdict.is_verified());
        assert!(fp.verdict.is_verified());
        assert_eq!(fp.stats.states, exact.stats.states);
        assert_eq!(fp.stats.store_backend, "fingerprint");
        assert!(
            fp.stats.store_bytes < exact.stats.store_bytes,
            "fingerprints ({}) must be smaller than full keys ({})",
            fp.stats.store_bytes,
            exact.stats.store_bytes
        );
    }
}
