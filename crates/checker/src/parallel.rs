//! Level-synchronous parallel breadth-first search (extension).
//!
//! The paper's engines are single-threaded (a JPF limitation); this engine
//! is an extension showing that the protocol-level models of `mp-model`
//! parallelise naturally: each BFS level is partitioned across worker
//! threads and the visited set is a shared `mp-store` backend. The store is
//! selected by [`CheckerConfig::store`], with one twist: the plain exact
//! store would serialise every worker on its single mutex, so
//! [`StoreConfig::for_parallel`](mp_store::StoreConfig::for_parallel)
//! upgrades it to the lock-striped sharded store — there is **no global
//! mutex on the visited set**. A fingerprint store can be selected
//! explicitly for large runs (probabilistic `Verified`; see the `mp-store`
//! docs).
//!
//! The frontier is the same pluggable [`FrontierBackend`] the sequential
//! BFS drives (`CheckerConfig::frontier`): the main thread dequeues the
//! current level in bounded batches, workers expand a batch in parallel,
//! and the first-inserter successors are enqueued into the next level. With
//! the disk frontier selected (`+spill` strategy suffix) only one batch
//! plus the spill watermark is resident at a time — previously the whole
//! level lived in one `Vec`. Symmetry composes the same way as in the
//! sequential engine: entries carry canonical representatives plus δ, and
//! workers reconstruct the concrete state before expanding.
//!
//! The engine checks invariants and counts states; it does not reconstruct
//! counterexample *paths* (the violating state is reported instead), so the
//! sequential engines remain the right tool for debugging runs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mp_store::{canonical_label, FrontierBackend, StateStoreBackend};

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_por::Reducer;
use mp_symmetry::Symmetry;
use mp_trace::{Counter, Gauge, Histogram, Phase};

use crate::{
    bfs::{insert_successor, Entry, EntryCodec},
    liveness::run_liveness_dfs,
    obs::LevelObserver,
    CheckerConfig, Counterexample, ExplorationStats, Observer, Property, PropertyStatus, RunReport,
    Verdict,
};

/// Runs a parallel breadth-first search over `threads` workers
/// (0 = available parallelism).
///
/// Dispatches on the property class: safety properties run the parallel
/// level-synchronous search below. Liveness properties need a cycle-capable
/// search, which a level-synchronous frontier cannot provide, so they are
/// routed to the (sequential) fairness-aware liveness DFS of
/// [`crate::liveness`] — the report's strategy label says so.
///
/// With a non-trivial [`Symmetry`], workers canonicalize each successor
/// once; the canonical pair is both the shared-store key and the frontier
/// payload (alongside δ), so only one member per orbit enters the next
/// level and frontier bytes shrink with the orbit collapse.
pub fn run_parallel_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    threads: usize,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        return run_liveness_dfs(spec, property, initial_observer, reducer, symmetry, config);
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let trivial = symmetry.is_trivial();
    let mut strategy = format!("parallel-bfs({threads})+{}", reducer.name());
    if !trivial {
        strategy.push('+');
        strategy.push_str(&symmetry.label());
    }
    if config.frontier.spills() {
        strategy.push_str("+spill");
    }
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    // Like the sequential BFS, keys are pre-canonicalized (once per
    // successor, inside the workers), so the canonical wrapper runs in
    // passthrough mode on the lock-striped store.
    let store = config
        .store
        .for_parallel()
        .build_canonical::<(GlobalState<S, M>, O)>(None);
    let store_name = if trivial {
        store.name()
    } else {
        canonical_label(store.name())
    };
    let mut frontier = config.frontier.build(EntryCodec {
        template: initial_observer.clone(),
    });
    frontier.set_trace(trace.handle());

    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        trace.add(Counter::States, 1);
        stats.elapsed = start.elapsed();
        stats.record_store(store_name, store.stats());
        stats.record_frontier(frontier.name(), frontier.stats(), 0);
        stats.phases = trace.phase_times();
        trace.finish("violated");
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    let (entry_state, entry_observer, initial_delta) = if trivial {
        (initial, initial_observer, 0)
    } else {
        symmetry.canonicalize_traced(&initial, &initial_observer, &trace)
    };
    store.insert((entry_state.clone(), entry_observer.clone()));
    trace.add(Counter::States, 1);
    frontier.push((0, initial_delta, entry_state, entry_observer));

    let violation: Mutex<Option<Counterexample>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let transitions_executed = AtomicUsize::new(0);
    let reduced_states = AtomicUsize::new(0);
    let expansions = AtomicUsize::new(0);

    // Workers expand one batch at a time; with the disk frontier this (plus
    // the watermark) bounds the resident level size.
    let batch_size = threads * 64;
    let mut depth = 0usize;

    macro_rules! finish_stats {
        ($verdict:expr) => {
            stats.states = store.len();
            stats.expansions = expansions.load(Ordering::Relaxed);
            stats.transitions_executed = transitions_executed.load(Ordering::Relaxed);
            stats.reduced_states = reduced_states.load(Ordering::Relaxed);
            stats.max_depth = depth;
            stats.elapsed = start.elapsed();
            stats.record_store(store_name, store.stats());
            // The store's unified hit accounting is the revisit count for a
            // stateful engine (see `ExplorationStats::store_hits`); the
            // workers have no per-thread revisit field to sum by hand.
            stats.revisits = stats.store_hits;
            stats.record_frontier(frontier.name(), frontier.stats(), 0);
            stats.phases = trace.phase_times();
            trace.finish($verdict);
        };
    }

    let mut level_obs = LevelObserver::new(&trace);
    if level_obs.enabled() {
        level_obs.seed(store.len() as u64, store.stats().hits as u64);
    }
    'levels: loop {
        let width = frontier.advance_level();
        if width == 0 || stop.load(Ordering::Relaxed) {
            break;
        }
        trace.record(Histogram::LevelWidth, width as u64);
        depth += 1;
        trace.add(Counter::Depth, depth as u64);
        level_obs.begin_level();

        loop {
            let mut batch = Vec::with_capacity(batch_size);
            while batch.len() < batch_size {
                match frontier.pop() {
                    Some(entry) => batch.push(entry),
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            trace.record(Histogram::BatchOccupancy, batch.len() as u64);
            let chunk_size = batch.len().div_ceil(threads).max(1);

            // Each worker explores its slice of the batch and returns the
            // successor entries it was first to insert; join collects them
            // into the next frontier level. The visited set is the shared
            // lock-striped store — workers only contend per shard, never on
            // a global lock.
            let discovered: Vec<Entry<S, M, O>> = std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .chunks(chunk_size)
                    .map(|chunk| {
                        let store = &store;
                        let violation = &violation;
                        let stop = &stop;
                        let transitions_executed = &transitions_executed;
                        let reduced_states = &reduced_states;
                        let expansions = &expansions;
                        let symmetry = symmetry.clone();
                        let trace = trace.handle();
                        scope.spawn(move || {
                            let mut discovered = Vec::new();
                            for (_, delta, key_state, key_observer) in chunk {
                                if stop.load(Ordering::Relaxed) {
                                    return discovered;
                                }
                                // δ⁻¹ recovers the concrete state the entry
                                // was generated as.
                                let reconstructed;
                                let (state, observer) = if *delta == 0 {
                                    (key_state, key_observer)
                                } else {
                                    reconstructed = symmetry.apply_element(
                                        symmetry.inverse(*delta),
                                        key_state,
                                        key_observer,
                                    );
                                    (&reconstructed.0, &reconstructed.1)
                                };
                                expansions.fetch_add(1, Ordering::Relaxed);
                                trace.add(Counter::Expansions, 1);
                                let all = {
                                    let _span = trace.span(Phase::Expansion);
                                    enabled_instances(spec, state)
                                };
                                let reduction = reducer.reduce_traced(spec, state, all, &trace);
                                if reduction.reduced {
                                    reduced_states.fetch_add(1, Ordering::Relaxed);
                                }
                                for instance in reduction.explore {
                                    let (next_state, next_observer) = {
                                        let _span = trace.span(Phase::Expansion);
                                        let ns = execute_enabled(spec, state, &instance);
                                        let no = observer.update(spec, state, &instance, &ns);
                                        (ns, no)
                                    };
                                    transitions_executed.fetch_add(1, Ordering::Relaxed);
                                    trace.add(Counter::Transitions, 1);
                                    if let PropertyStatus::Violated(reason) =
                                        property.evaluate(&next_state, &next_observer)
                                    {
                                        let cx = Counterexample::new(
                                            spec,
                                            property.name(),
                                            format!(
                                                "{reason} (path not tracked by the parallel engine)"
                                            ),
                                            &[],
                                            &next_state,
                                        );
                                        *violation.lock().expect("violation lock poisoned") =
                                            Some(cx);
                                        stop.store(true, Ordering::Relaxed);
                                        return discovered;
                                    }
                                    let concrete = (next_state, next_observer);
                                    if let Some((delta, canonical)) = insert_successor(
                                        trivial,
                                        symmetry.as_ref(),
                                        store,
                                        &concrete,
                                        &trace,
                                    ) {
                                        trace.add(Counter::States, 1);
                                        let (s, o) = match canonical {
                                            Some(key) => key,
                                            None => concrete,
                                        };
                                        discovered.push((0, delta, s, o));
                                    } else {
                                        trace.add(Counter::Revisits, 1);
                                    }
                                }
                            }
                            discovered
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            });

            for entry in discovered {
                frontier.push(entry);
            }

            if store.len() >= config.max_states {
                finish_stats!("limit");
                return RunReport {
                    verdict: Verdict::LimitReached {
                        what: format!("state limit of {}", config.max_states),
                    },
                    stats,
                    strategy,
                };
            }
            if let Some(limit) = config.time_limit {
                if start.elapsed() > limit {
                    finish_stats!("limit");
                    return RunReport {
                        verdict: Verdict::LimitReached {
                            what: format!("time limit of {limit:?}"),
                        },
                        stats,
                        strategy,
                    };
                }
            }
            if stop.load(Ordering::Relaxed) {
                break 'levels;
            }
        }

        // Per-level time-series and memory gauges (workers have joined, so
        // the cumulative store figures are stable here); `enabled()` keeps
        // the stats reads off the untraced path. This engine keeps no
        // parent log — the gauge stays at its default 0.
        if level_obs.enabled() {
            let store_stats = store.stats();
            let frontier_stats = frontier.stats();
            let summary = level_obs.end_level(
                depth as u64,
                width as u64,
                store.len() as u64,
                store_stats.hits as u64,
                frontier_stats.peak_bytes as u64,
            );
            trace.level_summary(&summary);
            trace.sample_gauge(Gauge::StoreBytes, store_stats.approx_bytes as u64);
            trace.sample_gauge(Gauge::FrontierBytes, frontier_stats.peak_bytes as u64);
            let canon_bytes = if trivial { 0 } else { store_stats.approx_bytes };
            trace.sample_gauge(Gauge::CanonicalCacheBytes, canon_bytes as u64);
        }
    }

    let has_violation = violation.lock().expect("violation lock poisoned").is_some();
    finish_stats!(if has_violation {
        "violated"
    } else {
        "verified"
    });
    let verdict = match violation.into_inner().expect("violation lock poisoned") {
        Some(cx) => Verdict::Violated(Box::new(cx)),
        None => Verdict::Verified,
    };
    RunReport {
        verdict,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};
    use mp_store::{FrontierConfig, StoreConfig};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Tok, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), ProcessId(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn parallel_bfs_counts_the_same_states_as_sequential() {
        let spec = independent(3, 2);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 27);
        // The exact default is upgraded to the lock-striped store.
        assert_eq!(report.stats.store_backend, "sharded");
        assert_eq!(report.stats.frontier_backend, "mem");
    }

    #[test]
    fn parallel_bfs_detects_violations() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_parallel_bfs(
            &spec,
            &property.into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_violated());
    }

    #[test]
    fn parallel_bfs_with_spor_reduces() {
        let spec = independent(4, 1);
        let reducer = SporReducer::new(&spec);
        let unreduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let reduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &reducer,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(unreduced.verdict.is_verified());
        assert!(reduced.verdict.is_verified());
        assert!(reduced.stats.states < unreduced.stats.states);
    }

    #[test]
    fn zero_threads_means_auto() {
        let spec = independent(2, 1);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            0,
            &CheckerConfig::parallel_bfs(0),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 4);
    }

    #[test]
    fn fingerprint_store_agrees_and_uses_less_memory() {
        let spec = independent(4, 2);
        let exact = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let fp = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            &NoReduction,
            &no_sym(),
            2,
            &CheckerConfig::parallel_bfs(2).with_store(StoreConfig::fingerprint(48)),
        );
        assert!(exact.verdict.is_verified());
        assert!(fp.verdict.is_verified());
        assert_eq!(fp.stats.states, exact.stats.states);
        assert_eq!(fp.stats.store_backend, "fingerprint");
        assert!(
            fp.stats.store_bytes < exact.stats.store_bytes,
            "fingerprints ({}) must be smaller than full keys ({})",
            fp.stats.store_bytes,
            exact.stats.store_bytes
        );
    }

    #[test]
    fn disk_frontier_agrees_with_mem_frontier() {
        let spec = independent(3, 3);
        let run = |frontier: FrontierConfig| {
            run_parallel_bfs(
                &spec,
                &Invariant::always_true("true").into(),
                &NullObserver,
                &NoReduction,
                &no_sym(),
                2,
                &CheckerConfig::parallel_bfs(2).with_frontier(frontier),
            )
        };
        let mem = run(FrontierConfig::Mem);
        let disk = run(FrontierConfig::disk_with_watermark(64));
        assert!(mem.verdict.is_verified() && disk.verdict.is_verified());
        assert_eq!(mem.stats.states, disk.stats.states);
        assert_eq!(disk.stats.frontier_backend, "disk");
        assert!(disk.stats.frontier_spilled_bytes > 0);
        assert!(disk.strategy.ends_with("+spill"));
    }
}
