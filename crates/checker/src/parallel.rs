//! Level-synchronous parallel breadth-first search (extension).
//!
//! The paper's engines are single-threaded (a JPF limitation); this engine
//! is an extension showing that the protocol-level models of `mp-model`
//! parallelise naturally: each BFS level is partitioned across worker
//! threads, the visited set is sharded by state hash behind `parking_lot`
//! mutexes, and the next frontier is collected through crossbeam channels.
//!
//! The engine checks invariants and counts states; it does not reconstruct
//! counterexample *paths* (the violating state is reported instead), so the
//! sequential engines remain the right tool for debugging runs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProtocolSpec,
};
use mp_por::Reducer;

use crate::{
    CheckerConfig, Counterexample, ExplorationStats, Invariant, Observer, PropertyStatus,
    RunReport, Verdict,
};

const SHARDS: usize = 64;

struct ShardedStore<K> {
    shards: Vec<Mutex<HashSet<K>>>,
}

impl<K: Eq + Hash> ShardedStore<K> {
    fn new() -> Self {
        ShardedStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    fn insert(&self, key: K) -> bool {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = (hasher.finish() as usize) % SHARDS;
        self.shards[shard].lock().insert(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Runs a parallel breadth-first search over `threads` workers
/// (0 = available parallelism).
pub fn run_parallel_bfs<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Invariant<S, M, O>,
    initial_observer: &O,
    reducer: &dyn Reducer<S, M>,
    threads: usize,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let strategy = format!("parallel-bfs({threads})+{}", reducer.name());

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        stats.elapsed = start.elapsed();
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    let store: ShardedStore<(GlobalState<S, M>, O)> = ShardedStore::new();
    store.insert((initial.clone(), initial_observer.clone()));

    let violation: Mutex<Option<Counterexample>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let transitions_executed = AtomicUsize::new(0);
    let reduced_states = AtomicUsize::new(0);
    let expansions = AtomicUsize::new(0);

    let mut frontier: Vec<(GlobalState<S, M>, O)> = vec![(initial, initial_observer)];
    let mut depth = 0usize;

    while !frontier.is_empty() && !stop.load(Ordering::Relaxed) {
        depth += 1;
        let (next_tx, next_rx) = channel::unbounded::<(GlobalState<S, M>, O)>();
        let chunk_size = frontier.len().div_ceil(threads);

        crossbeam::scope(|scope| {
            for chunk in frontier.chunks(chunk_size.max(1)) {
                let next_tx = next_tx.clone();
                let store = &store;
                let violation = &violation;
                let stop = &stop;
                let transitions_executed = &transitions_executed;
                let reduced_states = &reduced_states;
                let expansions = &expansions;
                scope.spawn(move |_| {
                    for (state, observer) in chunk {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        expansions.fetch_add(1, Ordering::Relaxed);
                        let all = enabled_instances(spec, state);
                        let reduction = reducer.reduce(spec, state, all);
                        if reduction.reduced {
                            reduced_states.fetch_add(1, Ordering::Relaxed);
                        }
                        for instance in reduction.explore {
                            let next_state = execute_enabled(spec, state, &instance);
                            let next_observer =
                                observer.update(spec, state, &instance, &next_state);
                            transitions_executed.fetch_add(1, Ordering::Relaxed);
                            if let PropertyStatus::Violated(reason) =
                                property.evaluate(&next_state, &next_observer)
                            {
                                let cx = Counterexample::new(
                                    spec,
                                    property.name(),
                                    format!("{reason} (path not tracked by the parallel engine)"),
                                    &[],
                                    &next_state,
                                );
                                *violation.lock() = Some(cx);
                                stop.store(true, Ordering::Relaxed);
                                return;
                            }
                            let key = (next_state, next_observer);
                            if store.insert(key.clone()) {
                                let _ = next_tx.send(key);
                            }
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");
        drop(next_tx);

        frontier = next_rx.into_iter().collect();

        if store.len() >= config.max_states {
            stats.states = store.len();
            stats.elapsed = start.elapsed();
            stats.transitions_executed = transitions_executed.load(Ordering::Relaxed);
            return RunReport {
                verdict: Verdict::LimitReached {
                    what: format!("state limit of {}", config.max_states),
                },
                stats,
                strategy,
            };
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                stats.states = store.len();
                stats.elapsed = start.elapsed();
                return RunReport {
                    verdict: Verdict::LimitReached {
                        what: format!("time limit of {limit:?}"),
                    },
                    stats,
                    strategy,
                };
            }
        }
    }

    stats.states = store.len();
    stats.expansions = expansions.load(Ordering::Relaxed);
    stats.transitions_executed = transitions_executed.load(Ordering::Relaxed);
    stats.reduced_states = reduced_states.load(Ordering::Relaxed);
    stats.max_depth = depth;
    stats.elapsed = start.elapsed();

    let verdict = match violation.into_inner() {
        Some(cx) => Verdict::Violated(Box::new(cx)),
        None => Verdict::Verified,
    };
    RunReport {
        verdict,
        stats,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullObserver;
    use mp_model::{Kind, Outcome, ProcessId, TransitionSpec};
    use mp_por::{NoReduction, SporReducer};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Tok> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), ProcessId(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn parallel_bfs_counts_the_same_states_as_sequential() {
        let spec = independent(3, 2);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true"),
            &NullObserver,
            &NoReduction,
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 27);
    }

    #[test]
    fn parallel_bfs_detects_violations() {
        let spec = independent(2, 3);
        let property: Invariant<u8, Tok, NullObserver> =
            Invariant::new("below-3", |s: &GlobalState<u8, Tok>, _| {
                if s.locals.iter().any(|l| *l >= 3) {
                    Err("reached 3".into())
                } else {
                    Ok(())
                }
            });
        let report = run_parallel_bfs(
            &spec,
            &property,
            &NullObserver,
            &NoReduction,
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(report.verdict.is_violated());
    }

    #[test]
    fn parallel_bfs_with_spor_reduces() {
        let spec = independent(4, 1);
        let reducer = SporReducer::new(&spec);
        let unreduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true"),
            &NullObserver,
            &NoReduction,
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        let reduced = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true"),
            &NullObserver,
            &reducer,
            2,
            &CheckerConfig::parallel_bfs(2),
        );
        assert!(unreduced.verdict.is_verified());
        assert!(reduced.verdict.is_verified());
        assert!(reduced.stats.states < unreduced.stats.states);
    }

    #[test]
    fn zero_threads_means_auto() {
        let spec = independent(2, 1);
        let report = run_parallel_bfs(
            &spec,
            &Invariant::always_true("true"),
            &NullObserver,
            &NoReduction,
            0,
            &CheckerConfig::parallel_bfs(0),
        );
        assert!(report.verdict.is_verified());
        assert_eq!(report.stats.states, 4);
    }
}
