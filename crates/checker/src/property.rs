//! Properties: safety invariants *and* liveness (termination / leads-to)
//! over global states and observers.
//!
//! MP-Basset specifications are "a set of Java assertions ... the
//! specification restricts to invariants (or global predicates)" (paper,
//! appendix). This module started with the same class — an [`Invariant`] is
//! a named predicate evaluated in every visited state — and generalises it
//! to a [`Property`] with three classes:
//!
//! * [`PropertyClass::Safety`] — today's invariants, unchanged semantics
//!   (and unchanged cost: the engines run the exact same search);
//! * [`PropertyClass::Termination`] — every *fair* maximal execution reaches
//!   a quiescent/goal state;
//! * [`PropertyClass::LeadsTo`] — every state satisfying a trigger predicate
//!   `p` is eventually followed by a state satisfying a goal predicate `q`
//!   on every fair maximal execution (`p ⇝ q`).
//!
//! Liveness counterexamples are **lassos** (a stem plus a cycle the system
//! can repeat forever, or a stem ending in a premature quiescent state); the
//! [`Fairness`] policy decides which infinite executions count. The default,
//! [`Fairness::WeakProtocol`], exempts environment transitions (fault
//! injection, `mp-faults`): a crash is never "unfairly required" to happen,
//! but the protocol itself may not be starved.

use std::fmt;
use std::sync::Arc;

use mp_model::{GlobalState, LocalState, Message};

use crate::Observer;

/// The outcome of evaluating a property in one state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropertyStatus {
    /// The property holds in this state.
    Holds,
    /// The property is violated; the string explains how.
    Violated(String),
}

impl PropertyStatus {
    /// Returns `true` if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyStatus::Holds)
    }
}

/// A named invariant over global states and an observer value.
///
/// # Examples
///
/// ```
/// use mp_checker::{Invariant, NullObserver};
/// use mp_model::GlobalState;
///
/// // "no process ever reaches local state 99"
/// let inv: Invariant<u32, String, NullObserver> = Invariant::new(
///     "no-99",
///     |state: &GlobalState<u32, String>, _obs: &NullObserver| {
///         if state.locals.iter().any(|l| *l == 99) {
///             Err("a process reached 99".to_string())
///         } else {
///             Ok(())
///         }
///     },
/// );
/// let ok: GlobalState<u32, String> = GlobalState::new(vec![0, 1]);
/// assert!(inv.evaluate(&ok, &NullObserver).holds());
/// ```
pub struct Invariant<S, M: Ord, O = crate::NullObserver> {
    name: String,
    #[allow(clippy::type_complexity)]
    check: Arc<dyn Fn(&GlobalState<S, M>, &O) -> Result<(), String> + Send + Sync>,
}

// Manual impl: an `Invariant` is a name plus an `Arc`'d predicate, clonable
// whatever the state/message/observer types are (a derive would demand
// `S: Clone` etc. needlessly).
impl<S, M: Ord, O> Clone for Invariant<S, M, O> {
    fn clone(&self) -> Self {
        Invariant {
            name: self.name.clone(),
            check: self.check.clone(),
        }
    }
}

impl<S: LocalState, M: Message, O> Invariant<S, M, O> {
    /// Creates an invariant from a closure returning `Err(reason)` on
    /// violation.
    pub fn new<F>(name: impl Into<String>, check: F) -> Self
    where
        F: Fn(&GlobalState<S, M>, &O) -> Result<(), String> + Send + Sync + 'static,
    {
        Invariant {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// Creates the trivial invariant that holds in every state — useful for
    /// pure state-space measurement runs (the "how many states are there"
    /// experiments of Section II-C).
    pub fn always_true(name: impl Into<String>) -> Self {
        Invariant::new(name, |_, _| Ok(()))
    }

    /// Returns the name of the invariant.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the invariant in a state.
    pub fn evaluate(&self, state: &GlobalState<S, M>, observer: &O) -> PropertyStatus {
        match (self.check)(state, observer) {
            Ok(()) => PropertyStatus::Holds,
            Err(reason) => PropertyStatus::Violated(reason),
        }
    }
}

impl<S, M: Ord, O> fmt::Debug for Invariant<S, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Conjunction of several invariants, evaluated left to right; the first
/// violation wins.
pub fn all_of<S: LocalState, M: Message, O: Observer<S, M>>(
    name: impl Into<String>,
    invariants: Vec<Invariant<S, M, O>>,
) -> Invariant<S, M, O> {
    Invariant::new(name, move |state, observer| {
        for inv in &invariants {
            if let PropertyStatus::Violated(reason) = inv.evaluate(state, observer) {
                return Err(format!("{}: {}", inv.name(), reason));
            }
        }
        Ok(())
    })
}

/// A named boolean predicate over a global state and an observer value, used
/// as the trigger (`p`) and goal (`q`) predicates of liveness properties.
pub type StatePredicate<S, M, O> = Arc<dyn Fn(&GlobalState<S, M>, &O) -> bool + Send + Sync>;

/// Which class a [`Property`] belongs to; the engines dispatch on this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PropertyClass {
    /// A state invariant: checked in every visited state (the class
    /// MP-Basset supports).
    Safety,
    /// Every fair maximal execution reaches a quiescent/goal state.
    Termination,
    /// Every state satisfying the trigger predicate is followed by a state
    /// satisfying the goal predicate on every fair maximal execution.
    LeadsTo,
}

impl fmt::Display for PropertyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyClass::Safety => write!(f, "safety"),
            PropertyClass::Termination => write!(f, "termination"),
            PropertyClass::LeadsTo => write!(f, "leads-to"),
        }
    }
}

/// Which infinite executions count when checking a liveness property.
///
/// A lasso (cycle) counterexample is only reported when the cycle is *fair*
/// under the chosen policy: weak fairness rejects cycles that starve a
/// transition instance enabled in every state of the cycle but never
/// executed in it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Fairness {
    /// No fairness assumption: every maximal execution counts, including
    /// schedules that starve a continuously enabled process forever.
    Unfair,
    /// Weak fairness over *protocol* transitions; environment transitions
    /// (fault injection, [`Annotations::is_environment`](mp_model::Annotations))
    /// are exempt — the environment may always decline to act, so a crash is
    /// never "unfairly required" to happen. This is the default.
    #[default]
    WeakProtocol,
    /// Weak fairness over every transition, environment included: even
    /// faults must eventually fire while continuously enabled. Rarely what
    /// you want — it makes crashes *mandatory* — but useful to compare.
    WeakAll,
}

impl Fairness {
    /// Returns `true` if a transition with the given environment flag is
    /// subject to the weak-fairness requirement under this policy.
    pub fn requires(&self, is_environment: bool) -> bool {
        match self {
            Fairness::Unfair => false,
            Fairness::WeakProtocol => !is_environment,
            Fairness::WeakAll => true,
        }
    }
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fairness::Unfair => write!(f, "unfair"),
            Fairness::WeakProtocol => write!(f, "weak-fair (environment exempt)"),
            Fairness::WeakAll => write!(f, "weak-fair (all transitions)"),
        }
    }
}

enum PropertyKind<S, M: Ord, O> {
    Safety(Invariant<S, M, O>),
    Termination {
        goal: StatePredicate<S, M, O>,
    },
    LeadsTo {
        trigger: StatePredicate<S, M, O>,
        goal: StatePredicate<S, M, O>,
    },
}

impl<S, M: Ord, O> Clone for PropertyKind<S, M, O> {
    fn clone(&self) -> Self {
        match self {
            PropertyKind::Safety(inv) => PropertyKind::Safety(inv.clone()),
            PropertyKind::Termination { goal } => PropertyKind::Termination { goal: goal.clone() },
            PropertyKind::LeadsTo { trigger, goal } => PropertyKind::LeadsTo {
                trigger: trigger.clone(),
                goal: goal.clone(),
            },
        }
    }
}

/// A verification property: a safety invariant or a liveness
/// (termination / leads-to) obligation, with a [`Fairness`] policy for the
/// liveness classes.
///
/// Every [`Invariant`] converts into a safety `Property` via `From`, so
/// existing invariant-based call sites keep working unchanged:
///
/// ```
/// use mp_checker::{Fairness, Invariant, NullObserver, Property, PropertyClass};
/// use mp_model::GlobalState;
///
/// // Safety, from an invariant (the pre-refactor API):
/// let safety: Property<u32, String, NullObserver> =
///     Invariant::always_true("true").into();
/// assert_eq!(safety.class(), PropertyClass::Safety);
///
/// // Termination: every fair maximal execution reaches a state where some
/// // process counted to 2.
/// let term: Property<u32, String, NullObserver> =
///     Property::termination("counts-to-2", |s: &GlobalState<u32, String>, _: &NullObserver| {
///         s.locals.iter().any(|l| *l == 2)
///     });
/// assert_eq!(term.class(), PropertyClass::Termination);
/// assert_eq!(term.fairness(), Fairness::WeakProtocol);
/// ```
pub struct Property<S, M: Ord, O = crate::NullObserver> {
    name: String,
    fairness: Fairness,
    kind: PropertyKind<S, M, O>,
}

impl<S, M: Ord, O> Clone for Property<S, M, O> {
    fn clone(&self) -> Self {
        Property {
            name: self.name.clone(),
            fairness: self.fairness,
            kind: self.kind.clone(),
        }
    }
}

impl<S: LocalState, M: Message, O> From<Invariant<S, M, O>> for Property<S, M, O> {
    fn from(invariant: Invariant<S, M, O>) -> Self {
        Property::safety(invariant)
    }
}

impl<S: LocalState, M: Message, O> Property<S, M, O> {
    /// Wraps an invariant as a safety property (also available via `From`).
    pub fn safety(invariant: Invariant<S, M, O>) -> Self {
        Property {
            name: invariant.name().to_string(),
            fairness: Fairness::default(),
            kind: PropertyKind::Safety(invariant),
        }
    }

    /// Creates a termination property: every fair maximal execution reaches
    /// a state where `goal` holds (the quiescent/goal states). Fair maximal
    /// executions that deadlock before the goal, or loop forever through
    /// non-goal states, are counterexamples (lassos).
    pub fn termination<F>(name: impl Into<String>, goal: F) -> Self
    where
        F: Fn(&GlobalState<S, M>, &O) -> bool + Send + Sync + 'static,
    {
        Property {
            name: name.into(),
            fairness: Fairness::default(),
            kind: PropertyKind::Termination {
                goal: Arc::new(goal),
            },
        }
    }

    /// Creates a leads-to property `p ⇝ q`: on every fair maximal
    /// execution, every state where `trigger` holds is eventually followed
    /// by a state where `goal` holds. A state satisfying both discharges its
    /// own obligation immediately.
    pub fn leads_to<P, Q>(name: impl Into<String>, trigger: P, goal: Q) -> Self
    where
        P: Fn(&GlobalState<S, M>, &O) -> bool + Send + Sync + 'static,
        Q: Fn(&GlobalState<S, M>, &O) -> bool + Send + Sync + 'static,
    {
        Property {
            name: name.into(),
            fairness: Fairness::default(),
            kind: PropertyKind::LeadsTo {
                trigger: Arc::new(trigger),
                goal: Arc::new(goal),
            },
        }
    }

    /// Replaces the fairness policy (builder style; meaningful for the
    /// liveness classes only). The default is [`Fairness::WeakProtocol`].
    pub fn with_fairness(mut self, fairness: Fairness) -> Self {
        self.fairness = fairness;
        self
    }

    /// Returns the name of the property.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the property class the engines dispatch on.
    pub fn class(&self) -> PropertyClass {
        match &self.kind {
            PropertyKind::Safety(_) => PropertyClass::Safety,
            PropertyKind::Termination { .. } => PropertyClass::Termination,
            PropertyKind::LeadsTo { .. } => PropertyClass::LeadsTo,
        }
    }

    /// Returns the fairness policy applied to liveness counterexamples.
    pub fn fairness(&self) -> Fairness {
        self.fairness
    }

    /// Returns the wrapped invariant if this is a safety property.
    pub fn as_safety(&self) -> Option<&Invariant<S, M, O>> {
        match &self.kind {
            PropertyKind::Safety(inv) => Some(inv),
            _ => None,
        }
    }

    /// Returns `true` for the liveness classes (termination / leads-to).
    pub fn is_liveness(&self) -> bool {
        !matches!(self.kind, PropertyKind::Safety(_))
    }

    /// The liveness obligation in the initial state: for termination the
    /// obligation is armed from the start (unless the initial state is
    /// already a goal state); for leads-to it arms when the trigger holds.
    pub fn initial_pending(&self, state: &GlobalState<S, M>, observer: &O) -> bool {
        let inherited = matches!(self.kind, PropertyKind::Termination { .. });
        self.step_pending(inherited, state, observer)
    }

    /// Folds the liveness obligation along one step: a goal state discharges
    /// it, a trigger state (leads-to only) arms it, any other state inherits
    /// it. Safety properties never carry an obligation.
    pub fn step_pending(&self, inherited: bool, state: &GlobalState<S, M>, observer: &O) -> bool {
        match &self.kind {
            PropertyKind::Safety(_) => false,
            PropertyKind::Termination { goal } => inherited && !goal(state, observer),
            PropertyKind::LeadsTo { trigger, goal } => {
                if goal(state, observer) {
                    false
                } else if trigger(state, observer) {
                    true
                } else {
                    inherited
                }
            }
        }
    }

    /// Returns `true` if a discharged obligation can never re-arm on any
    /// extension of the execution — exactly the termination class, whose
    /// goal states are closed: the search may prune below them.
    pub fn discharged_forever(&self) -> bool {
        matches!(self.kind, PropertyKind::Termination { .. })
    }

    /// Transports the property to another state space via a projection of
    /// global states (the observer type is unchanged). This is how
    /// `mp-faults` lifts base-model properties to fault-augmented models:
    /// the projection forgets the fault bookkeeping.
    pub fn on_projected_state<S2>(
        self,
        project: impl Fn(&GlobalState<S2, M>) -> GlobalState<S, M> + Send + Sync + 'static,
    ) -> Property<S2, M, O>
    where
        S2: LocalState,
        O: Send + Sync + 'static,
        S: 'static,
        M: 'static,
    {
        let project = Arc::new(project);
        let fairness = self.fairness;
        let name = self.name;
        let kind = match self.kind {
            PropertyKind::Safety(inv) => {
                let project = project.clone();
                PropertyKind::Safety(Invariant::new(
                    name.clone(),
                    move |state: &GlobalState<S2, M>, observer: &O| match inv
                        .evaluate(&project(state), observer)
                    {
                        PropertyStatus::Holds => Ok(()),
                        PropertyStatus::Violated(reason) => Err(reason),
                    },
                ))
            }
            PropertyKind::Termination { goal } => PropertyKind::Termination {
                goal: {
                    let project = project.clone();
                    Arc::new(move |state: &GlobalState<S2, M>, observer: &O| {
                        goal(&project(state), observer)
                    })
                },
            },
            PropertyKind::LeadsTo { trigger, goal } => PropertyKind::LeadsTo {
                trigger: {
                    let project = project.clone();
                    Arc::new(move |state: &GlobalState<S2, M>, observer: &O| {
                        trigger(&project(state), observer)
                    })
                },
                goal: Arc::new(move |state: &GlobalState<S2, M>, observer: &O| {
                    goal(&project(state), observer)
                }),
            },
        };
        Property {
            name,
            fairness,
            kind,
        }
    }
}

impl<S, M: Ord, O> fmt::Debug for Property<S, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Property")
            .field("name", &self.name)
            .field(
                "class",
                &match &self.kind {
                    PropertyKind::Safety(_) => "safety",
                    PropertyKind::Termination { .. } => "termination",
                    PropertyKind::LeadsTo { .. } => "leads-to",
                },
            )
            .field("fairness", &self.fairness)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullObserver;

    type St = GlobalState<u32, String>;

    fn no_big(limit: u32) -> Invariant<u32, String, NullObserver> {
        Invariant::new(format!("no-local-above-{limit}"), move |s: &St, _| match s
            .locals
            .iter()
            .find(|l| **l > limit)
        {
            Some(l) => Err(format!("local state {l} exceeds {limit}")),
            None => Ok(()),
        })
    }

    #[test]
    fn invariant_holds_and_violates() {
        let inv = no_big(10);
        assert!(inv
            .evaluate(&GlobalState::new(vec![1, 2]), &NullObserver)
            .holds());
        let status = inv.evaluate(&GlobalState::new(vec![1, 20]), &NullObserver);
        match status {
            PropertyStatus::Violated(reason) => assert!(reason.contains("20")),
            PropertyStatus::Holds => panic!("expected violation"),
        }
    }

    #[test]
    fn always_true_never_violates() {
        let inv: Invariant<u32, String, NullObserver> = Invariant::always_true("true");
        assert!(inv
            .evaluate(&GlobalState::new(vec![u32::MAX]), &NullObserver)
            .holds());
        assert_eq!(inv.name(), "true");
    }

    #[test]
    fn conjunction_reports_first_violation() {
        let both = all_of("both", vec![no_big(5), no_big(100)]);
        assert!(both
            .evaluate(&GlobalState::new(vec![1]), &NullObserver)
            .holds());
        let status = both.evaluate(&GlobalState::new(vec![7]), &NullObserver);
        match status {
            PropertyStatus::Violated(reason) => {
                assert!(reason.contains("no-local-above-5"));
            }
            PropertyStatus::Holds => panic!("expected violation"),
        }
    }

    #[test]
    fn debug_shows_name() {
        let inv = no_big(1);
        assert!(format!("{inv:?}").contains("no-local-above-1"));
    }

    #[test]
    fn invariant_converts_into_safety_property() {
        let prop: Property<u32, String, NullObserver> = no_big(3).into();
        assert_eq!(prop.class(), PropertyClass::Safety);
        assert!(!prop.is_liveness());
        assert!(prop.as_safety().is_some());
        assert_eq!(prop.name(), "no-local-above-3");
        // Safety properties carry no liveness obligation.
        let s = GlobalState::new(vec![0u32]);
        assert!(!prop.initial_pending(&s, &NullObserver));
        assert!(!prop.step_pending(true, &s, &NullObserver));
    }

    #[test]
    fn termination_obligation_folds_along_goal_states() {
        let prop: Property<u32, String, NullObserver> =
            Property::termination("reach-2", |s: &St, _| s.locals.contains(&2));
        assert_eq!(prop.class(), PropertyClass::Termination);
        assert!(prop.discharged_forever());
        let not_goal = GlobalState::new(vec![0u32]);
        let goal = GlobalState::new(vec![2u32]);
        assert!(prop.initial_pending(&not_goal, &NullObserver));
        assert!(!prop.initial_pending(&goal, &NullObserver));
        // Once discharged, the obligation never re-arms.
        assert!(!prop.step_pending(false, &not_goal, &NullObserver));
        assert!(prop.step_pending(true, &not_goal, &NullObserver));
        assert!(!prop.step_pending(true, &goal, &NullObserver));
    }

    #[test]
    fn leads_to_obligation_arms_and_discharges() {
        let prop: Property<u32, String, NullObserver> = Property::leads_to(
            "1-leads-to-2",
            |s: &St, _| s.locals[0] == 1,
            |s: &St, _| s.locals[0] == 2,
        );
        assert_eq!(prop.class(), PropertyClass::LeadsTo);
        assert!(!prop.discharged_forever());
        let idle = GlobalState::new(vec![0u32]);
        let trigger = GlobalState::new(vec![1u32]);
        let goal = GlobalState::new(vec![2u32]);
        assert!(!prop.initial_pending(&idle, &NullObserver));
        assert!(prop.initial_pending(&trigger, &NullObserver));
        assert!(prop.step_pending(false, &trigger, &NullObserver));
        assert!(prop.step_pending(true, &idle, &NullObserver));
        assert!(!prop.step_pending(true, &goal, &NullObserver));
    }

    #[test]
    fn fairness_policies_classify_transitions() {
        assert!(!Fairness::Unfair.requires(false));
        assert!(!Fairness::Unfair.requires(true));
        assert!(Fairness::WeakProtocol.requires(false));
        assert!(!Fairness::WeakProtocol.requires(true));
        assert!(Fairness::WeakAll.requires(true));
        let prop: Property<u32, String, NullObserver> =
            Property::termination("t", |_: &St, _| false).with_fairness(Fairness::Unfair);
        assert_eq!(prop.fairness(), Fairness::Unfair);
    }

    #[test]
    fn projection_transports_all_classes() {
        // Project a (state, shadow) pair space back to the plain space by
        // halving every local.
        let project = |s: &GlobalState<u32, String>| {
            GlobalState::new(s.locals.iter().map(|l| l / 2).collect::<Vec<u32>>())
        };
        let safety: Property<u32, String, NullObserver> = no_big(3).into();
        let lifted = safety.on_projected_state(project);
        let ok = GlobalState::new(vec![6u32]); // projects to 3
        let bad = GlobalState::new(vec![8u32]); // projects to 4
        let inv = lifted.as_safety().unwrap();
        assert!(inv.evaluate(&ok, &NullObserver).holds());
        assert!(!inv.evaluate(&bad, &NullObserver).holds());

        let term: Property<u32, String, NullObserver> =
            Property::termination("reach-2", |s: &St, _| s.locals[0] == 2);
        let lifted = term.on_projected_state(project);
        let goal = GlobalState::new(vec![4u32]); // projects to 2
        assert!(!lifted.initial_pending(&goal, &NullObserver));
        assert!(lifted.initial_pending(&ok, &NullObserver));
    }
}
