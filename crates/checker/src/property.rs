//! Properties: invariants over global states (and observers).
//!
//! MP-Basset specifications are "a set of Java assertions ... the
//! specification restricts to invariants (or global predicates)" (paper,
//! appendix). This module provides the same class of properties: an
//! [`Invariant`] is a named predicate evaluated in every visited state; the
//! model checker reports the first violating path as a counterexample.

use std::fmt;
use std::sync::Arc;

use mp_model::{GlobalState, LocalState, Message};

use crate::Observer;

/// The outcome of evaluating a property in one state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropertyStatus {
    /// The property holds in this state.
    Holds,
    /// The property is violated; the string explains how.
    Violated(String),
}

impl PropertyStatus {
    /// Returns `true` if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyStatus::Holds)
    }
}

/// A named invariant over global states and an observer value.
///
/// # Examples
///
/// ```
/// use mp_checker::{Invariant, NullObserver};
/// use mp_model::GlobalState;
///
/// // "no process ever reaches local state 99"
/// let inv: Invariant<u32, String, NullObserver> = Invariant::new(
///     "no-99",
///     |state: &GlobalState<u32, String>, _obs: &NullObserver| {
///         if state.locals.iter().any(|l| *l == 99) {
///             Err("a process reached 99".to_string())
///         } else {
///             Ok(())
///         }
///     },
/// );
/// let ok: GlobalState<u32, String> = GlobalState::new(vec![0, 1]);
/// assert!(inv.evaluate(&ok, &NullObserver).holds());
/// ```
#[derive(Clone)]
pub struct Invariant<S, M: Ord, O = crate::NullObserver> {
    name: String,
    #[allow(clippy::type_complexity)]
    check: Arc<dyn Fn(&GlobalState<S, M>, &O) -> Result<(), String> + Send + Sync>,
}

impl<S: LocalState, M: Message, O> Invariant<S, M, O> {
    /// Creates an invariant from a closure returning `Err(reason)` on
    /// violation.
    pub fn new<F>(name: impl Into<String>, check: F) -> Self
    where
        F: Fn(&GlobalState<S, M>, &O) -> Result<(), String> + Send + Sync + 'static,
    {
        Invariant {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// Creates the trivial invariant that holds in every state — useful for
    /// pure state-space measurement runs (the "how many states are there"
    /// experiments of Section II-C).
    pub fn always_true(name: impl Into<String>) -> Self {
        Invariant::new(name, |_, _| Ok(()))
    }

    /// Returns the name of the invariant.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the invariant in a state.
    pub fn evaluate(&self, state: &GlobalState<S, M>, observer: &O) -> PropertyStatus {
        match (self.check)(state, observer) {
            Ok(()) => PropertyStatus::Holds,
            Err(reason) => PropertyStatus::Violated(reason),
        }
    }
}

impl<S, M: Ord, O> fmt::Debug for Invariant<S, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Conjunction of several invariants, evaluated left to right; the first
/// violation wins.
pub fn all_of<S: LocalState, M: Message, O: Observer<S, M>>(
    name: impl Into<String>,
    invariants: Vec<Invariant<S, M, O>>,
) -> Invariant<S, M, O> {
    Invariant::new(name, move |state, observer| {
        for inv in &invariants {
            if let PropertyStatus::Violated(reason) = inv.evaluate(state, observer) {
                return Err(format!("{}: {}", inv.name(), reason));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullObserver;

    type St = GlobalState<u32, String>;

    fn no_big(limit: u32) -> Invariant<u32, String, NullObserver> {
        Invariant::new(format!("no-local-above-{limit}"), move |s: &St, _| match s
            .locals
            .iter()
            .find(|l| **l > limit)
        {
            Some(l) => Err(format!("local state {l} exceeds {limit}")),
            None => Ok(()),
        })
    }

    #[test]
    fn invariant_holds_and_violates() {
        let inv = no_big(10);
        assert!(inv
            .evaluate(&GlobalState::new(vec![1, 2]), &NullObserver)
            .holds());
        let status = inv.evaluate(&GlobalState::new(vec![1, 20]), &NullObserver);
        match status {
            PropertyStatus::Violated(reason) => assert!(reason.contains("20")),
            PropertyStatus::Holds => panic!("expected violation"),
        }
    }

    #[test]
    fn always_true_never_violates() {
        let inv: Invariant<u32, String, NullObserver> = Invariant::always_true("true");
        assert!(inv
            .evaluate(&GlobalState::new(vec![u32::MAX]), &NullObserver)
            .holds());
        assert_eq!(inv.name(), "true");
    }

    #[test]
    fn conjunction_reports_first_violation() {
        let both = all_of("both", vec![no_big(5), no_big(100)]);
        assert!(both
            .evaluate(&GlobalState::new(vec![1]), &NullObserver)
            .holds());
        let status = both.evaluate(&GlobalState::new(vec![7]), &NullObserver);
        match status {
            PropertyStatus::Violated(reason) => {
                assert!(reason.contains("no-local-above-5"));
            }
            PropertyStatus::Holds => panic!("expected violation"),
        }
    }

    #[test]
    fn debug_shows_name() {
        let inv = no_big(1);
        assert!(format!("{inv:?}").contains("no-local-above-1"));
    }
}
