//! Stateless depth-first search with optional dynamic POR.
//!
//! The stateless engine keeps no visited-state set: it re-explores a state
//! every time a different path reaches it. This is wasteful for large state
//! spaces (the paper's Table I shows the no-quorum DPOR runs timing out on
//! Paxos) but it is the only search mode under which Flanagan–Godefroid
//! dynamic POR is sound, because DPOR installs backtrack points in ancestors
//! while exploring the subtree below them (paper, Section III-A).
//!
//! The DPOR implementation follows the classic recipe: per stack frame a set
//! of enabled instances, a *backtrack set* of instance indices that must be
//! explored from that frame, and a *done* set; whenever a newly executed step
//! races with an earlier step (detected by [`mp_por::latest_racing_step`]),
//! an instance of the racing process is added to the earlier frame's
//! backtrack set.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use mp_model::{
    enabled_instances, execute_enabled, GlobalState, LocalState, Message, ProcessId, ProtocolSpec,
    TransitionInstance,
};
use mp_por::{latest_racing_step, ExecutedStep};
use mp_symmetry::Symmetry;
use mp_trace::{Counter, Phase, TraceHandle};

use crate::{
    liveness::run_stateless_liveness, CheckerConfig, Counterexample, ExplorationStats, Observer,
    Property, PropertyStatus, RunReport, Verdict,
};

struct Frame<S, M: Ord, O> {
    state: GlobalState<S, M>,
    observer: O,
    enabled: Vec<TransitionInstance<M>>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
}

impl<S, M: Ord, O> Frame<S, M, O> {
    fn pick(&self) -> Option<usize> {
        self.backtrack
            .iter()
            .find(|i| !self.done.contains(i))
            .copied()
    }

    fn add_backtrack_for_process(&mut self, process: ProcessId) {
        // Prefer an instance of the racing process that has not been explored
        // from this frame yet; fall back to any instance of that process; if
        // the process has no enabled instance here, schedule everything (the
        // conservative DPOR fallback).
        let not_done = self
            .enabled
            .iter()
            .enumerate()
            .find(|(i, inst)| inst.process == process && !self.done.contains(i))
            .map(|(i, _)| i);
        if let Some(idx) = not_done {
            self.backtrack.insert(idx);
            return;
        }
        if let Some(idx) = self.enabled.iter().position(|inst| inst.process == process) {
            self.backtrack.insert(idx);
            return;
        }
        for i in 0..self.enabled.len() {
            self.backtrack.insert(i);
        }
    }
}

/// Runs a stateless depth-first search, with Flanagan–Godefroid DPOR when
/// `dpor` is `true`.
///
/// Dispatches on the property class: safety properties run the stateless
/// search below. Liveness properties run the on-path lasso search of
/// [`crate::liveness`]; DPOR's backtrack sets track safety races only, so
/// for liveness the ignoring proviso forces the documented fallback to full
/// expansion there.
///
/// **Symmetry.** The stateless engine has no visited set, so symmetry
/// reduction (a visited-*key* canonicalization in the stateful engines)
/// takes a different form here: the plain (non-DPOR) search cuts a branch
/// whenever a successor's orbit already appears on the current path — every
/// violating path has an orbit-repetition-free witness (splice out the
/// segment between the repetition and map the suffix through the connecting
/// permutation), so the cut search still finds a violation iff one exists.
/// DPOR installs backtrack points in ancestors *while exploring the subtree
/// below them*; cutting that subtree on an orbit match would silently drop
/// the races recorded inside it, so with `dpor` the symmetry reduction is
/// ignored (the strategy label says so) — the documented fallback, mirroring
/// the DPOR/liveness fallback above. The stateless liveness search likewise
/// runs concretely.
pub fn run_stateless<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    property: &Property<S, M, O>,
    initial_observer: &O,
    dpor: bool,
    symmetry: &Arc<dyn Symmetry<S, M, O>>,
    config: &CheckerConfig,
) -> RunReport
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    if property.is_liveness() {
        let mut report = run_stateless_liveness(spec, property, initial_observer, dpor, config);
        if !symmetry.is_trivial() {
            // The on-path lasso search runs concretely; say so instead of
            // letting an installed reduction look silently effective.
            report.strategy.push_str(" (symmetry ignored)");
        }
        return report;
    }
    let property = property
        .as_safety()
        .expect("a non-liveness property is a safety invariant");
    let start = Instant::now();
    let mut stats = ExplorationStats::new();
    // The stateless engine keeps no visited set by design (required for
    // DPOR soundness); record that explicitly so reports distinguish "no
    // store" from "store stats missing".
    stats.store_backend = "none".to_string();
    // Orbit-path cutting is sound only without DPOR (see the docs above).
    let cut_orbits = !symmetry.is_trivial() && !dpor;
    let strategy = match (dpor, symmetry.is_trivial()) {
        (true, true) => "stateless+dpor".to_string(),
        (true, false) => "stateless+dpor (symmetry ignored)".to_string(),
        (false, true) => "stateless".to_string(),
        (false, false) => format!("stateless+{}", symmetry.label()),
    };
    let trace = config
        .trace
        .begin_run(spec.name(), &strategy, property.name());

    macro_rules! finish_stats {
        ($verdict:expr) => {
            stats.elapsed = start.elapsed();
            stats.phases = trace.phase_times();
            trace.finish($verdict);
        };
    }

    let initial = spec.initial_state();
    let initial_observer = initial_observer.clone();

    if let PropertyStatus::Violated(reason) = property.evaluate(&initial, &initial_observer) {
        stats.states = 1;
        trace.add(Counter::States, 1);
        finish_stats!("violated");
        let cx = Counterexample::new(spec, property.name(), reason, &[], &initial);
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    let mut stack: Vec<Frame<S, M, O>> = Vec::new();
    let mut executed: Vec<ExecutedStep<M>> = Vec::new();
    // Canonical orbit keys of the states on the current path, aligned with
    // `stack`; only maintained when orbit-path cutting is active.
    let mut path_keys: Vec<(GlobalState<S, M>, O)> = Vec::new();

    stack.push(new_frame(
        spec,
        initial,
        initial_observer,
        dpor,
        &mut stats,
        &trace,
    ));
    if cut_orbits {
        let (s, o, _) = symmetry.canonicalize_traced(&stack[0].state, &stack[0].observer, &trace);
        path_keys.push((s, o));
    }
    if config.check_deadlocks && stack[0].enabled.is_empty() {
        finish_stats!("violated");
        let cx = Counterexample::new(
            spec,
            property.name(),
            "deadlock in the initial state",
            &[],
            &stack[0].state,
        );
        return RunReport {
            verdict: Verdict::Violated(Box::new(cx)),
            stats,
            strategy,
        };
    }

    while let Some(top_index) = stack.len().checked_sub(1) {
        stats.max_depth = stats.max_depth.max(stack.len());
        trace.add(Counter::Depth, stack.len() as u64);

        let Some(choice) = stack[top_index].pick() else {
            stack.pop();
            if cut_orbits {
                path_keys.pop();
            }
            if !executed.is_empty() && !stack.is_empty() {
                executed.pop();
            }
            continue;
        };
        stack[top_index].done.insert(choice);

        let instance = stack[top_index].enabled[choice].clone();
        let (next_state, next_observer, sent_to) = {
            let _span = trace.span(Phase::Expansion);
            let frame = &stack[top_index];
            let next_state = execute_enabled(spec, &frame.state, &instance);
            let next_observer = frame
                .observer
                .update(spec, &frame.state, &instance, &next_state);
            // Recipients of messages sent by this step (effects are pure, so
            // re-applying is safe); used by the DPOR causality tracking.
            let outcome = spec
                .transition(instance.transition)
                .apply(frame.state.local(instance.process), &instance.envelopes);
            let sent_to: Vec<ProcessId> = outcome.sends.iter().map(|(to, _)| *to).collect();
            (next_state, next_observer, sent_to)
        };
        stats.transitions_executed += 1;
        trace.add(Counter::Transitions, 1);

        // Orbit-path cut (symmetry, non-DPOR only): a successor whose orbit
        // already appears on this path has a shorter symmetric witness for
        // anything reachable below it.
        let next_key = cut_orbits.then(|| {
            let (s, o, _) = symmetry.canonicalize_traced(&next_state, &next_observer, &trace);
            (s, o)
        });
        if let Some(key) = &next_key {
            if path_keys.contains(key) {
                stats.revisits += 1;
                trace.add(Counter::Revisits, 1);
                continue;
            }
        }

        let annotations = spec.transition(instance.transition).annotations();
        executed.push(
            ExecutedStep::new(instance.clone(), sent_to)
                .with_environment(annotations.is_environment)
                .with_environment_class(annotations.environment_class),
        );
        if dpor {
            let latest = executed.len() - 1;
            if let Some(racing) = latest_racing_step(&executed, latest) {
                // `executed[racing]` was taken from `stack[racing]`; the race
                // means the alternative order must also be explored from
                // there.
                stack[racing].add_backtrack_for_process(instance.process);
            }
        }

        if let PropertyStatus::Violated(reason) = property.evaluate(&next_state, &next_observer) {
            let path: Vec<TransitionInstance<M>> =
                executed.iter().map(|s| s.instance.clone()).collect();
            stats.states += 1;
            trace.add(Counter::States, 1);
            finish_stats!("violated");
            let cx = Counterexample::new(spec, property.name(), reason, &path, &next_state);
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }

        if stats.expansions >= config.max_states {
            finish_stats!("limit");
            return RunReport {
                verdict: Verdict::LimitReached {
                    what: format!("expansion limit of {}", config.max_states),
                },
                stats,
                strategy,
            };
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                finish_stats!("limit");
                return RunReport {
                    verdict: Verdict::LimitReached {
                        what: format!("time limit of {limit:?}"),
                    },
                    stats,
                    strategy,
                };
            }
        }
        if stack.len() >= config.max_depth {
            finish_stats!("limit");
            return RunReport {
                verdict: Verdict::LimitReached {
                    what: format!("depth limit of {}", config.max_depth),
                },
                stats,
                strategy,
            };
        }

        let frame = new_frame(spec, next_state, next_observer, dpor, &mut stats, &trace);
        if config.check_deadlocks && frame.enabled.is_empty() {
            let path: Vec<TransitionInstance<M>> =
                executed.iter().map(|s| s.instance.clone()).collect();
            finish_stats!("violated");
            let cx = Counterexample::new(
                spec,
                property.name(),
                "deadlock: no transition enabled",
                &path,
                &frame.state,
            );
            return RunReport {
                verdict: Verdict::Violated(Box::new(cx)),
                stats,
                strategy,
            };
        }
        if let Some(key) = next_key {
            path_keys.push(key);
        }
        stack.push(frame);
    }

    finish_stats!("verified");
    RunReport {
        verdict: Verdict::Verified,
        stats,
        strategy,
    }
}

fn new_frame<S, M, O>(
    spec: &ProtocolSpec<S, M>,
    state: GlobalState<S, M>,
    observer: O,
    dpor: bool,
    stats: &mut ExplorationStats,
    trace: &TraceHandle,
) -> Frame<S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    stats.states += 1;
    stats.expansions += 1;
    trace.add(Counter::States, 1);
    trace.add(Counter::Expansions, 1);
    let enabled = {
        let _span = trace.span(Phase::Expansion);
        enabled_instances(spec, &state)
    };
    let backtrack: BTreeSet<usize> = if enabled.is_empty() {
        BTreeSet::new()
    } else if dpor {
        stats.reduced_states += 1;
        BTreeSet::from([0])
    } else {
        (0..enabled.len()).collect()
    };
    Frame {
        state,
        observer,
        enabled,
        backtrack,
        done: BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Invariant, NullObserver};
    use mp_model::{Kind, Outcome, ProcessId, ProtocolSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Ping(u8),
    }
    mp_model::codec!(enum Msg { 0 = Ping(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            "PING"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn no_sym() -> Arc<dyn Symmetry<u8, Msg, NullObserver>> {
        Arc::new(mp_symmetry::NoSymmetry)
    }

    fn independent(n: usize, steps: u8) -> ProtocolSpec<u8, Msg> {
        let mut builder = ProtocolSpec::builder("independent");
        for i in 0..n {
            builder = builder.process(format!("w{i}"), 0u8);
        }
        for i in 0..n {
            builder = builder.transition(
                TransitionSpec::builder(format!("step{i}"), p(i))
                    .internal()
                    .guard(move |l, _| *l < steps)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    /// Sender sends to two receivers; receivers consume. The receives are
    /// independent of each other but dependent on the send.
    fn fan_out() -> ProtocolSpec<u8, Msg> {
        ProtocolSpec::builder("fan-out")
            .process("sender", 0u8)
            .process("r1", 0u8)
            .process("r2", 0u8)
            .transition(
                TransitionSpec::builder("SEND", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["PING"])
                    .effect(|_, _| {
                        Outcome::new(1)
                            .send(p(1), Msg::Ping(1))
                            .send(p(2), Msg::Ping(2))
                    })
                    .build(),
            )
            .transition(
                TransitionSpec::builder("RECV_1", p(1))
                    .single_input("PING")
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("RECV_2", p(2))
                    .single_input("PING")
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn stateless_full_search_counts_all_paths() {
        // 2 independent processes × 2 steps: 4!/(2!2!) = 6 paths, and the
        // stateless tree has 1 + 2 + 4 + 6 + 6 = 19 nodes... we simply check
        // it is strictly larger than the 9 distinct states.
        let spec = independent(2, 2);
        let report = run_stateless(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            false,
            &no_sym(),
            &CheckerConfig::stateless(false),
        );
        assert!(report.verdict.is_verified());
        assert!(report.stats.states > 9);
    }

    #[test]
    fn dpor_explores_fewer_nodes_than_full_stateless() {
        let spec = independent(3, 2);
        let full = run_stateless(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            false,
            &no_sym(),
            &CheckerConfig::stateless(false),
        );
        let dpor = run_stateless(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            true,
            &no_sym(),
            &CheckerConfig::stateless(true),
        );
        assert!(full.verdict.is_verified());
        assert!(dpor.verdict.is_verified());
        assert!(
            dpor.stats.states < full.stats.states,
            "DPOR ({}) must explore fewer nodes than full stateless ({})",
            dpor.stats.states,
            full.stats.states
        );
    }

    #[test]
    fn dpor_explores_dependent_interleavings() {
        // The two receives are dependent on the send but independent of each
        // other; DPOR must still execute both of them (in some order) and
        // reach the terminal state where everyone is done.
        let spec = fan_out();
        let property: Invariant<u8, Msg, NullObserver> =
            Invariant::new("not-all-done", |s: &GlobalState<u8, Msg>, _| {
                if s.locals.iter().all(|l| *l == 1) && s.pending_messages() == 0 {
                    Err("terminal state reached".into())
                } else {
                    Ok(())
                }
            });
        let report = run_stateless(
            &spec,
            &property.into(),
            &NullObserver,
            true,
            &no_sym(),
            &CheckerConfig::stateless(true),
        );
        assert!(
            report.verdict.is_violated(),
            "DPOR must reach the terminal state"
        );
        assert_eq!(report.verdict.counterexample().unwrap().len(), 3);
    }

    #[test]
    fn dpor_finds_violations_that_need_both_orders() {
        // Property violated only when step0 of process 0 happens after
        // process 1 has already moved — requires exploring a second order of
        // two *independent* transitions; DPOR correctly does not, so the
        // violation must still be found because the property only depends on
        // the final state here. Use a genuinely order-sensitive check on the
        // pair (dependent through the shared observer is not modelled), so
        // instead verify both orders are covered by the full search and the
        // same verdict is produced by DPOR for a final-state property.
        let spec = independent(2, 1);
        let property: Property<u8, Msg, NullObserver> =
            Invariant::new("both-done", |s: &GlobalState<u8, Msg>, _| {
                if s.locals.iter().all(|l| *l == 1) {
                    Err("both finished".into())
                } else {
                    Ok(())
                }
            })
            .into();
        let full = run_stateless(
            &spec,
            &property,
            &NullObserver,
            false,
            &no_sym(),
            &CheckerConfig::stateless(false),
        );
        let dpor = run_stateless(
            &spec,
            &property,
            &NullObserver,
            true,
            &no_sym(),
            &CheckerConfig::stateless(true),
        );
        assert!(full.verdict.is_violated());
        assert!(dpor.verdict.is_violated());
    }

    #[test]
    fn depth_limit_stops_cyclic_exploration() {
        // A toggling process never terminates; the stateless search must be
        // cut off by the depth bound.
        let spec: ProtocolSpec<u8, Msg> = ProtocolSpec::builder("cycle")
            .process("toggler", 0u8)
            .transition(
                TransitionSpec::builder("toggle", p(0))
                    .internal()
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(1 - *l))
                    .build(),
            )
            .build()
            .unwrap();
        let report = run_stateless(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            false,
            &no_sym(),
            &CheckerConfig::stateless(false).with_max_depth(50),
        );
        assert!(matches!(report.verdict, Verdict::LimitReached { .. }));
    }

    #[test]
    fn expansion_limit_is_respected() {
        let spec = independent(3, 3);
        let report = run_stateless(
            &spec,
            &Invariant::always_true("true").into(),
            &NullObserver,
            false,
            &no_sym(),
            &CheckerConfig::stateless(false).with_max_states(10),
        );
        assert!(matches!(report.verdict, Verdict::LimitReached { .. }));
    }
}
