//! Exploration statistics.
//!
//! The paper reports two numbers per experiment — visited states and wall
//! clock time (Tables I and II). [`ExplorationStats`] records those plus a
//! few internals (transitions executed, peak depth, how many states were
//! expanded with a reduced transition set) that the harness uses to explain
//! *why* a strategy wins.

use std::fmt;
use std::time::Duration;

use mp_store::{FrontierStats, StoreStats};
use mp_trace::PhaseTimes;

/// Counters collected during one model-checking run.
///
/// The struct deliberately does **not** implement `PartialEq`: it mixes
/// deterministic search counters with wall-clock and byte measurements that
/// vary run to run. Agreement assertions should compare the
/// [`ExplorationStats::counters`] view, which carries only the
/// deterministic fields.
#[derive(Clone, Debug, Default)]
pub struct ExplorationStats {
    /// Number of distinct states stored (stateful search) or expanded
    /// (stateless search). This is the "States" column of Tables I and II.
    pub states: usize,
    /// Number of state expansions. For stateful search this equals
    /// [`ExplorationStats::states`] unless the search stopped early; for
    /// stateless search it counts every node of the explored tree.
    pub expansions: usize,
    /// Number of transition executions performed.
    pub transitions_executed: usize,
    /// Number of times a successor was already known (stateful search).
    pub revisits: usize,
    /// Number of states in which the reducer pruned at least one enabled
    /// instance.
    pub reduced_states: usize,
    /// Number of states in which the cycle proviso forced full expansion.
    pub proviso_expansions: usize,
    /// Maximum search depth reached.
    pub max_depth: usize,
    /// Size of the parallel engine's worker pool (0 for the sequential
    /// engines). This is the `threads` column of the scaling benchmarks.
    pub worker_threads: usize,
    /// OS threads actually started over the whole run. The persistent pool
    /// contract is `worker_spawns == worker_threads` no matter how many
    /// levels or batches the search processed — a regression to
    /// spawn-per-batch shows up here (and in the test that asserts it).
    pub worker_spawns: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Name of the visited-state backend used ("exact", "sharded",
    /// "fingerprint", or "none" for the stateless engine).
    pub store_backend: String,
    /// Membership queries that found the state already stored, as counted
    /// uniformly by the backend (`mp-store` unified hit accounting). For
    /// the stateful engines this equals [`ExplorationStats::revisits`].
    pub store_hits: usize,
    /// Approximate peak heap footprint of the visited-state store in
    /// bytes. This is the number the fingerprint backend shrinks.
    pub store_bytes: usize,
    /// Bytes of visited-set data the store wrote to disk as sorted runs (0
    /// for the in-memory backends; see `mp-store`'s `RunStore`).
    pub store_spilled_bytes: usize,
    /// Bytes the store wrote while merging its sorted runs at level
    /// boundaries (0 for the in-memory backends).
    pub store_merge_bytes: usize,
    /// Name of the frontier backend the BFS engines drove ("mem", "disk";
    /// empty for the depth-first and stateless engines, which have no
    /// frontier).
    pub frontier_backend: String,
    /// Peak bytes queued in the BFS frontier: exact encoded bytes for the
    /// disk backend, an item-count approximation for the in-memory one
    /// (see [`mp_store::FrontierStats::peak_bytes`]). With symmetry
    /// reduction the frontier holds canonical orbit representatives, so
    /// this number shrinks with the orbit collapse.
    pub frontier_peak_bytes: usize,
    /// Total bytes the frontier and the path-reconstruction tables spilled
    /// to disk over the run (0 for the in-memory frontier).
    pub frontier_spilled_bytes: usize,
    /// Wall-clock time attributed to each instrumented phase of the run
    /// (all zero when tracing is disabled — the engines only pay for the
    /// clock reads when a [`mp_trace::Tracer`] is installed).
    pub phases: PhaseTimes,
}

/// The deterministic counters of an [`ExplorationStats`] record — every
/// field that depends only on the protocol, property and strategy, none
/// that depend on wall-clock time, heap layout or store sizing. Two runs
/// of the same configured search must produce equal `StatsCounters`; this
/// is what tests and the sweep harness assert instead of comparing whole
/// stats structs and excluding the noisy fields by hand.
///
/// Pool-shape fields ([`ExplorationStats::worker_threads`],
/// [`ExplorationStats::worker_spawns`]) are deliberately absent: agreement
/// is asserted *across* engines and thread counts, and the pool shape is
/// exactly what varies between the compared runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsCounters {
    /// Distinct states stored/expanded ([`ExplorationStats::states`]).
    pub states: usize,
    /// State expansions ([`ExplorationStats::expansions`]).
    pub expansions: usize,
    /// Transition executions ([`ExplorationStats::transitions_executed`]).
    pub transitions_executed: usize,
    /// Already-known successors ([`ExplorationStats::revisits`]).
    pub revisits: usize,
    /// States expanded with a reduced set ([`ExplorationStats::reduced_states`]).
    pub reduced_states: usize,
    /// Proviso-forced full expansions ([`ExplorationStats::proviso_expansions`]).
    pub proviso_expansions: usize,
    /// Peak search depth ([`ExplorationStats::max_depth`]).
    pub max_depth: usize,
}

impl ExplorationStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the deterministic-counter view used for agreement
    /// assertions (see [`StatsCounters`]).
    pub fn counters(&self) -> StatsCounters {
        StatsCounters {
            states: self.states,
            expansions: self.expansions,
            transitions_executed: self.transitions_executed,
            revisits: self.revisits,
            reduced_states: self.reduced_states,
            proviso_expansions: self.proviso_expansions,
            max_depth: self.max_depth,
        }
    }

    /// Throughput in states per second (0 if the run was instantaneous).
    pub fn states_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of expanded states in which a reduction was achieved.
    pub fn reduction_ratio(&self) -> f64 {
        if self.expansions == 0 {
            0.0
        } else {
            self.reduced_states as f64 / self.expansions as f64
        }
    }

    /// Copies the backend's counters into this record (called by every
    /// stateful engine just before it returns).
    pub fn record_store(&mut self, name: &str, store: StoreStats) {
        self.store_backend = name.to_string();
        self.store_hits = store.hits;
        self.store_bytes = store.approx_bytes;
        self.store_spilled_bytes = store.spilled_bytes;
        self.store_merge_bytes = store.merge_bytes;
    }

    /// Copies the frontier's counters into this record (called by the BFS
    /// engines just before they return). `extra_spilled` folds in the
    /// bytes the path-reconstruction log wrote next to the frontier's own
    /// segments.
    pub fn record_frontier(&mut self, name: &str, frontier: FrontierStats, extra_spilled: usize) {
        self.frontier_backend = name.to_string();
        self.frontier_peak_bytes = frontier.peak_bytes;
        self.frontier_spilled_bytes = frontier.spilled_bytes + extra_spilled;
    }
}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {:.1?} ({:.0} states/s, {:.0}% states reduced, max depth {})",
            self.states,
            self.transitions_executed,
            self.elapsed,
            self.states_per_second(),
            self.reduction_ratio() * 100.0,
            self.max_depth
        )?;
        if !self.store_backend.is_empty() && self.store_backend != "none" {
            write!(
                f,
                " [{} store: ~{} KiB, {} hits]",
                self.store_backend,
                self.store_bytes / 1024,
                self.store_hits
            )?;
        }
        if !self.frontier_backend.is_empty() {
            write!(
                f,
                " [{} frontier: peak ~{} KiB, {} KiB spilled]",
                self.frontier_backend,
                self.frontier_peak_bytes / 1024,
                self.frontier_spilled_bytes / 1024
            )?;
        }
        if !self.phases.is_zero() {
            write!(f, " [phases:")?;
            for (phase, time) in self.phases.iter() {
                if !time.is_zero() {
                    write!(f, " {}={}ms", phase.name(), time.as_millis())?;
                }
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ExplorationStats::new();
        assert_eq!(s.states, 0);
        assert_eq!(s.states_per_second(), 0.0);
        assert_eq!(s.reduction_ratio(), 0.0);
    }

    #[test]
    fn throughput_and_ratio() {
        let s = ExplorationStats {
            states: 1000,
            expansions: 500,
            reduced_states: 250,
            elapsed: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((s.states_per_second() - 500.0).abs() < 1e-9);
        assert!((s.reduction_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_states_and_time() {
        let s = ExplorationStats {
            states: 42,
            transitions_executed: 100,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("42 states"));
        assert!(text.contains("100 transitions"));
    }

    #[test]
    fn counters_view_ignores_timing_and_size_fields() {
        let mut a = ExplorationStats {
            states: 10,
            expansions: 10,
            transitions_executed: 25,
            revisits: 5,
            max_depth: 4,
            elapsed: Duration::from_millis(3),
            store_bytes: 4096,
            ..Default::default()
        };
        let mut b = a.clone();
        // Perturb every noisy field; the counters view must still agree.
        b.elapsed = Duration::from_secs(9);
        b.store_bytes = 1;
        b.store_backend = "exact".into();
        b.frontier_peak_bytes = 777;
        b.phases = PhaseTimes::from_nanos([1; mp_trace::PHASE_COUNT]);
        assert_eq!(a.counters(), b.counters());
        // ...and a real counter difference must show up.
        a.revisits += 1;
        assert_ne!(a.counters(), b.counters());
    }

    #[test]
    fn display_mentions_phases_when_nonzero() {
        let mut nanos = [0u64; mp_trace::PHASE_COUNT];
        nanos[0] = 5_000_000;
        let s = ExplorationStats {
            states: 1,
            phases: PhaseTimes::from_nanos(nanos),
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("[phases:"), "{text}");
        assert!(text.contains("expansion=5ms"), "{text}");
    }

    #[test]
    fn display_mentions_store_when_recorded() {
        let mut s = ExplorationStats::new();
        s.record_store(
            "fingerprint",
            StoreStats {
                entries: 10,
                hits: 4,
                misses: 10,
                approx_bytes: 2048,
                ..Default::default()
            },
        );
        assert_eq!(s.store_hits, 4);
        assert_eq!(s.store_bytes, 2048);
        let text = s.to_string();
        assert!(text.contains("fingerprint store"));
        assert!(text.contains("4 hits"));
    }
}
