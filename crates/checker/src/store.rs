//! Visited-state storage for stateful search.
//!
//! The paper contrasts stateful search (the model checker "maintains a set
//! of visited states") against stateless search; the benefit of stateful
//! search "becomes significant with large state spaces" (Section V-B). The
//! store keys are the pair of global state and observer value, so history
//! observers remain sound under state merging.

use std::collections::HashSet;
use std::hash::Hash;

/// A set of visited states with insertion statistics.
#[derive(Clone, Debug)]
pub struct StateStore<K> {
    seen: HashSet<K>,
    hits: usize,
}

impl<K: Eq + Hash> Default for StateStore<K> {
    fn default() -> Self {
        StateStore {
            seen: HashSet::new(),
            hits: 0,
        }
    }
}

impl<K: Eq + Hash> StateStore<K> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        StateStore {
            seen: HashSet::with_capacity(capacity),
            hits: 0,
        }
    }

    /// Inserts a state; returns `true` if it was new.
    pub fn insert(&mut self, key: K) -> bool {
        let new = self.seen.insert(key);
        if !new {
            self.hits += 1;
        }
        new
    }

    /// Returns `true` if the state has been seen before (does not count as a
    /// hit).
    pub fn contains(&self, key: &K) -> bool {
        self.seen.contains(key)
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Returns `true` if nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Number of times an insertion found the state already present.
    pub fn hits(&self) -> usize {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut store = StateStore::new();
        assert!(store.is_empty());
        assert!(store.insert(1u32));
        assert!(store.insert(2));
        assert!(!store.insert(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits(), 1);
        assert!(store.contains(&2));
        assert!(!store.contains(&3));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut store = StateStore::with_capacity(100);
        assert!(store.insert("a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn contains_does_not_count_as_hit() {
        let mut store = StateStore::new();
        store.insert(5u8);
        assert!(store.contains(&5));
        assert_eq!(store.hits(), 0);
    }
}
