//! Fault budgets.

use std::fmt;

/// How many faults of each class the environment may inject in one run.
///
/// The budget is a *global* resource: it bounds the total number of faults
/// across all processes and channels, mirroring the `f`-of-`n` fault
/// assumptions of the protocols themselves ("at most `f` crashes"). Each
/// injected fault permanently consumes one unit, so every path of the
/// fault-augmented model performs at most `max_crashes + max_drops +
/// max_dups + max_corruptions` environment steps — exhausted budgets prune
/// the search, which is what keeps fault-augmented state spaces finite.
///
/// # Examples
///
/// ```
/// use mp_faults::FaultBudget;
///
/// let budget = FaultBudget::none().crashes(1).drops(2);
/// assert_eq!(budget.max_crashes, 1);
/// assert_eq!(budget.max_drops, 2);
/// assert!(!budget.is_zero());
/// assert_eq!(budget.to_string(), "crashes=1,drops=2");
/// assert!(FaultBudget::none().is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FaultBudget {
    /// Maximum number of crash-stop faults (processes that halt forever).
    pub max_crashes: u32,
    /// Maximum number of messages the environment may drop.
    pub max_drops: u32,
    /// Maximum number of messages the environment may duplicate.
    pub max_dups: u32,
    /// Maximum number of messages the environment may mutate (Byzantine
    /// corruption; requires a mutator, see `FaultInjector::mutator`).
    pub max_corruptions: u32,
}

impl FaultBudget {
    /// The empty budget: no faults at all. Injecting with this budget
    /// yields a model bisimilar to the base protocol.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the crash budget (builder style).
    pub fn crashes(mut self, n: u32) -> Self {
        self.max_crashes = n;
        self
    }

    /// Sets the message-loss budget (builder style).
    pub fn drops(mut self, n: u32) -> Self {
        self.max_drops = n;
        self
    }

    /// Sets the duplication budget (builder style).
    pub fn dups(mut self, n: u32) -> Self {
        self.max_dups = n;
        self
    }

    /// Sets the corruption budget (builder style).
    pub fn corruptions(mut self, n: u32) -> Self {
        self.max_corruptions = n;
        self
    }

    /// Returns `true` if no fault of any class is allowed.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Total number of faults the environment may inject.
    pub fn total(&self) -> u32 {
        self.max_crashes + self.max_drops + self.max_dups + self.max_corruptions
    }
}

impl fmt::Display for FaultBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut part = |f: &mut fmt::Formatter<'_>, label: &str, n: u32| -> fmt::Result {
            if n > 0 {
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                write!(f, "{label}={n}")?;
            }
            Ok(())
        };
        part(f, "crashes", self.max_crashes)?;
        part(f, "drops", self.max_drops)?;
        part(f, "dups", self.max_dups)?;
        part(f, "corruptions", self.max_corruptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_and_labels() {
        let b = FaultBudget::none().crashes(2).dups(1).corruptions(3);
        assert_eq!(b.max_crashes, 2);
        assert_eq!(b.max_drops, 0);
        assert_eq!(b.total(), 6);
        assert_eq!(b.to_string(), "crashes=2,dups=1,corruptions=3");
    }

    #[test]
    fn zero_budget_displays_as_none() {
        assert_eq!(FaultBudget::none().to_string(), "none");
        assert!(FaultBudget::none().is_zero());
        assert!(!FaultBudget::none().drops(1).is_zero());
    }
}
