//! The fault injector: wrapping a protocol into a fault-augmented model.

use std::collections::BTreeSet;
use std::sync::Arc;

use mp_model::{
    Envelope, InputSpec, Kind, LocalState, Message, ModelError, Outcome, ProcessId, ProtocolSpec,
    TransitionSpec,
};

use crate::{corruptions_used, crashes_used, drops_used, dups_used, FaultBudget, FaultLocal};

/// Name prefix of crash environment transitions (`FAULT_CRASH@p1`).
pub const CRASH_PREFIX: &str = "FAULT_CRASH@";
/// Budget class of crash transitions ([`Annotations::environment_class`](mp_model::Annotations)).
pub const CRASH_CLASS: Kind = "crash";
/// Budget class of message-loss transitions.
pub const DROP_CLASS: Kind = "drop";
/// Budget class of duplication transitions.
pub const DUP_CLASS: Kind = "dup";
/// Budget class of corruption transitions.
pub const CORRUPT_CLASS: Kind = "corrupt";
/// Name prefix of message-loss environment transitions (`FAULT_DROP_ACK@p0`).
pub const DROP_PREFIX: &str = "FAULT_DROP_";
/// Name prefix of duplication environment transitions (`FAULT_DUP_ACK@p0`).
pub const DUP_PREFIX: &str = "FAULT_DUP_";
/// Name prefix of corruption environment transitions
/// (`FAULT_CORRUPT_ACK_v0@p0`).
pub const CORRUPT_PREFIX: &str = "FAULT_CORRUPT_";

/// A pluggable Byzantine message mutation: given a pending envelope, returns
/// the corrupted payload candidates the environment may replace it with.
/// Returning an empty vector means the message is not corruptible. The
/// function must be deterministic — candidate `i` is bound to corruption
/// variant `i` of the generated environment transition, and counterexample
/// replay re-applies effects.
pub type Mutator<M> = Arc<dyn Fn(&Envelope<M>) -> Vec<M> + Send + Sync>;

/// Builds fault-augmented models from base protocols.
///
/// The injector wraps every base transition so that it operates on the
/// protocol part of [`FaultLocal`] and is disabled once its process crashed,
/// then appends **environment transitions** owned by the victim process:
///
/// * `FAULT_CRASH@pj` — crash-stop: sets the crashed flag, after which all
///   of `pj`'s protocol transitions are disabled (the paper's crash model:
///   a crashed process simply takes no further steps — here made explicit
///   and budgeted);
/// * `FAULT_DROP_K@pj` — consumes one pending message of kind `K` addressed
///   to `pj` without any protocol effect (message loss);
/// * `FAULT_DUP_K@pj` — consumes one pending message and reinjects two
///   copies under the original sender (duplication);
/// * `FAULT_CORRUPT_K_vI@pj` — consumes one pending message and reinjects
///   mutation `I` produced by the pluggable [`Mutator`] (Byzantine
///   corruption), again under the original sender so quorum counting is
///   unaffected.
///
/// All environment transitions are governed by a global [`FaultBudget`]
/// carried in the augmented local states and enforced through the model's
/// enable filter; an exhausted budget disables the whole class, pruning the
/// search. Fault classes with a zero budget generate **no transitions at
/// all**, so a [`FaultBudget::none`] injection is structurally identical to
/// the base model (same transition ids, names, annotations) and explores
/// exactly the same number of states, reduced or not.
///
/// # Examples
///
/// ```
/// use mp_faults::{FaultBudget, FaultInjector};
/// use mp_model::{Message, Outcome, ProcessId, ProtocolSpec, TransitionSpec};
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// struct Ping;
/// mp_model::codec!(struct Ping);
/// impl Message for Ping {
///     fn kind(&self) -> &'static str { "PING" }
/// }
///
/// let base: ProtocolSpec<u8, Ping> = ProtocolSpec::builder("ping")
///     .process("a", 0u8)
///     .process("b", 0u8)
///     .transition(
///         TransitionSpec::builder("SEND", ProcessId(0))
///             .internal()
///             .guard(|l, _| *l == 0)
///             .sends(&["PING"])
///             .effect(|_, _| Outcome::new(1).send(ProcessId(1), Ping))
///             .build(),
///     )
///     .transition(
///         TransitionSpec::builder("RECV", ProcessId(1))
///             .single_input("PING")
///             .effect(|_, _| Outcome::new(1))
///             .build(),
///     )
///     .build()
///     .unwrap();
///
/// let faulty = FaultInjector::new(FaultBudget::none().crashes(1).drops(1))
///     .inject(&base)
///     .unwrap();
/// // 2 wrapped protocol transitions + 2 crashes + 1 drop (only RECV
/// // consumes a kind, so only process b gets a drop transition).
/// assert_eq!(faulty.num_transitions(), 5);
/// ```
pub struct FaultInjector<M: Message> {
    budget: FaultBudget,
    targets: Option<BTreeSet<ProcessId>>,
    kinds: Option<Vec<Kind>>,
    mutator: Option<Mutator<M>>,
    max_variants: usize,
}

impl<M: Message> FaultInjector<M> {
    /// Creates an injector for the given budget. By default every process
    /// is a fault target, droppable/duplicable/corruptible kinds are
    /// inferred per process from the kinds its transitions consume, and at
    /// most one corruption variant per message is generated.
    pub fn new(budget: FaultBudget) -> Self {
        FaultInjector {
            budget,
            targets: None,
            kinds: None,
            mutator: None,
            max_variants: 1,
        }
    }

    /// Restricts fault injection to the given processes (builder style).
    pub fn targets<I: IntoIterator<Item = ProcessId>>(mut self, targets: I) -> Self {
        self.targets = Some(targets.into_iter().collect());
        self
    }

    /// Restricts message faults to the given kinds (builder style). The
    /// per-process inference still applies on top: a kind is only targeted
    /// at processes that consume it.
    pub fn kinds(mut self, kinds: &[Kind]) -> Self {
        self.kinds = Some(kinds.to_vec());
        self
    }

    /// Installs the Byzantine mutation function (builder style). Without a
    /// mutator, a corruption budget generates no transitions.
    pub fn mutator<F>(mut self, mutator: F) -> Self
    where
        F: Fn(&Envelope<M>) -> Vec<M> + Send + Sync + 'static,
    {
        self.mutator = Some(Arc::new(mutator));
        self
    }

    /// Bounds how many mutation candidates per message become corruption
    /// variants (builder style; default 1).
    pub fn max_variants(mut self, n: usize) -> Self {
        self.max_variants = n.max(1);
        self
    }

    /// Returns the budget this injector applies.
    pub fn budget(&self) -> FaultBudget {
        self.budget
    }

    /// Wraps `base` into the fault-augmented model.
    ///
    /// The wrapped protocol transitions keep their ids, names, inputs,
    /// sender restrictions and annotations; environment transitions are
    /// appended after them and marked with
    /// [`Annotations::is_environment`](mp_model::Annotations), which
    /// `mp-por` uses to keep SPOR/DPOR sound under injection.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the base protocol fails revalidation
    /// (possible only for specs hand-built outside `ProtocolBuilder`).
    pub fn inject<S: LocalState>(
        &self,
        base: &ProtocolSpec<S, M>,
    ) -> Result<ProtocolSpec<FaultLocal<S>, M>, ModelError> {
        let mut builder = ProtocolSpec::builder(format!("{}+faults", base.name()));
        let initial = base.initial_state();
        for p in base.processes() {
            builder = builder.process(
                base.process_name(p).to_string(),
                FaultLocal::healthy(initial.locals[p.index()].clone()),
            );
        }

        for (_, t) in base.transitions() {
            builder = builder.transition(wrap_protocol_transition(t));
        }

        for p in base.processes() {
            if let Some(targets) = &self.targets {
                if !targets.contains(&p) {
                    continue;
                }
            }
            if self.budget.max_crashes > 0 {
                builder = builder.transition(crash_transition(p));
            }
            for kind in self.kinds_consumed_by(base, p) {
                if self.budget.max_drops > 0 {
                    builder = builder.transition(drop_transition(p, kind));
                }
                if self.budget.max_dups > 0 {
                    builder = builder.transition(dup_transition(p, kind));
                }
                if self.budget.max_corruptions > 0 {
                    if let Some(mutator) = &self.mutator {
                        for variant in 0..self.max_variants {
                            builder = builder.transition(corrupt_transition(
                                p,
                                kind,
                                variant,
                                mutator.clone(),
                            ));
                        }
                    }
                }
            }
        }

        let budget = self.budget;
        Ok(builder.build()?.with_enable_filter(move |state, t| {
            if !t.annotations().is_environment {
                return true;
            }
            let name = t.name();
            if name.starts_with(CRASH_PREFIX) {
                crashes_used(state) < budget.max_crashes
            } else if name.starts_with(DROP_PREFIX) {
                drops_used(state) < budget.max_drops
            } else if name.starts_with(DUP_PREFIX) {
                dups_used(state) < budget.max_dups
            } else if name.starts_with(CORRUPT_PREFIX) {
                corruptions_used(state) < budget.max_corruptions
            } else {
                true
            }
        }))
    }

    /// The message kinds process `p` can consume, in deterministic order,
    /// intersected with the explicit kind list if one was given.
    fn kinds_consumed_by<S: LocalState>(
        &self,
        base: &ProtocolSpec<S, M>,
        p: ProcessId,
    ) -> Vec<Kind> {
        let consumed: BTreeSet<Kind> = base
            .transitions_of(p)
            .iter()
            .filter_map(|id| base.transition(*id).input_kind())
            .collect();
        consumed
            .into_iter()
            .filter(|k| match &self.kinds {
                Some(allowed) => allowed.contains(k),
                None => true,
            })
            .collect()
    }
}

/// Injects faults with the default injector configuration (all processes,
/// inferred kinds, no mutator).
pub fn inject<S: LocalState, M: Message>(
    base: &ProtocolSpec<S, M>,
    budget: FaultBudget,
) -> Result<ProtocolSpec<FaultLocal<S>, M>, ModelError> {
    FaultInjector::new(budget).inject(base)
}

/// Wraps one protocol transition: same name/input/senders/annotations, but
/// guard and effect operate on the protocol part of [`FaultLocal`] and the
/// transition is disabled once its process crashed.
fn wrap_protocol_transition<S: LocalState, M: Message>(
    t: &TransitionSpec<S, M>,
) -> TransitionSpec<FaultLocal<S>, M> {
    let mut b = TransitionSpec::builder(t.name().to_string(), t.process());
    b = match t.input() {
        InputSpec::Internal => b.internal(),
        InputSpec::Single { kind } => b.single_input(kind),
        InputSpec::Quorum { kind, quorum } => b.quorum_input(kind, *quorum),
    };
    if let Some(senders) = t.allowed_senders() {
        b = b.allowed_senders(senders.iter().copied());
    }
    let guard_base = t.clone();
    let effect_base = t.clone();
    let mut wrapped = b
        .guard(move |local: &FaultLocal<S>, msgs| {
            !local.crashed && guard_base.guard_holds(&local.inner, msgs)
        })
        .effect(move |local: &FaultLocal<S>, msgs| {
            let out = effect_base.apply(&local.inner, msgs);
            let mut next = local.clone();
            next.inner = out.next_local;
            Outcome {
                next_local: next,
                sends: out.sends,
                reinjects: out.reinjects,
            }
        })
        .build();
    *wrapped.annotations_mut() = t.annotations().clone();
    wrapped
}

fn crash_transition<S: LocalState, M: Message>(p: ProcessId) -> TransitionSpec<FaultLocal<S>, M> {
    TransitionSpec::builder(format!("{CRASH_PREFIX}{p}"), p)
        .internal()
        .guard(|local: &FaultLocal<S>, _| !local.crashed)
        .sends_nothing()
        .priority(-100)
        .environment_class(CRASH_CLASS)
        .effect(|local: &FaultLocal<S>, _| {
            let mut next = local.clone();
            next.crashed = true;
            Outcome::new(next)
        })
        .build()
}

fn drop_transition<S: LocalState, M: Message>(
    p: ProcessId,
    kind: Kind,
) -> TransitionSpec<FaultLocal<S>, M> {
    TransitionSpec::builder(format!("{DROP_PREFIX}{kind}@{p}"), p)
        .single_input(kind)
        .sends_nothing()
        .priority(-100)
        .environment_class(DROP_CLASS)
        .effect(|local: &FaultLocal<S>, _| {
            let mut next = local.clone();
            next.drops += 1;
            Outcome::new(next)
        })
        .build()
}

fn dup_transition<S: LocalState, M: Message>(
    p: ProcessId,
    kind: Kind,
) -> TransitionSpec<FaultLocal<S>, M> {
    TransitionSpec::builder(format!("{DUP_PREFIX}{kind}@{p}"), p)
        .single_input(kind)
        .sends(&[kind])
        .sends_to([p])
        .priority(-100)
        .environment_class(DUP_CLASS)
        .effect(|local: &FaultLocal<S>, msgs: &[Envelope<M>]| {
            let env = &msgs[0];
            let mut next = local.clone();
            next.dups += 1;
            Outcome::new(next)
                .reinject(env.sender, env.payload.clone())
                .reinject(env.sender, env.payload.clone())
        })
        .build()
}

fn corrupt_transition<S: LocalState, M: Message>(
    p: ProcessId,
    kind: Kind,
    variant: usize,
    mutator: Mutator<M>,
) -> TransitionSpec<FaultLocal<S>, M> {
    let guard_mutator = mutator.clone();
    TransitionSpec::builder(format!("{CORRUPT_PREFIX}{kind}_v{variant}@{p}"), p)
        .single_input(kind)
        // Mutations may change the message kind, so leave `messages_out`
        // unspecified (conservatively "any kind") but pin the recipient to
        // the victim process itself.
        .sends_to([p])
        .priority(-100)
        .environment_class(CORRUPT_CLASS)
        .guard(move |_: &FaultLocal<S>, msgs| guard_mutator(&msgs[0]).len() > variant)
        .effect(move |local: &FaultLocal<S>, msgs| {
            let env = &msgs[0];
            let mutated = mutator(env)[variant].clone();
            let mut next = local.clone();
            next.corruptions += 1;
            Outcome::new(next).reinject(env.sender, mutated)
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{enabled_instances, execute_enabled, StateGraph};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req(u8),
        Ack,
    }
    mp_model::codec!(enum Msg { 0 = Req(n), 1 = Ack });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req(_) => "REQ",
                Msg::Ack => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// p0 sends REQ to p1; p1 acks; p0 collects the ack.
    fn base() -> ProtocolSpec<u8, Msg> {
        ProtocolSpec::builder("req-ack")
            .process("client", 0u8)
            .process("server", 0u8)
            .transition(
                TransitionSpec::builder("REQUEST", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["REQ"])
                    .effect(|_, _| Outcome::new(1).send(p(1), Msg::Req(7)))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SERVE", p(1))
                    .single_input("REQ")
                    .reply()
                    .sends(&["ACK"])
                    .effect(|_, m: &[Envelope<Msg>]| Outcome::new(1).send(m[0].sender, Msg::Ack))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("COLLECT", p(0))
                    .single_input("ACK")
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn zero_budget_is_structurally_identical() {
        let spec = base();
        let faulty = inject(&spec, FaultBudget::none()).unwrap();
        assert_eq!(faulty.num_transitions(), spec.num_transitions());
        for (id, t) in spec.transitions() {
            assert_eq!(faulty.transition(id).name(), t.name());
        }
        let base_states = StateGraph::build(&spec, 10_000).unwrap().num_states();
        let faulty_states = StateGraph::build(&faulty, 10_000).unwrap().num_states();
        assert_eq!(base_states, faulty_states);
    }

    #[test]
    fn crash_disables_protocol_transitions() {
        let spec = base();
        let faulty = inject(&spec, FaultBudget::none().crashes(1)).unwrap();
        let s0 = faulty.initial_state();
        // Crash the client before it sends anything.
        let crash = enabled_instances(&faulty, &s0)
            .into_iter()
            .find(|i| {
                faulty
                    .transition(i.transition)
                    .name()
                    .starts_with(CRASH_PREFIX)
                    && i.process == p(0)
            })
            .expect("client crash enabled");
        let s1 = execute_enabled(&faulty, &s0, &crash);
        assert!(s1.local(p(0)).crashed);
        // REQUEST is now disabled; with the crash budget spent, the only
        // remaining option would be the server's crash — but the budget of
        // one is exhausted, so the system is dead.
        assert!(enabled_instances(&faulty, &s1).is_empty());
    }

    #[test]
    fn drop_consumes_without_effect_and_budget_prunes() {
        let spec = base();
        let faulty = inject(&spec, FaultBudget::none().drops(1)).unwrap();
        let mut state = faulty.initial_state();
        // REQUEST.
        let req = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| faulty.transition(i.transition).name() == "REQUEST")
            .unwrap();
        state = execute_enabled(&faulty, &state, &req);
        // Drop the REQ at the server.
        let drop = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| {
                faulty
                    .transition(i.transition)
                    .name()
                    .starts_with(DROP_PREFIX)
            })
            .expect("drop enabled while a REQ is pending");
        state = execute_enabled(&faulty, &state, &drop);
        assert_eq!(state.pending_messages(), 0);
        assert_eq!(state.local(p(1)).drops, 1);
        assert_eq!(
            state.local(p(1)).inner,
            0,
            "the protocol never saw the message"
        );
        // Budget exhausted: no further drops anywhere.
        assert!(enabled_instances(&faulty, &state).is_empty());
    }

    #[test]
    fn duplication_preserves_the_original_sender() {
        let spec = base();
        let faulty = inject(&spec, FaultBudget::none().dups(1)).unwrap();
        let mut state = faulty.initial_state();
        let req = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| faulty.transition(i.transition).name() == "REQUEST")
            .unwrap();
        state = execute_enabled(&faulty, &state, &req);
        let dup = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| {
                faulty
                    .transition(i.transition)
                    .name()
                    .starts_with(DUP_PREFIX)
            })
            .unwrap();
        state = execute_enabled(&faulty, &state, &dup);
        assert_eq!(state.pending_messages(), 2);
        let env = Envelope::new(p(0), Msg::Req(7));
        assert_eq!(
            state.channels.pending_count(p(1), &env),
            2,
            "both copies must still appear to come from the client"
        );
    }

    #[test]
    fn corruption_applies_the_mutator_variant() {
        let spec = base();
        let faulty = FaultInjector::new(FaultBudget::none().corruptions(1))
            .mutator(|env: &Envelope<Msg>| match &env.payload {
                Msg::Req(v) => vec![Msg::Req(v.wrapping_add(100))],
                Msg::Ack => Vec::new(),
            })
            .inject(&spec)
            .unwrap();
        let mut state = faulty.initial_state();
        let req = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| faulty.transition(i.transition).name() == "REQUEST")
            .unwrap();
        state = execute_enabled(&faulty, &state, &req);
        let corrupt = enabled_instances(&faulty, &state)
            .into_iter()
            .find(|i| {
                faulty
                    .transition(i.transition)
                    .name()
                    .starts_with(CORRUPT_PREFIX)
            })
            .expect("corrupt enabled: the mutator offers a candidate");
        state = execute_enabled(&faulty, &state, &corrupt);
        let env = Envelope::new(p(0), Msg::Req(107));
        assert_eq!(state.channels.pending_count(p(1), &env), 1);
        assert_eq!(state.local(p(1)).corruptions, 1);
    }

    #[test]
    fn uncorruptible_kinds_generate_disabled_variants() {
        // ACK is not corruptible (mutator returns no candidates): the
        // variant transition exists but never fires.
        let spec = base();
        let faulty = FaultInjector::new(FaultBudget::none().corruptions(2))
            .mutator(|env: &Envelope<Msg>| match &env.payload {
                Msg::Req(v) => vec![Msg::Req(v + 1)],
                Msg::Ack => Vec::new(),
            })
            .inject(&spec)
            .unwrap();
        let graph = StateGraph::build(&faulty, 100_000).unwrap();
        assert!(graph.num_states() > 0);
    }

    #[test]
    fn targets_restrict_fault_locations() {
        let spec = base();
        let faulty = FaultInjector::new(FaultBudget::none().crashes(1))
            .targets([p(1)])
            .inject(&spec)
            .unwrap();
        let names: Vec<&str> = faulty.transition_names();
        assert!(names.contains(&"FAULT_CRASH@p1"));
        assert!(!names
            .iter()
            .any(|n| n.ends_with("@p0") && n.starts_with("FAULT_")));
    }

    #[test]
    fn budgeted_state_space_grows_with_the_budget() {
        let spec = base();
        let zero = StateGraph::build(&inject(&spec, FaultBudget::none()).unwrap(), 100_000)
            .unwrap()
            .num_states();
        let one_drop = StateGraph::build(
            &inject(&spec, FaultBudget::none().drops(1)).unwrap(),
            100_000,
        )
        .unwrap()
        .num_states();
        let more = StateGraph::build(
            &inject(&spec, FaultBudget::none().crashes(1).drops(2).dups(1)).unwrap(),
            100_000,
        )
        .unwrap()
        .num_states();
        assert!(zero < one_drop, "{zero} vs {one_drop}");
        assert!(one_drop < more, "{one_drop} vs {more}");
    }
}
