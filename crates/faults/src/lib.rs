//! # mp-faults — generic fault injection for message-passing protocols
//!
//! The paper this repository reproduces is about model checking
//! **fault-tolerant** protocols, and its evaluation injects faults by
//! hand-editing each protocol (the "Faulty Paxos" learner, equivocating
//! multicast initiators). This crate makes fault injection *generic*: it
//! wraps any [`ProtocolSpec`](mp_model::ProtocolSpec) into a fault-augmented
//! model in which the **environment** may, subject to a [`FaultBudget`]:
//!
//! * **crash-stop** a process (its transitions are disabled forever),
//! * **drop** a pending message,
//! * **duplicate** a pending message (under the original sender), and
//! * **corrupt** a pending message with a pluggable Byzantine [`Mutator`].
//!
//! Faults are ordinary MP transitions owned by the victim process — an
//! environment transition of process `j` can consume and reinject messages
//! addressed to `j` — marked with the `is_environment` annotation. The
//! budget is carried in the augmented local states ([`FaultLocal`]) and
//! enforced globally through the model's enable filter, so exhausted
//! budgets prune the search and a zero budget reproduces the base model
//! exactly. `mp-por` treats environment transitions as mutually dependent,
//! which keeps SPOR and DPOR sound under injection.
//!
//! ```
//! use mp_checker::{Checker, Invariant};
//! use mp_faults::{inject, lift_invariant, FaultBudget};
//! use mp_model::{GlobalState, Message, Outcome, ProcessId, ProtocolSpec, TransitionSpec};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! struct Ping;
//! mp_model::codec!(struct Ping);
//! impl Message for Ping {
//!     fn kind(&self) -> &'static str { "PING" }
//! }
//!
//! let base: ProtocolSpec<u8, Ping> = ProtocolSpec::builder("ping")
//!     .process("a", 0u8)
//!     .process("b", 0u8)
//!     .transition(
//!         TransitionSpec::builder("SEND", ProcessId(0))
//!             .internal()
//!             .guard(|l, _| *l == 0)
//!             .sends(&["PING"])
//!             .effect(|_, _| Outcome::new(1).send(ProcessId(1), Ping))
//!             .build(),
//!     )
//!     .transition(
//!         TransitionSpec::builder("RECV", ProcessId(1))
//!             .single_input("PING")
//!             .effect(|_, _| Outcome::new(1))
//!             .build(),
//!     )
//!     .build()
//!     .unwrap();
//!
//! // "Does the receiver always eventually get the ping?" — not under loss:
//! // with one drop allowed there is a run where b consumed nothing but the
//! // system is done. (Stated as an invariant over a terminal flag here.)
//! let faulty = inject(&base, FaultBudget::none().drops(1)).unwrap();
//! let delivered = Invariant::new("sender-implies-receiver", |s: &GlobalState<u8, Ping>, _| {
//!     // Bogus "specification" for demonstration: b must have received
//!     // whenever a has sent and nothing is in flight.
//!     if s.locals[0] == 1 && s.locals[1] == 0 && s.pending_messages() == 0 {
//!         Err("message was lost".into())
//!     } else {
//!         Ok(())
//!     }
//! });
//! let report = Checker::new(&faulty, lift_invariant(delivered)).run();
//! assert!(report.verdict.is_violated(), "loss breaks delivery: {report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod budget;
mod inject;
mod lift;
mod local;

pub use budget::FaultBudget;
pub use inject::{
    inject, FaultInjector, Mutator, CORRUPT_CLASS, CORRUPT_PREFIX, CRASH_CLASS, CRASH_PREFIX,
    DROP_CLASS, DROP_PREFIX, DUP_CLASS, DUP_PREFIX,
};
pub use lift::{lift_invariant, lift_observed_invariant, lift_property, LiftedObserver};
pub use local::{corruptions_used, crashes_used, drops_used, dups_used, project_state, FaultLocal};
