//! Lifting base-model properties and observers to fault-augmented models.
//!
//! A fault-augmented state is the base state plus fault bookkeeping; the
//! properties of interest ("no two learners disagree") are stated over the
//! base state. The helpers here evaluate a base [`Invariant`] or
//! [`Property`] (and, for history properties, a base [`Observer`]) on the
//! projection that forgets the bookkeeping, so every existing property —
//! safety *and* liveness — works unchanged under fault injection.
//!
//! Liveness interacts with fault injection through **fairness**: the
//! injected environment transitions are [`Annotations::is_environment`]
//! (mp_model::Annotations), which the default
//! [`Fairness::WeakProtocol`](mp_checker::Fairness) policy of a lifted
//! liveness property exempts — an execution on which no fault happens is
//! fair, so a crash is never "unfairly required", while an execution that
//! spends its crash budget and then starves the protocol *is* a legitimate
//! counterexample (e.g. Paxos with a crashed majority).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mp_checker::{Invariant, NullObserver, Observer, Property, PropertyStatus};
use mp_model::{GlobalState, LocalState, Message, ProtocolSpec, TransitionInstance};

use crate::{project_state, FaultLocal};

/// Lifts an observer-free invariant to the fault-augmented state space by
/// evaluating it on the projected base state.
pub fn lift_invariant<S: LocalState, M: Message>(
    invariant: Invariant<S, M, NullObserver>,
) -> Invariant<FaultLocal<S>, M, NullObserver> {
    let name = invariant.name().to_string();
    Invariant::new(
        name,
        move |state: &GlobalState<FaultLocal<S>, M>, _| match invariant
            .evaluate(&project_state(state), &NullObserver)
        {
            PropertyStatus::Holds => Ok(()),
            PropertyStatus::Violated(reason) => Err(reason),
        },
    )
}

/// Lifts any observer-free [`Property`] — safety, termination or leads-to —
/// to the fault-augmented state space by evaluating its predicates on the
/// projected base state. The property class, name and fairness policy are
/// preserved; for liveness this is what lets the same property answer
/// "does Paxos still terminate?" under any [`FaultBudget`](crate::FaultBudget).
pub fn lift_property<S: LocalState, M: Message>(
    property: Property<S, M, NullObserver>,
) -> Property<FaultLocal<S>, M, NullObserver> {
    property.on_projected_state(project_state)
}

/// A base observer running inside a fault-augmented exploration.
///
/// Environment (fault) steps are invisible to the wrapped observer — they
/// are the environment acting, not the protocol — and protocol steps are
/// forwarded with pre-/post-states projected to the base state space. The
/// wrapped base spec is carried along because [`Observer::update`] receives
/// the spec of the *running* model, whose type is the fault-augmented one.
///
/// Equality and hashing (what makes the observer part of the stored state)
/// are delegated to the inner observer; the spec handle is configuration,
/// not history.
pub struct LiftedObserver<S: LocalState, M: Message, O> {
    base_spec: Arc<ProtocolSpec<S, M>>,
    /// The wrapped base observer.
    pub inner: O,
}

impl<S: LocalState, M: Message, O> LiftedObserver<S, M, O> {
    /// Wraps `inner` for a run of the fault-augmented version of
    /// `base_spec`.
    pub fn new(base_spec: ProtocolSpec<S, M>, inner: O) -> Self {
        LiftedObserver {
            base_spec: Arc::new(base_spec),
            inner,
        }
    }
}

impl<S: LocalState, M: Message, O: Clone> Clone for LiftedObserver<S, M, O> {
    fn clone(&self) -> Self {
        LiftedObserver {
            base_spec: self.base_spec.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<S: LocalState, M: Message, O: PartialEq> PartialEq for LiftedObserver<S, M, O> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<S: LocalState, M: Message, O: Eq> Eq for LiftedObserver<S, M, O> {}

impl<S: LocalState, M: Message, O: PartialEq + PartialOrd> PartialOrd for LiftedObserver<S, M, O> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<S: LocalState, M: Message, O: Eq + Ord> Ord for LiftedObserver<S, M, O> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

// Symmetry reduction canonicalizes the whole stored pair, observer
// included: the wrapped base observer is rewritten, the spec handle is
// configuration and stays.
impl<S, M, O> mp_model::Permutable for LiftedObserver<S, M, O>
where
    S: LocalState,
    M: Message,
    O: mp_model::Permutable,
{
    fn permute(&self, perm: &mp_model::Permutation) -> Self {
        LiftedObserver {
            base_spec: self.base_spec.clone(),
            inner: self.inner.permute(perm),
        }
    }
}

impl<S: LocalState, M: Message, O: Hash> Hash for LiftedObserver<S, M, O> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

// Only the wrapped observer's history is serialized; the base-spec handle
// is configuration and is re-supplied by the decode template (see
// `Observer::decode_like` — this observer is why decoding is
// template-based).
impl<S: LocalState, M: Message, O: mp_model::Encode> mp_model::Encode for LiftedObserver<S, M, O> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
    }
}

impl<S: LocalState, M: Message, O: fmt::Debug> fmt::Debug for LiftedObserver<S, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("LiftedObserver").field(&self.inner).finish()
    }
}

impl<S, M, O> Observer<FaultLocal<S>, M> for LiftedObserver<S, M, O>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    fn update(
        &self,
        spec: &ProtocolSpec<FaultLocal<S>, M>,
        pre: &GlobalState<FaultLocal<S>, M>,
        instance: &TransitionInstance<M>,
        post: &GlobalState<FaultLocal<S>, M>,
    ) -> Self {
        if spec
            .transition(instance.transition)
            .annotations()
            .is_environment
        {
            // The environment acted; the protocol history is unchanged.
            return self.clone();
        }
        // Wrapped protocol transitions keep the base ids and names, so the
        // instance is meaningful to the base observer as-is.
        let inner = self.inner.update(
            &self.base_spec,
            &project_state(pre),
            instance,
            &project_state(post),
        );
        LiftedObserver {
            base_spec: self.base_spec.clone(),
            inner,
        }
    }

    fn decode_like(&self, input: &mut &[u8]) -> Result<Self, mp_model::DecodeError> {
        Ok(LiftedObserver {
            base_spec: self.base_spec.clone(),
            inner: self.inner.decode_like(input)?,
        })
    }
}

/// Lifts an invariant that reads a history observer: the lifted invariant
/// evaluates the base invariant on the projected state and the inner
/// observer of the [`LiftedObserver`] the checker folds along.
pub fn lift_observed_invariant<S, M, O>(
    invariant: Invariant<S, M, O>,
) -> Invariant<FaultLocal<S>, M, LiftedObserver<S, M, O>>
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let name = invariant.name().to_string();
    Invariant::new(
        name,
        move |state: &GlobalState<FaultLocal<S>, M>, observer: &LiftedObserver<S, M, O>| {
            match invariant.evaluate(&project_state(state), &observer.inner) {
                PropertyStatus::Holds => Ok(()),
                PropertyStatus::Violated(reason) => Err(reason),
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{inject, FaultBudget};
    use mp_checker::{Checker, TransitionCountObserver};
    use mp_model::{Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tick;
    mp_model::codec!(struct Tick);
    impl Message for Tick {
        fn kind(&self) -> &'static str {
            "TICK"
        }
    }

    fn counter() -> ProtocolSpec<u8, Tick> {
        ProtocolSpec::builder("counter")
            .process("c", 0u8)
            .transition(
                TransitionSpec::builder("inc", ProcessId(0))
                    .internal()
                    .guard(|l, _| *l < 3)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn lifted_invariant_sees_the_projected_state() {
        let spec = counter();
        let faulty = inject(&spec, FaultBudget::none().crashes(1)).unwrap();
        let below = Invariant::new("below-3", |s: &GlobalState<u8, Tick>, _| {
            if s.locals[0] <= 3 {
                Ok(())
            } else {
                Err("overflow".into())
            }
        });
        let report = Checker::new(&faulty, lift_invariant(below)).run();
        assert!(report.verdict.is_verified(), "{report}");

        let never_2 = Invariant::new("never-2", |s: &GlobalState<u8, Tick>, _| {
            if s.locals[0] == 2 {
                Err("reached 2".into())
            } else {
                Ok(())
            }
        });
        let report = Checker::new(&faulty, lift_invariant(never_2)).run();
        assert!(report.verdict.is_violated(), "{report}");
    }

    #[test]
    fn lifted_liveness_property_sees_the_projected_state() {
        use mp_checker::Property;
        let spec = counter();
        // Termination on the base model: the counter always reaches 3.
        let terminates =
            Property::termination("reaches-3", |s: &GlobalState<u8, Tick>, _| s.locals[0] == 3);
        let base = Checker::new(&spec, terminates.clone()).run();
        assert!(base.verdict.is_verified(), "{base}");

        // Under a crash budget the environment may stop the counter early;
        // the crash is fairness-exempt, so an execution without the crash is
        // fair — but the crashed execution quiesces before the goal, a
        // legitimate fair counterexample.
        let faulty = inject(&spec, FaultBudget::none().crashes(1)).unwrap();
        let report = Checker::new(&faulty, lift_property(terminates.clone())).run();
        let cx = report
            .verdict
            .counterexample()
            .expect("crash blocks the goal");
        assert!(cx.is_lasso);
        assert!(
            cx.steps
                .iter()
                .any(|s| s.transition.contains("FAULT_CRASH")),
            "the lasso stem must show the crash: {cx}"
        );

        // Zero budget: structurally the seed, termination verified again.
        let zero = inject(&spec, FaultBudget::none()).unwrap();
        let report = Checker::new(&zero, lift_property(terminates)).run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn lifted_observer_ignores_environment_steps() {
        let spec = counter();
        let faulty = inject(&spec, FaultBudget::none().crashes(1)).unwrap();
        // Count protocol steps through the lifted observer; crashing must
        // not add counts. The invariant allows at most 3 increments, which
        // holds on every path, so the run verifies and has explored crash
        // interleavings (more states than the base model's 4).
        let observer = LiftedObserver::new(spec.clone(), TransitionCountObserver::new());
        let at_most_3 = Invariant::new(
            "at-most-3-incs",
            |_: &GlobalState<u8, Tick>, o: &TransitionCountObserver| {
                if o.count(0) <= 3 {
                    Ok(())
                } else {
                    Err("too many increments observed".into())
                }
            },
        );
        let report =
            Checker::with_observer(&faulty, lift_observed_invariant(at_most_3), observer).run();
        assert!(report.verdict.is_verified(), "{report}");
        assert!(report.stats.states > 4, "crash interleavings must exist");
    }
}
