//! The fault-augmented local state.

use std::fmt;

use mp_model::{GlobalState, LocalState, Message, Permutable, Permutation};

/// The local state of one process in a fault-augmented model: the protocol
/// state plus the environment's per-process fault bookkeeping.
///
/// The counters record how many faults the environment has injected *at
/// this process* so far; the global budget is the sum over all processes,
/// enforced by the enable filter the injector installs (guards only see
/// the local state, so a per-process ledger summed globally is the only way
/// to carry a global budget inside ordinary message-passing semantics).
/// Because the counters are part of the stored state, two paths that spent
/// the budget differently are distinguished — exactly what makes exhausted
/// budgets prune the search.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FaultLocal<S> {
    /// The wrapped protocol-level local state.
    pub inner: S,
    /// `true` once the process has crash-stopped; all its protocol
    /// transitions are disabled from then on.
    pub crashed: bool,
    /// Messages dropped from this process's incoming channels.
    pub drops: u32,
    /// Messages duplicated in this process's incoming channels.
    pub dups: u32,
    /// Messages mutated in this process's incoming channels.
    pub corruptions: u32,
}

impl<S> FaultLocal<S> {
    /// Wraps a protocol local state with a clean fault record.
    pub fn healthy(inner: S) -> Self {
        FaultLocal {
            inner,
            crashed: false,
            drops: 0,
            dups: 0,
            corruptions: 0,
        }
    }

    /// Total number of message faults injected at this process.
    pub fn message_faults(&self) -> u32 {
        self.drops + self.dups + self.corruptions
    }
}

/// Fault bookkeeping permutes *with* the process it targets: when symmetry
/// reduction (`mp-symmetry`) maps process `i` to `π(i)`, the whole
/// [`FaultLocal`] record — crashed flag and per-process fault counters —
/// moves to index `π(i)` as part of
/// [`GlobalState::permute`](mp_model::GlobalState::permute), so "acceptor 0
/// crashed" and "acceptor 1 crashed" land in the same orbit. This is where
/// orbit collapse pays off: a crash budget of `k` over `r` interchangeable
/// replicas explores one representative per crash *set* instead of one per
/// crash *sequence*. Only the wrapped protocol state needs rewriting (it may
/// embed process ids); the counters are plain data.
impl<S: Permutable> Permutable for FaultLocal<S> {
    fn permute(&self, perm: &Permutation) -> Self {
        FaultLocal {
            inner: self.inner.permute(perm),
            crashed: self.crashed,
            drops: self.drops,
            dups: self.dups,
            corruptions: self.corruptions,
        }
    }
}

// Fault-augmented states travel through the disk-backed BFS frontier like
// any other: the wrapped protocol state followed by the bookkeeping.
impl<S: mp_model::Encode> mp_model::Encode for FaultLocal<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
        self.crashed.encode(out);
        self.drops.encode(out);
        self.dups.encode(out);
        self.corruptions.encode(out);
    }
}

impl<S: mp_model::Decode> mp_model::Decode for FaultLocal<S> {
    fn decode(input: &mut &[u8]) -> Result<Self, mp_model::DecodeError> {
        Ok(FaultLocal {
            inner: S::decode(input)?,
            crashed: mp_model::Decode::decode(input)?,
            drops: mp_model::Decode::decode(input)?,
            dups: mp_model::Decode::decode(input)?,
            corruptions: mp_model::Decode::decode(input)?,
        })
    }
}

impl<S: fmt::Display> fmt::Display for FaultLocal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.crashed {
            write!(f, "✝ ")?;
        }
        write!(f, "{}", self.inner)
    }
}

/// Number of processes that have crash-stopped in `state`.
pub fn crashes_used<S: LocalState, M: Message>(state: &GlobalState<FaultLocal<S>, M>) -> u32 {
    state.locals.iter().filter(|l| l.crashed).count() as u32
}

/// Total messages dropped in `state` (summed over all processes).
pub fn drops_used<S: LocalState, M: Message>(state: &GlobalState<FaultLocal<S>, M>) -> u32 {
    state.locals.iter().map(|l| l.drops).sum()
}

/// Total messages duplicated in `state`.
pub fn dups_used<S: LocalState, M: Message>(state: &GlobalState<FaultLocal<S>, M>) -> u32 {
    state.locals.iter().map(|l| l.dups).sum()
}

/// Total messages mutated in `state`.
pub fn corruptions_used<S: LocalState, M: Message>(state: &GlobalState<FaultLocal<S>, M>) -> u32 {
    state.locals.iter().map(|l| l.corruptions).sum()
}

/// Projects a fault-augmented global state back onto the base protocol's
/// state space by forgetting the fault bookkeeping. Channels carry the same
/// message type in both models, so the projection is a plain copy.
pub fn project_state<S: LocalState, M: Message>(
    state: &GlobalState<FaultLocal<S>, M>,
) -> GlobalState<S, M> {
    GlobalState {
        locals: state.locals.iter().map(|l| l.inner.clone()).collect(),
        channels: state.channels.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::ProcessId;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Msg;
    mp_model::codec!(struct Msg);
    impl Message for Msg {
        fn kind(&self) -> &'static str {
            "MSG"
        }
    }

    #[test]
    fn healthy_local_has_no_faults() {
        let l = FaultLocal::healthy(7u8);
        assert_eq!(l.inner, 7);
        assert!(!l.crashed);
        assert_eq!(l.message_faults(), 0);
    }

    #[test]
    fn usage_sums_over_processes() {
        let mut state: GlobalState<FaultLocal<u8>, Msg> =
            GlobalState::new(vec![FaultLocal::healthy(0), FaultLocal::healthy(1)]);
        state.locals[0].crashed = true;
        state.locals[0].drops = 2;
        state.locals[1].dups = 1;
        state.locals[1].corruptions = 3;
        assert_eq!(crashes_used(&state), 1);
        assert_eq!(drops_used(&state), 2);
        assert_eq!(dups_used(&state), 1);
        assert_eq!(corruptions_used(&state), 3);
    }

    #[test]
    fn projection_forgets_bookkeeping_but_keeps_channels() {
        let mut state: GlobalState<FaultLocal<u8>, Msg> =
            GlobalState::new(vec![FaultLocal::healthy(4), FaultLocal::healthy(5)]);
        state.locals[1].crashed = true;
        state.channels.send(ProcessId(0), ProcessId(1), Msg);
        let projected = project_state(&state);
        assert_eq!(projected.locals, vec![4, 5]);
        assert_eq!(projected.pending_messages(), 1);
    }
}
