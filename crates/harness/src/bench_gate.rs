//! The CI bench-regression gate.
//!
//! The harness binaries write their results as flat JSON arrays
//! (`BENCH_fault_sweep.json`, `BENCH_quorum_scaling.json`, ...), and the
//! repository commits a baseline snapshot of each. This module compares a
//! freshly generated file against its committed baseline and classifies
//! every difference:
//!
//! * **errors** (fail the job): a verdict/liveness *class* change on a
//!   matched row, a state-count regression beyond the tolerance (default
//!   10%), a thread-scaling `speedup` drop beyond the tolerance, a
//!   `completed: true` baseline row that no longer completes, or a
//!   baseline row that disappeared entirely;
//! * **warnings** (annotate, don't fail): wall-time and store-byte noise,
//!   and rows that are new in the fresh file (schema growth is deliberate).
//!
//! The parser below handles exactly the JSON the harness emits — flat
//! arrays of flat objects with string / number / boolean values — and
//! rejects anything else loudly rather than guessing (no external JSON
//! dependency in this offline workspace).

use std::collections::BTreeMap;
use std::fmt;

use mp_trace::analyze::{diff as trace_diff, RunSummary};
use mp_trace::Phase;

use crate::fault_sweep::verdict_class;

/// A scalar JSON value of a bench row.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string field (labels and verdicts).
    Str(String),
    /// A numeric field (counts, times, ratios).
    Num(f64),
    /// A boolean field (`completed`).
    Bool(bool),
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Str(s) => write!(f, "{s}"),
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One bench row: field name to scalar value, in insertion-stable order.
pub type Row = BTreeMap<String, JsonValue>;

/// Parses a flat JSON array of flat objects (the `BENCH_*.json` format).
///
/// # Errors
///
/// Returns a description of the first structural problem; nested arrays or
/// objects are rejected.
pub fn parse_rows(input: &str) -> Result<Vec<Row>, String> {
    let mut chars = input.char_indices().peekable();
    let mut rows = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }
    fn expect(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        want: char,
    ) -> Result<(), String> {
        skip_ws(chars);
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(format!("expected `{want}` at byte {at}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }
    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        expect(chars, '"')?;
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((at, other)) => {
                        return Err(format!("unsupported escape `\\{other}` at byte {at}"))
                    }
                    None => return Err("unterminated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    expect(&mut chars, '[')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, ']'))) {
        return Ok(rows);
    }
    loop {
        expect(&mut chars, '{')?;
        let mut row = Row::new();
        skip_ws(&mut chars);
        if !matches!(chars.peek(), Some((_, '}'))) {
            loop {
                let key = parse_string(&mut chars)?;
                expect(&mut chars, ':')?;
                skip_ws(&mut chars);
                let value = match chars.peek() {
                    Some((_, '"')) => JsonValue::Str(parse_string(&mut chars)?),
                    Some((_, 't')) | Some((_, 'f')) => {
                        let mut word = String::new();
                        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic()) {
                            word.push(chars.next().expect("peeked").1);
                        }
                        match word.as_str() {
                            "true" => JsonValue::Bool(true),
                            "false" => JsonValue::Bool(false),
                            other => return Err(format!("unsupported literal `{other}`")),
                        }
                    }
                    Some(&(at, c)) if c == '-' || c.is_ascii_digit() => {
                        let mut num = String::new();
                        while matches!(
                            chars.peek(),
                            Some((_, c)) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        ) {
                            num.push(chars.next().expect("peeked").1);
                        }
                        JsonValue::Num(
                            num.parse::<f64>()
                                .map_err(|e| format!("bad number `{num}` at byte {at}: {e}"))?,
                        )
                    }
                    Some(&(at, c)) => {
                        return Err(format!(
                            "unsupported value starting with `{c}` at byte {at}"
                        ))
                    }
                    None => return Err("unexpected end of input in object".to_string()),
                };
                row.insert(key, value);
                skip_ws(&mut chars);
                match chars.next() {
                    Some((_, ',')) => skip_ws(&mut chars),
                    Some((_, '}')) => break,
                    other => {
                        return Err(format!("expected `,` or `}}` in object, found {other:?}"))
                    }
                }
            }
        } else {
            chars.next();
        }
        rows.push(row);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, ']')) => return Ok(rows),
            other => return Err(format!("expected `,` or `]` after object, found {other:?}")),
        }
    }
}

/// Field names whose string values are verdicts (compared by class, and
/// excluded from the row key).
const VERDICT_FIELDS: [&str; 4] = ["verdict", "liveness", "sym_verdict", "sym_liveness"];

/// Numeric fields gated with the hard tolerance (regressions fail the
/// job). State and transition counts are deterministic for the stateful
/// sweeps that feed the baselines, so a blow-up in either is a real
/// regression, not noise.
const GATED_COUNTS: [&str; 3] = ["states", "sym_states", "transitions"];

/// Numeric fields gated in the *downward* direction: a drop beyond the
/// tolerance fails the job, an increase is pure good news. Today this is
/// the thread-scaling `speedup` column of `BENCH_parallel_scaling.json`:
/// a 4-thread run losing scaling efficiency relative to the committed
/// baseline is a pool regression even when the absolute wall times sit
/// inside the noise band (both sides of the comparison ran on the same
/// class of machine, so the *ratio* is comparable where the times are
/// not).
const GATED_RATIOS: [&str; 1] = ["speedup"];

/// Picks the suffix family of per-phase wall-clock fields the share
/// comparison judges: `_us` when both rows carry microsecond fields (full
/// resolution — smoke-scale phases round to zero in ms), falling back to
/// `_ms` against older baselines. One family per row pair, never mixed, so
/// no phase is counted twice. Individually phase fields are as noisy as
/// `time_ms`, so the generic numeric rules skip them; instead the gate
/// compares each phase's *share* of the total traced time, which is stable
/// run to run — a phase suddenly doubling its fraction flags an algorithmic
/// shift even when absolute times sit inside the noise band.
fn phase_family(base: &Row, fresh: &Row) -> &'static str {
    let has_us = |row: &Row| {
        row.iter()
            .any(|(k, _)| k.starts_with("phase_") && k.ends_with("_us"))
    };
    if has_us(base) && has_us(fresh) {
        "_us"
    } else {
        "_ms"
    }
}

/// Absolute share-of-traced-time drift (in fractional points) beyond which
/// a phase field warns: 0.20 = a phase moved by more than 20 percentage
/// points of the traced total.
pub const PHASE_SHARE_DRIFT: f64 = 0.20;

/// Trace-level phase-drift check (behind `bench_gate --trace-baseline` /
/// `--trace-fresh`): pairs the runs of two analyzed NDJSON traces by
/// `protocol · strategy · property` identity and returns one warning per
/// phase whose share of traced time moved by more than
/// [`PHASE_SHARE_DRIFT`]. Traces see every phase at full µs resolution and
/// per run rather than per aggregated bench row, so this catches drifts the
/// row-level gate smooths over; like the row-level share rule it only ever
/// warns.
pub fn trace_phase_drift(
    label: &str,
    baseline: &[RunSummary],
    fresh: &[RunSummary],
) -> Vec<String> {
    let identity = |r: &RunSummary| format!("{} · {} · {}", r.protocol, r.strategy, r.property);
    let mut warnings = Vec::new();
    let mut used = vec![false; fresh.len()];
    for base_run in baseline {
        let key = identity(base_run);
        let Some((i, fresh_run)) = fresh
            .iter()
            .enumerate()
            .find(|(i, f)| !used[*i] && identity(f) == key)
        else {
            warnings.push(format!(
                "{label}: trace run has no fresh counterpart: {key}"
            ));
            continue;
        };
        used[i] = true;
        let d = trace_diff(base_run, fresh_run);
        for (p, phase) in Phase::ALL.iter().enumerate() {
            if d.phase_share_delta[p].abs() > PHASE_SHARE_DRIFT {
                warnings.push(format!(
                    "{label}: {} share of traced time drifted on {key}: {:.0}% -> {:.0}%",
                    phase.name(),
                    base_run.phase_share(*phase) * 100.0,
                    fresh_run.phase_share(*phase) * 100.0
                ));
            }
        }
    }
    warnings
}

/// Numeric fields that only warn (wall-time and memory noise). Frontier
/// bytes are hardware-independent in principle but track encoded-state
/// sizes, which legitimately change when protocol state types grow — drift
/// annotates, verdict/state regressions still fail through the gated
/// fields.
const NOISY_FIELDS: [&str; 6] = [
    "time_ms",
    "sym_time_ms",
    "store_bytes",
    "frontier_bytes",
    "sym_frontier_bytes",
    "frontier_ratio",
];

/// The identity of a row: every non-verdict string field, in field order.
pub fn row_key(row: &Row) -> String {
    row.iter()
        .filter_map(|(k, v)| match v {
            JsonValue::Str(s) if !VERDICT_FIELDS.contains(&k.as_str()) => Some(format!("{k}={s}")),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join(" / ")
}

/// Outcome of a gate comparison.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Job-failing findings.
    pub errors: Vec<String>,
    /// Annotation-only findings.
    pub warnings: Vec<String>,
}

impl GateReport {
    /// `true` when nothing fails the job.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Compares a fresh bench file against its baseline. `tolerance` is the
/// allowed relative state-count increase (0.10 = 10%); wall-time and memory
/// fields only ever warn. Rows are matched by [`row_key`]; duplicate keys
/// are matched in order of appearance.
pub fn compare(label: &str, baseline: &[Row], fresh: &[Row], tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let mut fresh_by_key: BTreeMap<String, Vec<&Row>> = BTreeMap::new();
    for row in fresh {
        fresh_by_key.entry(row_key(row)).or_default().push(row);
    }
    let mut used: BTreeMap<String, usize> = BTreeMap::new();

    for base_row in baseline {
        let key = row_key(base_row);
        let cursor = used.entry(key.clone()).or_insert(0);
        let Some(fresh_row) = fresh_by_key.get(&key).and_then(|rows| rows.get(*cursor)) else {
            report
                .errors
                .push(format!("{label}: baseline row vanished: {key}"));
            continue;
        };
        *cursor += 1;

        for (field, base_value) in base_row {
            let Some(fresh_value) = fresh_row.get(field) else {
                report
                    .errors
                    .push(format!("{label}: field `{field}` vanished from {key}"));
                continue;
            };
            match (base_value, fresh_value) {
                (JsonValue::Str(b), JsonValue::Str(f))
                    if VERDICT_FIELDS.contains(&field.as_str())
                        && verdict_class(b) != verdict_class(f) =>
                {
                    report.errors.push(format!(
                        "{label}: {field} changed class on {key}: `{b}` -> `{f}`"
                    ));
                }
                (JsonValue::Num(b), JsonValue::Num(f))
                    if GATED_COUNTS.contains(&field.as_str()) && *f > *b * (1.0 + tolerance) =>
                {
                    report.errors.push(format!(
                        "{label}: {field} regressed beyond {:.0}% on {key}: {b} -> {f}",
                        tolerance * 100.0
                    ));
                }
                // A beyond-tolerance *improvement* is good news but leaves a
                // stale ceiling: later regressions up to the old baseline
                // would pass unnoticed. Warn so the baseline gets refreshed.
                (JsonValue::Num(b), JsonValue::Num(f))
                    if GATED_COUNTS.contains(&field.as_str()) && *f < *b * (1.0 - tolerance) =>
                {
                    report.warnings.push(format!(
                        "{label}: {field} improved beyond {:.0}% on {key}: {b} -> {f} — refresh \
                         the committed baseline to re-tighten the gate",
                        tolerance * 100.0
                    ));
                }
                (JsonValue::Num(b), JsonValue::Num(f))
                    if GATED_RATIOS.contains(&field.as_str()) && *f < *b * (1.0 - tolerance) =>
                {
                    report.errors.push(format!(
                        "{label}: {field} dropped beyond {:.0}% on {key}: {b} -> {f}",
                        tolerance * 100.0
                    ));
                }
                // A beyond-tolerance ratio improvement mirrors the count
                // rule above: passes, but the stale baseline should be
                // refreshed so the gate re-tightens.
                (JsonValue::Num(b), JsonValue::Num(f))
                    if GATED_RATIOS.contains(&field.as_str()) && *f > *b * (1.0 + tolerance) =>
                {
                    report.warnings.push(format!(
                        "{label}: {field} improved beyond {:.0}% on {key}: {b} -> {f} — refresh \
                         the committed baseline to re-tighten the gate",
                        tolerance * 100.0
                    ));
                }
                // Wall-time noise: annotate large swings, never fail.
                (JsonValue::Num(b), JsonValue::Num(f))
                    if NOISY_FIELDS.contains(&field.as_str()) && *f > (*b + 1.0) * 2.0 =>
                {
                    report
                        .warnings
                        .push(format!("{label}: {field} drifted on {key}: {b} -> {f}"));
                }
                (JsonValue::Bool(true), JsonValue::Bool(false)) if field == "completed" => {
                    report.errors.push(format!(
                        "{label}: {key} no longer completes within its budget"
                    ));
                }
                _ => {}
            }
        }

        // Phase share-of-traced-time drift (warning only). Judged only when
        // both sides actually traced — untraced baselines (all-zero phase
        // fields, the default) stay inert, per the acceptance contract that
        // disabled tracing changes nothing in the gate. Shares are computed
        // within one suffix family (µs preferred) so nothing counts twice.
        let family = phase_family(base_row, fresh_row);
        let in_family = |k: &str| k.starts_with("phase_") && k.ends_with(family);
        let phase_total = |row: &Row| -> f64 {
            row.iter()
                .filter(|(k, _)| in_family(k))
                .filter_map(|(_, v)| match v {
                    JsonValue::Num(n) => Some(*n),
                    _ => None,
                })
                .sum()
        };
        let base_total = phase_total(base_row);
        let fresh_total = phase_total(fresh_row);
        if base_total > 0.0 && fresh_total > 0.0 {
            for (field, base_value) in base_row {
                let (JsonValue::Num(b), Some(JsonValue::Num(f))) =
                    (base_value, fresh_row.get(field))
                else {
                    continue;
                };
                if !in_family(field) {
                    continue;
                }
                let base_share = b / base_total;
                let fresh_share = f / fresh_total;
                if (fresh_share - base_share).abs() > PHASE_SHARE_DRIFT {
                    report.warnings.push(format!(
                        "{label}: {field} share of traced time drifted on {key}: \
                         {:.0}% -> {:.0}%",
                        base_share * 100.0,
                        fresh_share * 100.0
                    ));
                }
            }
        }
    }

    // Fresh rows with keys the baseline never had: fine (schema growth),
    // but surfaced so the baseline gets refreshed consciously.
    for (key, rows) in &fresh_by_key {
        let consumed = used.get(key).copied().unwrap_or(0);
        if rows.len() > consumed {
            report.warnings.push(format!(
                "{label}: {} new row(s) not in the baseline: {key}",
                rows.len() - consumed
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"protocol":"Paxos (1,2,1)","budget":"none","strategy":"SPOR","backend":"exact","verdict":"verified","liveness":"verified","states":10,"transitions":11,"store_bytes":958,"time_ms":0,"sym_verdict":"verified","sym_liveness":"verified","sym_states":10,"sym_time_ms":0,"state_ratio":1.000},
  {"protocol":"Paxos (1,2,1)","budget":"crashes=1","strategy":"SPOR","backend":"exact","verdict":"verified","liveness":"fair lasso (7 stem + 0 cycle steps)","states":50,"transitions":84,"store_bytes":3688,"time_ms":2,"sym_verdict":"verified","sym_liveness":"fair lasso (7 stem + 0 cycle steps)","sym_states":30,"sym_time_ms":1,"state_ratio":1.667}
]"#;

    #[test]
    fn parses_the_bench_format() {
        let rows = parse_rows(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("protocol"),
            Some(&JsonValue::Str("Paxos (1,2,1)".to_string()))
        );
        assert_eq!(rows[1].get("states"), Some(&JsonValue::Num(50.0)));
        assert_eq!(rows[1].get("state_ratio"), Some(&JsonValue::Num(1.667)));
        assert!(row_key(&rows[0]).contains("budget=none"));
        assert!(!row_key(&rows[0]).contains("verdict"));
        assert!(parse_rows("[]").unwrap().is_empty());
        assert!(parse_rows("{\"oops\":1}").is_err());
        assert!(
            parse_rows("[{\"a\":[1]}]").is_err(),
            "nested arrays rejected"
        );
    }

    #[test]
    fn identical_files_pass() {
        let rows = parse_rows(SAMPLE).unwrap();
        let report = compare("sweep", &rows, &rows, 0.10);
        assert!(report.passed(), "{:?}", report.errors);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn verdict_class_change_fails() {
        let baseline = parse_rows(SAMPLE).unwrap();
        let mut fresh = baseline.clone();
        fresh[0].insert(
            "verdict".to_string(),
            JsonValue::Str("counterexample found (3 steps)".to_string()),
        );
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(!report.passed());
        assert!(report.errors[0].contains("verdict changed class"));

        // Lasso shape changes within the violated class do NOT fail.
        let mut fresh = baseline.clone();
        fresh[1].insert(
            "liveness".to_string(),
            JsonValue::Str("fair lasso (9 stem + 2 cycle steps)".to_string()),
        );
        assert!(compare("sweep", &baseline, &fresh, 0.10).passed());
    }

    #[test]
    fn state_regressions_fail_and_time_noise_warns() {
        let baseline = parse_rows(SAMPLE).unwrap();
        let mut fresh = baseline.clone();
        fresh[1].insert("states".to_string(), JsonValue::Num(56.0)); // +12%
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(!report.passed());
        assert!(report.errors[0].contains("states regressed"));

        // Within tolerance: fine.
        let mut fresh = baseline.clone();
        fresh[1].insert("states".to_string(), JsonValue::Num(54.0)); // +8%
        assert!(compare("sweep", &baseline, &fresh, 0.10).passed());

        // A big improvement passes but warns: the stale baseline would
        // mask later regressions until refreshed.
        let mut fresh = baseline.clone();
        fresh[1].insert("states".to_string(), JsonValue::Num(30.0)); // -40%
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(report.passed());
        assert!(report.warnings.iter().any(|w| w.contains("improved")));

        // Time drift: warning only.
        let mut fresh = baseline.clone();
        fresh[1].insert("time_ms".to_string(), JsonValue::Num(500.0));
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(report.passed());
        assert!(report.warnings.iter().any(|w| w.contains("time_ms")));
    }

    #[test]
    fn speedup_drops_fail_and_gains_only_warn() {
        let baseline = parse_rows(
            r#"[{"protocol":"Paxos (1,3,1) quorum","strategy":"parallel-bfs(4)+SPOR","states":100,"speedup":2.8,"cores":8,"time_ms":10}]"#,
        )
        .unwrap();

        // Identical speedup: silent.
        assert!(compare("scaling", &baseline, &baseline, 0.10).passed());

        // Within tolerance: fine.
        let mut fresh = baseline.clone();
        fresh[0].insert("speedup".to_string(), JsonValue::Num(2.6)); // -7%
        assert!(compare("scaling", &baseline, &fresh, 0.10).passed());

        // Beyond tolerance: the scaling efficiency regressed — fail.
        let mut fresh = baseline.clone();
        fresh[0].insert("speedup".to_string(), JsonValue::Num(2.0)); // -29%
        let report = compare("scaling", &baseline, &fresh, 0.10);
        assert!(!report.passed());
        assert!(
            report.errors[0].contains("speedup dropped"),
            "{:?}",
            report.errors
        );

        // A large gain passes but warns about the stale baseline.
        let mut fresh = baseline.clone();
        fresh[0].insert("speedup".to_string(), JsonValue::Num(3.6)); // +29%
        let report = compare("scaling", &baseline, &fresh, 0.10);
        assert!(report.passed(), "{:?}", report.errors);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("speedup improved")),
            "{:?}",
            report.warnings
        );

        // The cores column is informational: a different machine shape
        // never fails or warns by itself.
        let mut fresh = baseline.clone();
        fresh[0].insert("cores".to_string(), JsonValue::Num(1.0));
        let report = compare("scaling", &baseline, &fresh, 0.10);
        assert!(report.passed());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn vanished_rows_fail_and_new_rows_warn() {
        let baseline = parse_rows(SAMPLE).unwrap();
        let fresh = vec![baseline[0].clone()];
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(!report.passed());
        assert!(report.errors[0].contains("vanished"));

        let mut extended = baseline.clone();
        let mut extra = baseline[0].clone();
        extra.insert("budget".to_string(), JsonValue::Str("drops=1".to_string()));
        extended.push(extra);
        let report = compare("sweep", &baseline, &extended, 0.10);
        assert!(report.passed());
        assert!(report.warnings.iter().any(|w| w.contains("new row")));
    }

    #[test]
    fn phase_share_drift_warns_but_never_fails() {
        // 90/10 split between two phases in the baseline...
        let baseline = parse_rows(
            r#"[{"protocol":"p","time_ms":100,"phase_expansion_ms":90,"phase_store_lookup_ms":10}]"#,
        )
        .unwrap();
        // ...vs a 50/50 split in the fresh file: a 40-point share shift.
        let fresh = parse_rows(
            r#"[{"protocol":"p","time_ms":100,"phase_expansion_ms":50,"phase_store_lookup_ms":50}]"#,
        )
        .unwrap();
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(report.passed(), "{:?}", report.errors);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("phase_expansion_ms share")),
            "{:?}",
            report.warnings
        );

        // Doubling every phase together keeps the shares put: no warning.
        let scaled = parse_rows(
            r#"[{"protocol":"p","time_ms":200,"phase_expansion_ms":180,"phase_store_lookup_ms":20}]"#,
        )
        .unwrap();
        let report = compare("sweep", &baseline, &scaled, 0.10);
        assert!(report.passed());
        assert!(!report.warnings.iter().any(|w| w.contains("share")));

        // An untraced (all-zero) baseline is inert — tracing landing later
        // must not produce share warnings against it.
        let zeros = parse_rows(
            r#"[{"protocol":"p","time_ms":100,"phase_expansion_ms":0,"phase_store_lookup_ms":0}]"#,
        )
        .unwrap();
        let report = compare("sweep", &zeros, &fresh, 0.10);
        assert!(report.passed());
        assert!(!report.warnings.iter().any(|w| w.contains("share")));
    }

    #[test]
    fn microsecond_family_is_preferred_and_never_mixed() {
        // Both sides carry both families. In ms everything rounds to zero
        // (inert); in µs there is a 40-point share shift — the gate must
        // judge the µs family and warn exactly once per drifting phase.
        let baseline = parse_rows(
            r#"[{"protocol":"p","phase_expansion_ms":0,"phase_store_lookup_ms":0,"phase_expansion_us":900,"phase_store_lookup_us":100}]"#,
        )
        .unwrap();
        let fresh = parse_rows(
            r#"[{"protocol":"p","phase_expansion_ms":0,"phase_store_lookup_ms":0,"phase_expansion_us":500,"phase_store_lookup_us":500}]"#,
        )
        .unwrap();
        assert_eq!(phase_family(&baseline[0], &fresh[0]), "_us");
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(report.passed(), "{:?}", report.errors);
        let share_warnings: Vec<_> = report
            .warnings
            .iter()
            .filter(|w| w.contains("share"))
            .collect();
        assert!(
            share_warnings
                .iter()
                .any(|w| w.contains("phase_expansion_us share")),
            "{share_warnings:?}"
        );
        assert!(
            !share_warnings.iter().any(|w| w.contains("_ms share")),
            "ms family must not be judged when µs is: {share_warnings:?}"
        );
    }

    #[test]
    fn millisecond_family_still_works_against_old_baselines() {
        // Old baseline: ms only. Fresh rows carry both families; the extra
        // µs fields are new (fine) and shares are judged in ms.
        let baseline =
            parse_rows(r#"[{"protocol":"p","phase_expansion_ms":90,"phase_store_lookup_ms":10}]"#)
                .unwrap();
        let fresh = parse_rows(
            r#"[{"protocol":"p","phase_expansion_ms":50,"phase_store_lookup_ms":50,"phase_expansion_us":50000,"phase_store_lookup_us":50000}]"#,
        )
        .unwrap();
        assert_eq!(phase_family(&baseline[0], &fresh[0]), "_ms");
        let report = compare("sweep", &baseline, &fresh, 0.10);
        assert!(report.passed(), "{:?}", report.errors);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("phase_expansion_ms share")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn trace_phase_drift_pairs_runs_and_warns_on_share_moves() {
        use mp_trace::PHASE_COUNT;
        let run = |strategy: &str, phases_us: [u64; PHASE_COUNT]| RunSummary {
            protocol: "paxos".to_string(),
            strategy: strategy.to_string(),
            property: "agreement".to_string(),
            phases_us,
            ..Default::default()
        };
        let mut even = [0u64; PHASE_COUNT];
        even[0] = 500;
        even[1] = 500;
        let mut skewed = [0u64; PHASE_COUNT];
        skewed[0] = 900;
        skewed[1] = 100;
        // Same shares → silent; a 40-point move → one warning per phase.
        assert!(trace_phase_drift("t", &[run("bfs", even)], &[run("bfs", even)]).is_empty());
        let warnings = trace_phase_drift("t", &[run("bfs", even)], &[run("bfs", skewed)]);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("expansion share"), "{warnings:?}");
        // Unpaired baseline runs are surfaced, not silently skipped.
        let unpaired = trace_phase_drift("t", &[run("bfs", even)], &[run("dfs", even)]);
        assert!(unpaired[0].contains("no fresh counterpart"), "{unpaired:?}");
    }

    #[test]
    fn duplicate_keys_match_in_order() {
        // Two baseline rows with the same key but different counts must
        // match the fresh rows positionally.
        let baseline =
            parse_rows(r#"[{"protocol":"p","states":10},{"protocol":"p","states":100}]"#).unwrap();
        let fresh =
            parse_rows(r#"[{"protocol":"p","states":10},{"protocol":"p","states":100}]"#).unwrap();
        assert!(compare("dup", &baseline, &fresh, 0.10).passed());
        let swapped =
            parse_rows(r#"[{"protocol":"p","states":200},{"protocol":"p","states":100}]"#).unwrap();
        assert!(!compare("dup", &baseline, &swapped, 0.10).passed());
    }
}
