//! CI bench-regression gate over the committed `BENCH_*.json` baselines.
//!
//! Usage: `cargo run --release -p mp-harness --bin bench_gate --
//! <baseline.json> <fresh.json> [<baseline2.json> <fresh2.json> ...]
//! [--tolerance T]` (run with `--help` for the authoritative flag list —
//! it is generated from the same table the parser uses)
//!
//! Compares each fresh file against its committed baseline and exits
//! non-zero on **verdict-class changes**, **state-count regressions beyond
//! the tolerance** (default 10%), vanished rows, or budget-completion
//! regressions. Wall-time/memory drift, phase-share drift and rows new in
//! the fresh file are reported as `::warning::` annotations only. See
//! `mp_harness::bench_gate` for the exact rules.

use mp_harness::bench_gate::{compare, parse_rows, trace_phase_drift};
use mp_harness::cli::{Cli, FlagSpec};
use mp_harness::trace_report::load_runs;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::value(
        "--tolerance",
        "T",
        "relative state-count drift that fails the gate (default 0.10)",
    ),
    FlagSpec::value(
        "--trace-baseline",
        "PATH",
        "baseline NDJSON trace for the phase-drift check (needs --trace-fresh)",
    ),
    FlagSpec::value(
        "--trace-fresh",
        "PATH",
        "fresh NDJSON trace compared against --trace-baseline (warnings only)",
    ),
];

fn main() {
    let cli = Cli::parse_with_positionals(
        "bench_gate",
        "Bench-regression gate over committed BENCH_*.json baselines.",
        FLAGS,
        Some("<baseline.json> <fresh.json> [more pairs...]"),
    );
    let tolerance = cli
        .value("--tolerance")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    let trace_pair = match (cli.value("--trace-baseline"), cli.value("--trace-fresh")) {
        (Some(a), Some(b)) => Some((a.to_string(), b.to_string())),
        (None, None) => None,
        _ => {
            eprintln!("bench_gate: --trace-baseline and --trace-fresh must be given together");
            eprint!("{}", cli.usage());
            std::process::exit(2);
        }
    };
    let files = cli.positionals();
    if (files.is_empty() && trace_pair.is_none()) || !files.len().is_multiple_of(2) {
        eprint!("{}", cli.usage());
        std::process::exit(2);
    }

    let mut failed = false;
    for pair in files.chunks(2) {
        let (baseline_path, fresh_path) = (&pair[0], &pair[1]);
        let label = baseline_path
            .rsplit('/')
            .next()
            .unwrap_or(baseline_path)
            .trim_end_matches(".json");
        let read = |path: &str| -> Vec<mp_harness::bench_gate::Row> {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_rows(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        };
        let baseline = read(baseline_path);
        let fresh = read(fresh_path);
        let report = compare(label, &baseline, &fresh, tolerance);
        for warning in &report.warnings {
            println!("::warning::{warning}");
        }
        for error in &report.errors {
            println!("::error::{error}");
        }
        if report.passed() {
            println!(
                "{label}: OK ({} baseline rows gated, {} warning(s))",
                baseline.len(),
                report.warnings.len()
            );
        } else {
            println!(
                "{label}: FAILED ({} error(s), {} warning(s))",
                report.errors.len(),
                report.warnings.len()
            );
            failed = true;
        }
    }
    // Trace-level phase-drift evidence (warnings only — never fails the
    // gate, matching the row-level share rule).
    if let Some((baseline_path, fresh_path)) = trace_pair {
        let load =
            |path: &str| load_runs(path).unwrap_or_else(|e| panic!("cannot analyze trace: {e}"));
        let baseline = load(&baseline_path);
        let fresh = load(&fresh_path);
        let warnings = trace_phase_drift("trace", &baseline, &fresh);
        for warning in &warnings {
            println!("::warning::{warning}");
        }
        println!(
            "trace: {} baseline run(s) checked for phase drift, {} warning(s)",
            baseline.len(),
            warnings.len()
        );
    }

    if failed {
        std::process::exit(1);
    }
}
