//! CI bench-regression gate over the committed `BENCH_*.json` baselines.
//!
//! Usage: `cargo run --release -p mp-harness --bin bench_gate --
//! <baseline.json> <fresh.json> [<baseline2.json> <fresh2.json> ...]
//! [--tolerance 0.10]`
//!
//! Compares each fresh file against its committed baseline and exits
//! non-zero on **verdict-class changes**, **state-count regressions beyond
//! the tolerance** (default 10%), vanished rows, or budget-completion
//! regressions. Wall-time/memory drift and rows new in the fresh file are
//! reported as `::warning::` annotations only. See
//! `mp_harness::bench_gate` for the exact rules.

use mp_harness::bench_gate::{compare, parse_rows};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    let files: Vec<&String> = args.iter().take_while(|a| *a != "--tolerance").collect();
    if files.is_empty() || !files.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_gate <baseline.json> <fresh.json> [more pairs...] [--tolerance 0.10]"
        );
        std::process::exit(2);
    }

    let mut failed = false;
    for pair in files.chunks(2) {
        let (baseline_path, fresh_path) = (pair[0], pair[1]);
        let label = baseline_path
            .rsplit('/')
            .next()
            .unwrap_or(baseline_path)
            .trim_end_matches(".json");
        let read = |path: &str| -> Vec<mp_harness::bench_gate::Row> {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_rows(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        };
        let baseline = read(baseline_path);
        let fresh = read(fresh_path);
        let report = compare(label, &baseline, &fresh, tolerance);
        for warning in &report.warnings {
            println!("::warning::{warning}");
        }
        for error in &report.errors {
            println!("::error::{error}");
        }
        if report.passed() {
            println!(
                "{label}: OK ({} baseline rows gated, {} warning(s))",
                baseline.len(),
                report.warnings.len()
            );
        } else {
            println!(
                "{label}: FAILED ({} error(s), {} warning(s))",
                report.errors.len(),
                report.warnings.len()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
