//! Reproduces the debugging experiments: resources needed to find the first
//! counterexample in the faulty protocol variants.
//!
//! Usage: `cargo run --release -p mp-harness --bin debugging [--json [PATH]]`
//!
//! `--json` writes the rows as a JSON array (default `BENCH_debugging.json`)
//! so every harness binary emits machine-readable results.

use mp_harness::{
    debugging::debugging_experiments, json_output_path, render_table, write_json_rows, Budget,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_output_path(&args, "BENCH_debugging.json");
    let rows = debugging_experiments(&Budget::default());
    print!(
        "{}",
        render_table("Debugging: first counterexample in faulty variants", &rows)
    );
    if let Some(path) = json_path {
        write_json_rows(&path, &rows);
    }
}
