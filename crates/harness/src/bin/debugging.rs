//! Reproduces the debugging experiments: resources needed to find the first
//! counterexample in the faulty protocol variants.
//!
//! Usage: `cargo run --release -p mp-harness --bin debugging
//! [--json [PATH]]` (run with `--help` for the authoritative flag list —
//! it is generated from the same table the parser uses)
//!
//! `--json` writes the rows as a JSON array (default `BENCH_debugging.json`)
//! so every harness binary emits machine-readable results.

use mp_harness::cli::{Cli, FlagSpec};
use mp_harness::{debugging::debugging_experiments, render_table, write_json_rows, Budget};

const FLAGS: &[FlagSpec] = &[FlagSpec::optional_value(
    "--json",
    "PATH",
    "write the rows as a JSON array (default BENCH_debugging.json)",
)];

fn main() {
    let cli = Cli::parse(
        "debugging",
        "Fast debugging: first counterexample in the faulty protocol variants.",
        FLAGS,
    );
    let json_path = cli.json_path("BENCH_debugging.json");
    let rows = debugging_experiments(&Budget::default());
    print!(
        "{}",
        render_table("Debugging: first counterexample in faulty variants", &rows)
    );
    if let Some(path) = json_path {
        write_json_rows(&path, &rows);
    }
}
