//! Reproduces the debugging experiments: resources needed to find the first
//! counterexample in the faulty protocol variants.
//!
//! Usage: `cargo run --release -p mp-harness --bin debugging`

use mp_harness::{debugging::debugging_experiments, render_table, Budget};

fn main() {
    let rows = debugging_experiments(&Budget::default());
    print!(
        "{}",
        render_table("Debugging: first counterexample in faulty variants", &rows)
    );
}
