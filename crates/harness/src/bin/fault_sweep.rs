//! Sweeps fault budgets over the evaluation protocols with the generic
//! fault-injection layer (`mp-faults`), checks that every store backend
//! agrees on every cell and that the all-zero budget reproduces the seed
//! models exactly, and writes the machine-readable results to
//! `BENCH_fault_sweep.json`.
//!
//! Usage: `cargo run --release -p mp-harness --bin fault_sweep
//! [--full | --smoke] [--spill] [--spill-watermark BYTES]
//! [--checkpoint-dir DIR] [--checkpoint-every K] [--json [PATH]]
//! [--threads N] [--batch-size N] [--progress] [--trace PATH]` (run with
//! `--help` for the authoritative flag list — it is generated from the
//! same table the parser uses)
//!
//! `--threads N` adds a parallel-engine agreement probe: the sweep's
//! protocol cells are re-checked on the persistent worker pool at N
//! threads and must reproduce the sequential BFS verdicts and counters
//! exactly (exit non-zero otherwise, like the other agreement gates).
//!
//! `--smoke` runs a reduced budget matrix (no faults, one crash, one drop)
//! under tight per-cell limits — the per-PR CI smoke test that uploads
//! `BENCH_fault_sweep.json` as a workflow artifact so verdict (safety *and*
//! liveness) and perf regressions are visible per change.
//!
//! `--spill` forces the disk-backed BFS frontier on: the safety cells run
//! on the breadth-first engine with the frontier spilling at the sweep
//! watermark (override with `--spill-watermark BYTES`), so every internal
//! consistency gate (backend, symmetry, zero-budget-seed and spill
//! agreement) is exercised with encoded states round-tripping through disk
//! segments. CI smokes this combination.
//!
//! `--checkpoint-dir DIR` checkpoints every safety cell into its own
//! subdirectory of DIR at each completed BFS level (cadence:
//! `--checkpoint-every K`, default 1) and switches the safety cells onto
//! the breadth-first engine. Re-running the same command after a kill
//! resumes every cell at its last committed level and produces identical
//! verdicts, counters and JSON rows; see `docs/OPERATIONS.md`.

use std::time::Duration;

use mp_faults::FaultBudget;
use mp_harness::cli::{Cli, FlagSpec, BATCH_SIZE_FLAG, PROGRESS_FLAG, THREADS_FLAG, TRACE_FLAG};
use mp_harness::fault_sweep::SWEEP_SPILL_WATERMARK;
use mp_harness::fault_sweep::{
    backend_disagreements, fault_sweep, fault_sweep_grid, fault_sweep_json, frontier_disagreements,
    render_fault_sweep, symmetry_disagreements, zero_budget_seed_checks,
};
use mp_harness::Budget;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::switch("--full", "paper-scale budgets (the sweep may take hours)"),
    FlagSpec::switch(
        "--smoke",
        "reduced budget matrix under tight limits (the per-PR CI smoke test)",
    ),
    FlagSpec::switch(
        "--spill",
        "force the disk-backed BFS frontier on for the safety cells",
    ),
    FlagSpec::value(
        "--spill-watermark",
        "BYTES",
        "disk-frontier spill watermark used with --spill (default 4096)",
    ),
    FlagSpec::value(
        "--checkpoint-dir",
        "DIR",
        "checkpoint every safety cell under DIR and resume from it if present",
    ),
    FlagSpec::value(
        "--checkpoint-every",
        "K",
        "commit a checkpoint every K completed BFS levels (default 1)",
    ),
    FlagSpec::optional_value(
        "--json",
        "PATH",
        "destination of the sweep JSON (default BENCH_fault_sweep.json)",
    ),
    THREADS_FLAG,
    BATCH_SIZE_FLAG,
    PROGRESS_FLAG,
    TRACE_FLAG,
];

fn main() {
    let cli = Cli::parse(
        "fault_sweep",
        "Budgeted generic fault injection swept over the evaluation protocols.",
        FLAGS,
    );
    let full = cli.has("--full");
    let smoke = cli.has("--smoke");
    let spill = cli.has("--spill");
    // This binary always writes its JSON; `--json [PATH]` only overrides
    // the destination (shared flag convention of the harness binaries).
    let json_path = cli
        .json_path("BENCH_fault_sweep.json")
        .unwrap_or_else(|| "BENCH_fault_sweep.json".to_string());

    let mut run_budget = if full {
        Budget::unbounded()
    } else if smoke {
        Budget {
            max_states: 100_000,
            time_limit: Some(Duration::from_secs(20)),
            ..Budget::default()
        }
    } else {
        Budget {
            max_states: 500_000,
            time_limit: Some(Duration::from_secs(60)),
            ..Budget::default()
        }
    };
    if spill {
        let watermark = cli.usize_value("--spill-watermark", SWEEP_SPILL_WATERMARK);
        run_budget =
            run_budget.with_frontier(mp_harness::FrontierConfig::disk_with_watermark(watermark));
    }
    if let Some(dir) = cli.value("--checkpoint-dir") {
        run_budget = run_budget
            .with_checkpoint_dir(dir)
            .with_checkpoint_every(cli.usize_value("--checkpoint-every", 1));
    }
    run_budget = run_budget
        .with_batch_size(cli.usize_value(BATCH_SIZE_FLAG.name, 0))
        .with_trace(cli.tracer());

    println!("Generic fault injection: budget sweep over the evaluation protocols");
    println!("(crash-stop / message loss / duplication / Byzantine corruption)");
    if spill {
        println!("(disk-backed BFS frontier forced on: safety cells spill at the sweep watermark)");
    }
    if let Some(dir) = &run_budget.checkpoint_dir {
        println!(
            "(checkpointing safety cells under {} every {} level(s); \
             an existing manifest resumes the cell)",
            dir.display(),
            run_budget.checkpoint_every
        );
    }
    println!();

    let cells = if smoke {
        let budgets = vec![
            FaultBudget::none(),
            FaultBudget::none().crashes(1),
            FaultBudget::none().drops(1),
        ];
        fault_sweep_grid(&run_budget, &budgets, false)
    } else {
        fault_sweep(&run_budget)
    };
    print!("{}", render_fault_sweep(&cells));
    println!();

    let disagreements = backend_disagreements(&cells);
    if disagreements.is_empty() {
        println!("store-backend agreement: OK (every backend reports the same verdict per cell)");
    } else {
        for cell in &disagreements {
            eprintln!(
                "BACKEND DISAGREEMENT: {} / {} / {} / {}: {}",
                cell.protocol, cell.budget, cell.strategy, cell.backend, cell.verdict
            );
        }
        std::process::exit(1);
    }

    // Same exit-nonzero convention for the symmetry reduction: the orbit
    // sweep must agree with the plain sweep on every safety and liveness
    // verdict and may never explore more states.
    let sym_disagreements = symmetry_disagreements(&cells);
    if sym_disagreements.is_empty() {
        println!(
            "symmetry agreement: OK (orbit reduction preserves every safety/liveness verdict)"
        );
    } else {
        for cell in &sym_disagreements {
            eprintln!(
                "SYMMETRY DISAGREEMENT: {} / {} / {} / {}: safety {} vs {}, liveness {} vs {}, \
                 states {} vs {}",
                cell.protocol,
                cell.budget,
                cell.strategy,
                cell.backend,
                cell.verdict,
                cell.sym_verdict,
                cell.liveness,
                cell.sym_liveness,
                cell.states,
                cell.sym_states
            );
        }
        std::process::exit(1);
    }

    // And for the disk-backed frontier: the spilled BFS probe of every
    // cell must reproduce the in-memory frontier exactly.
    let spill_disagreements = frontier_disagreements(&cells);
    if spill_disagreements.is_empty() {
        println!("frontier-spill agreement: OK (disk and in-memory frontiers explore identically)");
    } else {
        for cell in &spill_disagreements {
            eprintln!(
                "FRONTIER SPILL DISAGREEMENT: {} / {} / {}",
                cell.protocol, cell.budget, cell.strategy
            );
        }
        std::process::exit(1);
    }

    // With `--threads N`, additionally probe the parallel BFS engine's
    // worker pool at N threads against the sequential reference on the
    // sweep's protocol cells — same exit-nonzero convention as the other
    // agreement gates.
    if cli.has(THREADS_FLAG.name) {
        let threads = cli.usize_value(THREADS_FLAG.name, 0);
        let pool_disagreements =
            mp_harness::parallel_scaling::parallel_agreement_probe(threads, &run_budget);
        if pool_disagreements.is_empty() {
            println!(
                "parallel-engine agreement: OK (worker pool at {threads} thread(s) matches \
                 sequential BFS)"
            );
        } else {
            for line in &pool_disagreements {
                eprintln!("PARALLEL ENGINE DISAGREEMENT: {line}");
            }
            std::process::exit(1);
        }
    }

    println!("\nall-zero budget vs seed models:");
    let mut seed_ok = true;
    for check in zero_budget_seed_checks(&run_budget) {
        println!(
            "  {:<28} [{:<9}] base {:>7} states, zero-budget {:>7} states  {}",
            check.protocol,
            check.strategy,
            check.base_states,
            check.faulted_states,
            if check.matches() { "==" } else { "MISMATCH" }
        );
        seed_ok &= check.matches();
    }
    if !seed_ok {
        eprintln!("zero-budget injection failed to reproduce the seed state counts");
        std::process::exit(1);
    }

    std::fs::write(&json_path, fault_sweep_json(&cells))
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("\nwrote {} cells to {json_path}", cells.len());
}
