//! Sweeps fault budgets over the evaluation protocols with the generic
//! fault-injection layer (`mp-faults`), checks that every store backend
//! agrees on every cell and that the all-zero budget reproduces the seed
//! models exactly, and writes the machine-readable results to
//! `BENCH_fault_sweep.json`.
//!
//! Usage: `cargo run --release -p mp-harness --bin fault_sweep
//! [--full] [--json PATH]`

use std::time::Duration;

use mp_harness::fault_sweep::{
    backend_disagreements, fault_sweep, fault_sweep_json, render_fault_sweep,
    zero_budget_seed_checks,
};
use mp_harness::Budget;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fault_sweep.json".to_string());

    let run_budget = if full {
        Budget::unbounded()
    } else {
        Budget {
            max_states: 500_000,
            time_limit: Some(Duration::from_secs(60)),
            ..Budget::default()
        }
    };

    println!("Generic fault injection: budget sweep over the evaluation protocols");
    println!("(crash-stop / message loss / duplication / Byzantine corruption)\n");

    let cells = fault_sweep(&run_budget);
    print!("{}", render_fault_sweep(&cells));
    println!();

    let disagreements = backend_disagreements(&cells);
    if disagreements.is_empty() {
        println!("store-backend agreement: OK (every backend reports the same verdict per cell)");
    } else {
        for cell in &disagreements {
            eprintln!(
                "BACKEND DISAGREEMENT: {} / {} / {} / {}: {}",
                cell.protocol, cell.budget, cell.strategy, cell.backend, cell.verdict
            );
        }
        std::process::exit(1);
    }

    println!("\nall-zero budget vs seed models:");
    let mut seed_ok = true;
    for check in zero_budget_seed_checks(&run_budget) {
        println!(
            "  {:<28} [{:<9}] base {:>7} states, zero-budget {:>7} states  {}",
            check.protocol,
            check.strategy,
            check.base_states,
            check.faulted_states,
            if check.matches() { "==" } else { "MISMATCH" }
        );
        seed_ok &= check.matches();
    }
    if !seed_ok {
        eprintln!("zero-budget injection failed to reproduce the seed state counts");
        std::process::exit(1);
    }

    std::fs::write(&json_path, fault_sweep_json(&cells))
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("\nwrote {} cells to {json_path}", cells.len());
}
