//! Thread-scaling benchmark of the parallel BFS engine's persistent
//! worker pool.
//!
//! Usage: `cargo run --release -p mp-harness --bin parallel_scaling
//! [--smoke] [--acceptors N] [--batch-size N] [--json [PATH]]
//! [--progress] [--trace PATH]` (run with `--help` for the authoritative
//! flag list — it is generated from the same table the parser uses)
//!
//! Sweeps the pooled engine over 1/2/4/8 worker threads on the Paxos and
//! echo multicast quorum models (symmetry off and on), asserts that every
//! pooled run agrees with the sequential BFS reference, and always writes
//! `BENCH_parallel_scaling.json` — each row carries its `threads` column,
//! the wall-clock `speedup` vs the family's 1-thread run, and the
//! producing machine's `cores`. The committed baseline of that file is
//! what `bench_gate` guards: a 4-thread run whose speedup drops beyond
//! the tolerance relative to the baseline fails CI.
//!
//! `--smoke` shrinks the Paxos cell to 2 acceptors and tightens the
//! budget — the per-PR CI configuration.

use mp_harness::cli::{Cli, FlagSpec, BATCH_SIZE_FLAG, PROGRESS_FLAG, TRACE_FLAG};
use mp_harness::parallel_scaling::{
    bench_cells, parallel_scaling_sweep, render_parallel_json, render_parallel_sweep, smoke_cells,
    THREAD_GRID,
};
use mp_harness::Budget;
use mp_protocols::paxos::PaxosSetting;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::switch(
        "--smoke",
        "reduced cell sizes under tight limits (the per-PR CI smoke test)",
    ),
    FlagSpec::value(
        "--acceptors",
        "N",
        "acceptors of the Paxos scaling cell (default 3; ignored by --smoke)",
    ),
    BATCH_SIZE_FLAG,
    FlagSpec::optional_value(
        "--json",
        "PATH",
        "destination of the sweep JSON (default BENCH_parallel_scaling.json)",
    ),
    PROGRESS_FLAG,
    TRACE_FLAG,
];

fn main() {
    let cli = Cli::parse(
        "parallel_scaling",
        "Thread-scaling benchmark of the parallel BFS worker pool.",
        FLAGS,
    );
    let smoke = cli.has("--smoke");
    let (paxos, multicast) = if smoke {
        smoke_cells()
    } else {
        let (paxos, multicast) = bench_cells();
        let acceptors = cli.usize_value("--acceptors", paxos.acceptors);
        (
            PaxosSetting::new(paxos.proposers, acceptors, paxos.learners),
            multicast,
        )
    };
    // This binary always writes its JSON; `--json [PATH]` only overrides
    // the destination (shared flag convention of the harness binaries).
    let json_path = cli
        .json_path("BENCH_parallel_scaling.json")
        .unwrap_or_else(|| "BENCH_parallel_scaling.json".to_string());
    let budget = if smoke {
        Budget::small()
    } else {
        Budget::default()
    }
    .with_batch_size(cli.usize_value(BATCH_SIZE_FLAG.name, 0))
    .with_trace(cli.tracer());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Thread scaling of the parallel BFS worker pool ({cores} core(s) available)");
    println!("(speedup is wall-clock vs each family's own 1-thread pooled run;");
    println!(" it is bounded by the machine's physical parallelism)");
    println!();
    let rows = parallel_scaling_sweep(&THREAD_GRID, paxos, multicast, &budget);
    print!("{}", render_parallel_sweep(&rows));
    println!();

    if rows.iter().any(|r| !r.agrees) {
        eprintln!("PARALLEL ENGINE DISAGREEMENT: a pooled run diverged from sequential BFS");
        std::process::exit(1);
    }
    println!("cross-engine agreement: OK (every pooled run matches sequential BFS)");

    std::fs::write(&json_path, render_parallel_json(&rows))
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("wrote {} rows to {json_path}", rows.len());
}
