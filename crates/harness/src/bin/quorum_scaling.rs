//! Reproduces the Section II-C analysis: how much larger single-message
//! models are than quorum models, as a function of the quorum size.
//!
//! Usage: `cargo run --release -p mp-harness --bin quorum_scaling
//! [--voters N] [--json [PATH]] [--progress] [--trace PATH]` (run with
//! `--help` for the authoritative flag list — it is generated from the
//! same table the parser uses)
//!
//! With `--json`, the Paxos acceptor sweep is additionally written as a
//! JSON array (default path `BENCH_quorum_scaling.json`) so the bench
//! trajectory is machine-readable.

use mp_harness::cli::{Cli, FlagSpec, PROGRESS_FLAG, TRACE_FLAG};
use mp_harness::scaling::{
    collect_sweep, paxos_frontier_sweep, paxos_sweep, paxos_symmetry_sweep, render_frontier_sweep,
    render_store_sweep, render_sweep, render_symmetry_sweep, store_backend_sweep,
};
use mp_harness::{render_table, write_json_rows, Budget};
use mp_protocols::sweep::CollectSetting;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::value(
        "--voters",
        "N",
        "voters of the quorum-collection sweep (default 4)",
    ),
    FlagSpec::optional_value(
        "--json",
        "PATH",
        "write the Paxos sweeps as a JSON array (default BENCH_quorum_scaling.json)",
    ),
    PROGRESS_FLAG,
    TRACE_FLAG,
];

fn main() {
    let cli = Cli::parse(
        "quorum_scaling",
        "Section II-C: state-space inflation of single-message models.",
        FLAGS,
    );
    let voters = cli
        .value("--voters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let json_path = cli.json_path("BENCH_quorum_scaling.json");
    let budget = Budget::default().with_trace(cli.tracer());

    println!("Section II-C: state-space inflation of single-message models");
    println!();
    println!("Quorum-collection protocol ({voters} voters, 1 collector):");
    let points = collect_sweep(voters, 1, 5_000_000);
    print!("{}", render_sweep(&points));
    println!();
    println!("Paxos with growing acceptor sets (1 proposer, 1 learner, SPOR):");
    let mut rows = paxos_sweep(3, &budget);
    print!("{}", render_table("Paxos acceptor sweep", &rows));
    println!();
    println!("Symmetry (orbit) reduction on the quorum models — the validated");
    println!("group is the acceptor+learner role symmetry, order acceptors!:");
    let (points, sym_rows) = paxos_symmetry_sweep(3, &budget);
    print!("{}", render_symmetry_sweep(&points));
    if points.iter().any(|p| !p.verdicts_agree) {
        eprintln!("SYMMETRY DISAGREEMENT in the acceptor sweep");
        std::process::exit(1);
    }
    println!();
    println!("Disk-backed BFS frontier (spill) on the quorum models — the");
    println!("spilled run must reproduce the in-memory run exactly:");
    let (frontier_points, frontier_rows) = paxos_frontier_sweep(3, &budget);
    print!("{}", render_frontier_sweep(&frontier_points));
    if frontier_points.iter().any(|p| !p.agrees) {
        eprintln!("FRONTIER SPILL DISAGREEMENT in the acceptor sweep");
        std::process::exit(1);
    }
    println!();
    if let Some(path) = &json_path {
        // One array: the plain sweep rows plus the symmetry and frontier
        // rows (distinct strategy labels keep the bench-gate keys unique).
        rows.extend(sym_rows);
        rows.extend(frontier_rows);
        write_json_rows(path, &rows);
        println!();
    }
    println!(
        "Visited-store backends on the single-message collect model ({voters} voters, quorum 2):"
    );
    println!("(fingerprint verdicts are probabilistic; see the mp-store docs)");
    let points = store_backend_sweep(
        CollectSetting::new(voters, 2.min(voters), 1),
        false,
        &budget,
    );
    print!("{}", render_store_sweep(&points));
}
