//! Reproduces the Section II-C analysis: how much larger single-message
//! models are than quorum models, as a function of the quorum size.
//!
//! Usage: `cargo run --release -p mp-harness --bin quorum_scaling
//! [--voters N] [--json [PATH]] [--threads N] [--batch-size N]
//! [--progress] [--trace PATH]` (run with `--help` for the authoritative
//! flag list — it is generated from the same table the parser uses)
//!
//! With `--json`, the Paxos acceptor sweep is additionally written as a
//! JSON array (default path `BENCH_quorum_scaling.json`) so the bench
//! trajectory is machine-readable. With `--threads N`, the acceptor
//! sweep is additionally run on the parallel BFS engine's worker pool at
//! N threads (strategy `parallel-bfs(N)+SPOR`, `threads` column set) and
//! those rows join the JSON.

use mp_checker::NullObserver;
use mp_harness::cli::{Cli, FlagSpec, BATCH_SIZE_FLAG, PROGRESS_FLAG, THREADS_FLAG, TRACE_FLAG};
use mp_harness::runner::run_cell;
use mp_harness::scaling::{
    collect_sweep, paxos_frontier_sweep, paxos_sweep, paxos_symmetry_sweep, render_frontier_sweep,
    render_store_sweep, render_sweep, render_symmetry_sweep, store_backend_sweep,
};
use mp_harness::{render_table, write_json_rows, Budget, CellStrategy};
use mp_protocols::paxos::{consensus_property, quorum_model, PaxosSetting, PaxosVariant};
use mp_protocols::sweep::CollectSetting;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::value(
        "--voters",
        "N",
        "voters of the quorum-collection sweep (default 4)",
    ),
    FlagSpec::optional_value(
        "--json",
        "PATH",
        "write the Paxos sweeps as a JSON array (default BENCH_quorum_scaling.json)",
    ),
    THREADS_FLAG,
    BATCH_SIZE_FLAG,
    PROGRESS_FLAG,
    TRACE_FLAG,
];

fn main() {
    let cli = Cli::parse(
        "quorum_scaling",
        "Section II-C: state-space inflation of single-message models.",
        FLAGS,
    );
    let voters = cli
        .value("--voters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let json_path = cli.json_path("BENCH_quorum_scaling.json");
    let budget = Budget::default()
        .with_batch_size(cli.usize_value(BATCH_SIZE_FLAG.name, 0))
        .with_trace(cli.tracer());

    println!("Section II-C: state-space inflation of single-message models");
    println!();
    println!("Quorum-collection protocol ({voters} voters, 1 collector):");
    let points = collect_sweep(voters, 1, 5_000_000);
    print!("{}", render_sweep(&points));
    println!();
    println!("Paxos with growing acceptor sets (1 proposer, 1 learner, SPOR):");
    let mut rows = paxos_sweep(3, &budget);
    print!("{}", render_table("Paxos acceptor sweep", &rows));
    println!();
    println!("Symmetry (orbit) reduction on the quorum models — the validated");
    println!("group is the acceptor+learner role symmetry, order acceptors!:");
    let (points, sym_rows) = paxos_symmetry_sweep(3, &budget);
    print!("{}", render_symmetry_sweep(&points));
    if points.iter().any(|p| !p.verdicts_agree) {
        eprintln!("SYMMETRY DISAGREEMENT in the acceptor sweep");
        std::process::exit(1);
    }
    println!();
    println!("Disk-backed BFS frontier (spill) on the quorum models — the");
    println!("spilled run must reproduce the in-memory run exactly:");
    let (frontier_points, frontier_rows) = paxos_frontier_sweep(3, &budget);
    print!("{}", render_frontier_sweep(&frontier_points));
    if frontier_points.iter().any(|p| !p.agrees) {
        eprintln!("FRONTIER SPILL DISAGREEMENT in the acceptor sweep");
        std::process::exit(1);
    }
    println!();
    // With `--threads N`: the acceptor sweep again, on the worker pool.
    // The pooled rows carry a `threads` JSON field and a strategy label
    // of their own, so they join the bench file without perturbing the
    // sequential rows' keys.
    let mut pooled_rows = Vec::new();
    if cli.has(THREADS_FLAG.name) {
        let threads = cli.usize_value(THREADS_FLAG.name, 0);
        println!("Paxos acceptor sweep on the parallel BFS worker pool ({threads} thread(s)):");
        for acceptors in 1..=3 {
            let setting = PaxosSetting::new(1, acceptors, 1);
            pooled_rows.push(run_cell(
                &format!("Paxos {setting} quorum"),
                "Consensus",
                false,
                &quorum_model(setting, PaxosVariant::Correct),
                consensus_property(setting),
                NullObserver,
                CellStrategy::ParallelBfs { threads },
                &budget,
            ));
        }
        print!("{}", render_table("Parallel acceptor sweep", &pooled_rows));
        println!();
    }
    if let Some(path) = &json_path {
        // One array: the plain sweep rows plus the symmetry, frontier and
        // (with `--threads`) worker-pool rows — distinct strategy labels
        // keep the bench-gate keys unique.
        rows.extend(sym_rows);
        rows.extend(frontier_rows);
        rows.extend(pooled_rows);
        write_json_rows(path, &rows);
        println!();
    }
    println!(
        "Visited-store backends on the single-message collect model ({voters} voters, quorum 2):"
    );
    println!("(fingerprint verdicts are probabilistic; see the mp-store docs)");
    let points = store_backend_sweep(
        CollectSetting::new(voters, 2.min(voters), 1),
        false,
        &budget,
    );
    print!("{}", render_store_sweep(&points));
}
