//! Compares the POR seed-transition heuristics discussed in Section V-B.
//!
//! Usage: `cargo run --release -p mp-harness --bin seed_heuristics
//! [--full]` (run with `--help` for the authoritative flag list — it is
//! generated from the same table the parser uses)

use mp_harness::cli::{Cli, FlagSpec};
use mp_harness::{heuristics::heuristic_comparison, render_table, Budget};
use mp_protocols::paxos::PaxosSetting;

const FLAGS: &[FlagSpec] = &[FlagSpec::switch(
    "--full",
    "paper-scale Paxos setting, per-cell budgets removed",
)];

fn main() {
    let cli = Cli::parse(
        "seed_heuristics",
        "Seed-transition heuristic comparison (Paxos, SPOR).",
        FLAGS,
    );
    let (setting, budget) = if cli.has("--full") {
        (PaxosSetting::new(2, 3, 1), Budget::unbounded())
    } else {
        (PaxosSetting::new(2, 2, 1), Budget::default())
    };
    let rows = heuristic_comparison(setting, &budget);
    print!(
        "{}",
        render_table("Seed-transition heuristics (Paxos, SPOR)", &rows)
    );
}
