//! Compares the POR seed-transition heuristics discussed in Section V-B.
//!
//! Usage: `cargo run --release -p mp-harness --bin seed_heuristics [--full]`

use mp_harness::{heuristics::heuristic_comparison, render_table, Budget};
use mp_protocols::paxos::PaxosSetting;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (setting, budget) = if full {
        (PaxosSetting::new(2, 3, 1), Budget::unbounded())
    } else {
        (PaxosSetting::new(2, 2, 1), Budget::default())
    };
    let rows = heuristic_comparison(setting, &budget);
    print!(
        "{}",
        render_table("Seed-transition heuristics (Paxos, SPOR)", &rows)
    );
}
