//! Reproduces Table I ("quorum semantics results") of the DSN 2011 paper.
//!
//! Usage: `cargo run --release -p mp-harness --bin table_i
//! [--full] [--csv] [--json [PATH]]`
//!
//! `--json` writes the rows as a JSON array (default `BENCH_table_i.json`)
//! so every harness binary emits machine-readable results.
//!
//! By default the run is bounded (smaller Paxos setting, per-cell state and
//! time budgets) so it completes in minutes; `--full` switches to the
//! paper-scale settings and removes the budgets.

use mp_harness::{
    json_output_path, render_csv, render_table, table1::table_i, write_json_rows, Budget,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = json_output_path(&args, "BENCH_table_i.json");
    let budget = if full {
        Budget::unbounded()
    } else {
        Budget::default()
    };

    eprintln!(
        "running Table I ({} mode); cells marked with '>' hit the per-cell budget",
        if full { "full/paper-scale" } else { "bounded" }
    );
    let rows = table_i(&budget, full);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table I — quorum semantics results", &rows)
        );
    }
    if let Some(path) = json_path {
        write_json_rows(&path, &rows);
    }
}
