//! Reproduces Table I ("quorum semantics results") of the DSN 2011 paper.
//!
//! Usage: `cargo run --release -p mp-harness --bin table_i [--full] [--csv]`
//!
//! By default the run is bounded (smaller Paxos setting, per-cell state and
//! time budgets) so it completes in minutes; `--full` switches to the
//! paper-scale settings and removes the budgets.

use mp_harness::{render_csv, render_table, table1::table_i, Budget};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let budget = if full {
        Budget::unbounded()
    } else {
        Budget::default()
    };

    eprintln!(
        "running Table I ({} mode); cells marked with '>' hit the per-cell budget",
        if full { "full/paper-scale" } else { "bounded" }
    );
    let rows = table_i(&budget, full);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table I — quorum semantics results", &rows)
        );
    }
}
