//! Reproduces Table II ("transition refinement in action") of the DSN 2011
//! paper.
//!
//! Usage: `cargo run --release -p mp-harness --bin table_ii
//! [--full] [--csv] [--json [PATH]]`
//!
//! `--json` writes the rows as a JSON array (default `BENCH_table_ii.json`)
//! so every harness binary emits machine-readable results.

use mp_harness::{
    json_output_path, render_csv, render_table, table2::table_ii, write_json_rows, Budget,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = json_output_path(&args, "BENCH_table_ii.json");
    let budget = if full {
        Budget::unbounded()
    } else {
        Budget::default()
    };

    eprintln!(
        "running Table II ({} mode); cells marked with '>' hit the per-cell budget",
        if full { "full/paper-scale" } else { "bounded" }
    );
    let rows = table_ii(&budget, full);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table II — transition refinement in action", &rows)
        );
    }
    if let Some(path) = json_path {
        write_json_rows(&path, &rows);
    }
}
