//! Reproduces Table II ("transition refinement in action") of the DSN 2011
//! paper.
//!
//! Usage: `cargo run --release -p mp-harness --bin table_ii
//! [--full] [--csv] [--json [PATH]]` (run with `--help` for the
//! authoritative flag list — it is generated from the same table the
//! parser uses)
//!
//! `--json` writes the rows as a JSON array (default `BENCH_table_ii.json`)
//! so every harness binary emits machine-readable results.

use mp_harness::cli::{Cli, FlagSpec};
use mp_harness::{render_csv, render_table, table2::table_ii, write_json_rows, Budget};

const FLAGS: &[FlagSpec] = &[
    FlagSpec::switch("--full", "paper-scale settings, per-cell budgets removed"),
    FlagSpec::switch("--csv", "print CSV instead of the aligned text table"),
    FlagSpec::optional_value(
        "--json",
        "PATH",
        "write the rows as a JSON array (default BENCH_table_ii.json)",
    ),
];

fn main() {
    let cli = Cli::parse(
        "table_ii",
        "Table II — transition refinement in action (DSN 2011).",
        FLAGS,
    );
    let full = cli.has("--full");
    let csv = cli.has("--csv");
    let json_path = cli.json_path("BENCH_table_ii.json");
    let budget = if full {
        Budget::unbounded()
    } else {
        Budget::default()
    };

    eprintln!(
        "running Table II ({} mode); cells marked with '>' hit the per-cell budget",
        if full { "full/paper-scale" } else { "bounded" }
    );
    let rows = table_ii(&budget, full);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table II — transition refinement in action", &rows)
        );
    }
    if let Some(path) = json_path {
        write_json_rows(&path, &rows);
    }
}
