//! Reproduces Table II ("transition refinement in action") of the DSN 2011
//! paper.
//!
//! Usage: `cargo run --release -p mp-harness --bin table_ii [--full] [--csv]`

use mp_harness::{render_csv, render_table, table2::table_ii, Budget};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let budget = if full {
        Budget::unbounded()
    } else {
        Budget::default()
    };

    eprintln!(
        "running Table II ({} mode); cells marked with '>' hit the per-cell budget",
        if full { "full/paper-scale" } else { "bounded" }
    );
    let rows = table_ii(&budget, full);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table II — transition refinement in action", &rows)
        );
    }
}
