//! `trace_report` — turns `--trace` NDJSON streams into readable reports.
//!
//! ```text
//! usage: trace_report <subcommand> <file.ndjson> [...]
//!
//! subcommands:
//!   summary FILE...   per-run counters, phase shares, memory-gauge peaks
//!   diff A B          cross-run deltas between two traces (runs paired by
//!                     protocol · strategy · property identity)
//!   timeline FILE...  the per-level `level_summary` time-series tables
//!   flame FILE...     folded `engine;phase <µs>` stacks for speedscope /
//!                     inferno flamegraph tools
//! ```
//!
//! Markdown goes to stdout (CI appends it to `$GITHUB_STEP_SUMMARY`);
//! `flame` emits the raw collapsed-stack text instead. Exits 2 on usage
//! errors and 1 when a trace cannot be read or fails validation.

use std::io::Write;
use std::process::ExitCode;

use mp_harness::trace_report::{
    diff_markdown, flame_text, load_runs, summary_markdown, timeline_markdown,
};

const USAGE: &str = "usage: trace_report <summary|diff|timeline|flame> <file.ndjson> [...]

subcommands:
  summary FILE...   per-run counters, phase shares, memory-gauge peaks
  diff A B          cross-run deltas between two traces
  timeline FILE...  per-level `level_summary` time-series tables
  flame FILE...     folded engine;phase stacks (speedscope/inferno input)";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("trace_report: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some((subcommand, files)) = args.split_first() else {
        return usage_error("missing subcommand");
    };
    if files.is_empty() {
        return usage_error("missing trace file argument(s)");
    }

    let result = match subcommand.as_str() {
        "summary" => files.iter().try_fold(String::new(), |mut out, path| {
            out.push_str(&summary_markdown(path, &load_runs(path)?));
            Ok(out)
        }),
        "diff" => {
            let [a, b] = files else {
                return usage_error("diff takes exactly two trace files");
            };
            load_runs(a)
                .and_then(|runs_a| load_runs(b).map(|runs_b| diff_markdown(a, b, &runs_a, &runs_b)))
        }
        "timeline" => files.iter().try_fold(String::new(), |mut out, path| {
            out.push_str(&timeline_markdown(path, &load_runs(path)?));
            Ok(out)
        }),
        "flame" => files.iter().try_fold(String::new(), |mut out, path| {
            out.push_str(&flame_text(&load_runs(path)?));
            Ok(out)
        }),
        other => return usage_error(&format!("unknown subcommand `{other}`")),
    };

    match result {
        Ok(output) => {
            // A closed stdout (`trace_report summary ... | head`) is a
            // reader that has seen enough, not an error.
            let _ = std::io::stdout().write_all(output.as_bytes());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_report: {e}");
            ExitCode::FAILURE
        }
    }
}
