//! Shared command-line conventions of the harness binaries.
//!
//! Every binary used to hand-roll its own `args.iter().any(...)` scan and
//! keep a usage line in its module docs, and the two drifted (several docs
//! still said `--json PATH` when the parser had long accepted `--json`
//! with an optional path). This module is the single source of truth: a
//! binary declares its flags once as a [`FlagSpec`] table, and parsing,
//! the generated `--help` text and the optional [`Tracer`] construction
//! all derive from that one table — so the help text cannot drift from
//! what is parsed.

use mp_checker::{TraceOptions, Tracer};

/// Whether (and how) a flag takes a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagArg {
    /// A boolean switch (`--full`).
    None,
    /// A required value (`--trace PATH`); parsing fails when it is missing.
    Required(&'static str),
    /// An optional value (`--json [PATH]`): the next argument is consumed
    /// as the value unless it is absent or another `--flag`.
    Optional(&'static str),
}

/// One flag a harness binary accepts.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// The spelling, including the leading dashes (`"--json"`).
    pub name: &'static str,
    /// The flag's value shape.
    pub arg: FlagArg,
    /// One-line description shown by `--help`.
    pub help: &'static str,
}

impl FlagSpec {
    /// A boolean switch.
    pub const fn switch(name: &'static str, help: &'static str) -> Self {
        FlagSpec {
            name,
            arg: FlagArg::None,
            help,
        }
    }

    /// A flag with a required value.
    pub const fn value(name: &'static str, placeholder: &'static str, help: &'static str) -> Self {
        FlagSpec {
            name,
            arg: FlagArg::Required(placeholder),
            help,
        }
    }

    /// A flag with an optional value.
    pub const fn optional_value(
        name: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> Self {
        FlagSpec {
            name,
            arg: FlagArg::Optional(placeholder),
            help,
        }
    }
}

/// The shared `--progress` flag (stderr heartbeat lines).
pub const PROGRESS_FLAG: FlagSpec = FlagSpec::switch(
    "--progress",
    "emit heartbeat progress lines (states/sec, depth) to stderr",
);

/// The shared `--trace PATH` flag (NDJSON event stream).
pub const TRACE_FLAG: FlagSpec = FlagSpec::value(
    "--trace",
    "PATH",
    "write machine-readable NDJSON trace events to PATH",
);

/// The shared `--threads N` flag (parallel BFS worker-pool size).
pub const THREADS_FLAG: FlagSpec = FlagSpec::value(
    "--threads",
    "N",
    "worker threads for the parallel BFS engine (0 = available CPUs)",
);

/// The shared `--batch-size N` flag (parallel BFS pool batch size).
pub const BATCH_SIZE_FLAG: FlagSpec = FlagSpec::value(
    "--batch-size",
    "N",
    "frontier entries dealt to the worker pool per round (0 = automatic threads*64)",
);

/// Why parsing stopped without producing a [`Cli`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; the caller should print usage and exit 0.
    HelpRequested,
    /// A malformed invocation; the caller should print the message and the
    /// usage text and exit non-zero.
    Invalid(String),
}

/// Parsed command line of one harness binary.
#[derive(Debug)]
pub struct Cli {
    bin: &'static str,
    summary: &'static str,
    flags: &'static [FlagSpec],
    positional_usage: Option<&'static str>,
    /// `(flag name, value)` for every flag that appeared.
    found: Vec<(&'static str, Option<String>)>,
    positionals: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args()`, printing usage and exiting on `--help` or
    /// a malformed invocation — the entry point the binaries call.
    pub fn parse(bin: &'static str, summary: &'static str, flags: &'static [FlagSpec]) -> Cli {
        Self::parse_with_positionals(bin, summary, flags, None)
    }

    /// Like [`Cli::parse`], additionally accepting positional arguments
    /// (described by `positional_usage`, e.g. `"<baseline.json> <fresh.json>
    /// [...]"`).
    pub fn parse_with_positionals(
        bin: &'static str,
        summary: &'static str,
        flags: &'static [FlagSpec],
        positional_usage: Option<&'static str>,
    ) -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(bin, summary, flags, positional_usage, &args) {
            Ok(cli) => cli,
            Err(CliError::HelpRequested) => {
                println!("{}", usage(bin, summary, flags, positional_usage));
                std::process::exit(0);
            }
            Err(CliError::Invalid(message)) => {
                eprintln!("{bin}: {message}");
                eprintln!("{}", usage(bin, summary, flags, positional_usage));
                std::process::exit(2);
            }
        }
    }

    /// Pure parsing core (testable; no I/O, no exit).
    ///
    /// # Errors
    ///
    /// [`CliError::HelpRequested`] on `--help`/`-h`;
    /// [`CliError::Invalid`] on an unknown flag, a missing required value,
    /// or an unexpected positional argument.
    pub fn try_parse(
        bin: &'static str,
        summary: &'static str,
        flags: &'static [FlagSpec],
        positional_usage: Option<&'static str>,
        args: &[String],
    ) -> Result<Cli, CliError> {
        let mut cli = Cli {
            bin,
            summary,
            flags,
            positional_usage,
            found: Vec::new(),
            positionals: Vec::new(),
        };
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Err(CliError::HelpRequested);
            }
            if let Some(spec) = flags.iter().find(|f| f.name == arg) {
                let value = match spec.arg {
                    FlagArg::None => None,
                    FlagArg::Required(placeholder) => match it.next() {
                        Some(v) => Some(v.clone()),
                        None => {
                            return Err(CliError::Invalid(format!(
                                "{arg} requires a {placeholder} value"
                            )))
                        }
                    },
                    FlagArg::Optional(_) => match it.peek() {
                        Some(next) if !next.starts_with("--") => {
                            Some(it.next().expect("peeked argument must be present").clone())
                        }
                        _ => None,
                    },
                };
                cli.found.push((spec.name, value));
            } else if arg.starts_with('-') {
                return Err(CliError::Invalid(format!("unknown flag `{arg}`")));
            } else if positional_usage.is_some() {
                cli.positionals.push(arg.clone());
            } else {
                return Err(CliError::Invalid(format!(
                    "unexpected positional argument `{arg}`"
                )));
            }
        }
        Ok(cli)
    }

    /// `true` when `name` appeared on the command line.
    pub fn has(&self, name: &str) -> bool {
        self.found.iter().any(|(n, _)| *n == name)
    }

    /// The value given with `name`, if the flag appeared with one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.found
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Positional (non-flag) arguments in order of appearance.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The value given with `name` parsed as a `usize`, or `default` when
    /// the flag is absent or unparsable — the convention shared by
    /// [`THREADS_FLAG`] and [`BATCH_SIZE_FLAG`].
    pub fn usize_value(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The shared `--json [PATH]` convention: `None` when the flag is
    /// absent, `Some(default)` when it is given bare, `Some(path)`
    /// otherwise.
    pub fn json_path(&self, default: &str) -> Option<String> {
        if !self.has("--json") {
            return None;
        }
        Some(
            self.value("--json")
                .map(str::to_string)
                .unwrap_or_else(|| default.to_string()),
        )
    }

    /// Builds the tracer selected by [`PROGRESS_FLAG`] and [`TRACE_FLAG`]
    /// (disabled when neither appeared).
    ///
    /// # Panics
    ///
    /// Panics when the `--trace` file cannot be created; the binaries treat
    /// that as fatal, like an unwritable `--json` path.
    pub fn tracer(&self) -> Tracer {
        let mut options = TraceOptions::new();
        if self.has(PROGRESS_FLAG.name) {
            options = options.with_progress();
        }
        if let Some(path) = self.value(TRACE_FLAG.name) {
            options = options.with_ndjson(path);
        }
        Tracer::from_options(options)
            .unwrap_or_else(|e| panic!("{}: cannot open trace sink: {e}", self.bin))
    }

    /// The generated usage/help text (what `--help` prints).
    pub fn usage(&self) -> String {
        usage(self.bin, self.summary, self.flags, self.positional_usage)
    }
}

fn usage(bin: &str, summary: &str, flags: &[FlagSpec], positional_usage: Option<&str>) -> String {
    let mut line = format!("usage: {bin}");
    for spec in flags {
        let rendered = match spec.arg {
            FlagArg::None => spec.name.to_string(),
            FlagArg::Required(placeholder) => format!("{} {placeholder}", spec.name),
            FlagArg::Optional(placeholder) => format!("{} [{placeholder}]", spec.name),
        };
        line.push_str(&format!(" [{rendered}]"));
    }
    if let Some(positional) = positional_usage {
        line.push_str(&format!(" {positional}"));
    }
    let mut out = format!("{line}\n\n{summary}\n");
    if !flags.is_empty() {
        out.push_str("\noptions:\n");
        let width = flags
            .iter()
            .map(|f| {
                f.name.len()
                    + match f.arg {
                        FlagArg::None => 0,
                        FlagArg::Required(p) => p.len() + 1,
                        FlagArg::Optional(p) => p.len() + 3,
                    }
            })
            .max()
            .unwrap_or(0);
        for spec in flags {
            let rendered = match spec.arg {
                FlagArg::None => spec.name.to_string(),
                FlagArg::Required(placeholder) => format!("{} {placeholder}", spec.name),
                FlagArg::Optional(placeholder) => format!("{} [{placeholder}]", spec.name),
            };
            out.push_str(&format!("  {rendered:<width$}  {}\n", spec.help));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAGS: &[FlagSpec] = &[
        FlagSpec::switch("--full", "paper-scale budgets"),
        FlagSpec::optional_value("--json", "PATH", "write rows as JSON"),
        PROGRESS_FLAG,
        TRACE_FLAG,
    ];

    fn to_args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::try_parse("demo", "a demo binary", FLAGS, None, &to_args(args))
    }

    #[test]
    fn switches_and_values_parse() {
        let cli = parse(&["--full", "--trace", "out.ndjson"]).unwrap();
        assert!(cli.has("--full"));
        assert!(!cli.has("--json"));
        assert_eq!(cli.value("--trace"), Some("out.ndjson"));
        assert!(cli.positionals().is_empty());
    }

    #[test]
    fn json_path_follows_the_optional_value_convention() {
        assert_eq!(parse(&[]).unwrap().json_path("d.json"), None);
        assert_eq!(
            parse(&["--json"]).unwrap().json_path("d.json"),
            Some("d.json".to_string())
        );
        assert_eq!(
            parse(&["--json", "out.json"]).unwrap().json_path("d.json"),
            Some("out.json".to_string())
        );
        assert_eq!(
            parse(&["--json", "--full"]).unwrap().json_path("d.json"),
            Some("d.json".to_string())
        );
    }

    #[test]
    fn errors_are_reported_not_guessed() {
        assert!(matches!(parse(&["--help"]), Err(CliError::HelpRequested)));
        assert!(matches!(parse(&["-h"]), Err(CliError::HelpRequested)));
        assert!(matches!(
            parse(&["--bogus"]),
            Err(CliError::Invalid(m)) if m.contains("--bogus")
        ));
        assert!(matches!(
            parse(&["--trace"]),
            Err(CliError::Invalid(m)) if m.contains("PATH")
        ));
        assert!(matches!(
            parse(&["stray"]),
            Err(CliError::Invalid(m)) if m.contains("stray")
        ));
    }

    #[test]
    fn positionals_are_accepted_when_declared() {
        const GATE_FLAGS: &[FlagSpec] =
            &[FlagSpec::value("--tolerance", "T", "relative tolerance")];
        let cli = Cli::try_parse(
            "gate",
            "the gate",
            GATE_FLAGS,
            Some("<baseline.json> <fresh.json> [...]"),
            &to_args(&["a.json", "b.json", "--tolerance", "0.2"]),
        )
        .unwrap();
        assert_eq!(cli.positionals(), ["a.json", "b.json"]);
        assert_eq!(cli.value("--tolerance"), Some("0.2"));
        assert!(cli.usage().contains("<baseline.json>"));
    }

    #[test]
    fn usage_lists_every_flag_exactly_as_parsed() {
        let cli = parse(&[]).unwrap();
        let usage = cli.usage();
        assert!(usage.starts_with("usage: demo"));
        assert!(usage.contains("[--json [PATH]]"), "{usage}");
        assert!(usage.contains("[--trace PATH]"), "{usage}");
        assert!(usage.contains("--progress"));
        assert!(usage.contains("a demo binary"));
    }

    #[test]
    fn tracer_is_disabled_without_observability_flags() {
        assert!(!parse(&["--full"]).unwrap().tracer().is_enabled());
        // `--progress` alone enables it without touching the filesystem.
        assert!(parse(&["--progress"]).unwrap().tracer().is_enabled());
    }
}
