//! The debugging experiments (across Tables I–II).
//!
//! "The proposed optimizations can also find bugs fast using little memory"
//! — this experiment measures the resources needed to find the *first*
//! counterexample in the faulty protocol variants, under the quorum model
//! with SPOR and, for comparison, the unreduced search. Breadth-first search
//! is used so that the reported counterexamples are shortest ones.

use mp_checker::{Checker, CheckerConfig, NullObserver, Verdict};
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as multicast_quorum, MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    quorum_model as storage_quorum, wrong_regularity_property, RegularityObserver, StorageSetting,
};

use crate::{Budget, Measurement};

fn measure<S, M, O>(
    protocol: &str,
    property: &str,
    spec: &mp_model::ProtocolSpec<S, M>,
    prop: mp_checker::Invariant<S, M, O>,
    observer: O,
    spor: bool,
    budget: &Budget,
) -> Measurement
where
    S: mp_model::LocalState,
    M: mp_model::Message,
    O: mp_checker::Observer<S, M>,
{
    let mut config = CheckerConfig::stateful_bfs();
    config.max_states = budget.max_states;
    config.time_limit = budget.time_limit;
    config.trace = budget.trace.clone();
    let checker = Checker::with_observer(spec, prop, observer).config(config);
    let checker = if spor { checker.spor() } else { checker };
    let report = checker.run();
    let (verdict, completed) = match &report.verdict {
        Verdict::Violated(cx) => (format!("CE ({} steps)", cx.len()), true),
        Verdict::Verified => ("verified (unexpected)".to_string(), true),
        Verdict::LimitReached { what } => (format!("bounded ({what})"), false),
    };
    Measurement {
        protocol: protocol.to_string(),
        property: property.to_string(),
        strategy: if spor {
            "SPOR (BFS)"
        } else {
            "unreduced (BFS)"
        }
        .to_string(),
        states: report.stats.states,
        transitions: report.stats.transitions_executed,
        time: report.stats.elapsed,
        as_expected: report.verdict.is_violated() || !completed,
        verdict,
        completed,
        frontier_bytes: report.stats.frontier_peak_bytes,
        threads: report.stats.worker_threads,
        phases: report.stats.phases.clone(),
    }
}

/// Runs the bug-finding experiments on the three faulty targets and returns
/// one measurement per (target, strategy).
pub fn debugging_experiments(budget: &Budget) -> Vec<Measurement> {
    let mut rows = Vec::new();

    let paxos_setting = PaxosSetting::new(2, 3, 1);
    let paxos = paxos_quorum(paxos_setting, PaxosVariant::FaultyLearner);
    for spor in [false, true] {
        rows.push(measure(
            &format!("Faulty Paxos {paxos_setting}"),
            "Consensus",
            &paxos,
            consensus_property(paxos_setting),
            NullObserver,
            spor,
            budget,
        ));
    }

    let multicast_setting = MulticastSetting::new(2, 1, 2, 1);
    let multicast = multicast_quorum(multicast_setting);
    for spor in [false, true] {
        rows.push(measure(
            &format!("Echo Multicast {multicast_setting}"),
            "Wrong agreement",
            &multicast,
            agreement_property(multicast_setting),
            NullObserver,
            spor,
            budget,
        ));
    }

    let storage_setting = StorageSetting::new(3, 2);
    let storage = storage_quorum(storage_setting);
    for spor in [false, true] {
        rows.push(measure(
            &format!("Regular storage {storage_setting}"),
            "Wrong regularity",
            &storage,
            wrong_regularity_property(storage_setting),
            RegularityObserver::new(storage_setting),
            spor,
            budget,
        ));
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_faulty_target_yields_a_counterexample_quickly() {
        let rows = debugging_experiments(&Budget::default());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.verdict.starts_with("CE"),
                "{} / {} should produce a counterexample, got {}",
                row.protocol,
                row.strategy,
                row.verdict
            );
            assert!(
                row.states < 150_000,
                "bug finding should need few states, {} needed {}",
                row.protocol,
                row.states
            );
        }
    }
}
