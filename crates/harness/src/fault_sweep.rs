//! Budgeted fault-injection sweeps across the evaluation protocols.
//!
//! The generic fault layer (`mp-faults`) turns every protocol of the
//! evaluation into a *family* of fault workloads. This experiment sweeps a
//! grid of [`FaultBudget`]s over Paxos, Echo Multicast and regular storage,
//! with SPOR on and off and with every visited-store backend, reporting
//! verdict, states, store bytes and wall time per cell — plus a **liveness
//! column**: for every cell the protocol's termination property (Paxos
//! "some value eventually learned", multicast delivery, read completion)
//! is checked under the same budget and strategy, and the verdict
//! (`verified`, or a fair-cycle/quiescence lasso) is recorded alongside the
//! safety verdict. Two invariants are machine-checked by the `fault_sweep`
//! binary (and the integration tests):
//!
//! * all store backends agree on the verdict of every cell,
//! * the all-zero budget reproduces the seed models' state counts exactly,
//! * the **disk-spilled BFS frontier agrees** with the in-memory frontier
//!   on every cell's verdict class and state count (each cell is probed
//!   with `FrontierConfig::disk` at a deliberately tiny watermark, with
//!   and without symmetry, and the spilled frontier's peak bytes are
//!   recorded — with symmetry the frontier holds canonical orbit
//!   representatives, so the `frontier_ratio` column tracks the orbit
//!   collapse), and
//! * **symmetry on and off agree** on every safety and liveness verdict
//!   (each cell is run twice — without and with the protocol's
//!   `mp-symmetry` role declaration — and the symmetric state count and
//!   state-count ratio are recorded per cell, so the orbit-collapse
//!   trajectory lands in `BENCH_fault_sweep.json` alongside the verdicts).

use std::time::Duration;

use mp_checker::{
    Checker, CheckerConfig, CheckpointConfig, Invariant, NullObserver, Observer, Property,
};
use mp_faults::FaultBudget;
use mp_model::{LocalState, Message, Permutable, ProtocolSpec};
use mp_protocols::echo_multicast::{
    agreement_property, faulty_agreement_property, faulty_delivery_termination_property,
    faulty_quorum_model as faulty_multicast, quorum_model as multicast, MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, faulty_consensus_property, faulty_quorum_model as faulty_paxos,
    faulty_termination_property, quorum_model as paxos, PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    faulty_quorum_model as faulty_storage, faulty_read_completion_property,
    faulty_regularity_observer, faulty_regularity_property, quorum_model as storage,
    regularity_property, RegularityObserver, StorageSetting,
};
use mp_store::{FrontierConfig, StoreConfig};
use mp_symmetry::RoleMap;

use crate::Budget;

/// One cell of the fault sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultCell {
    /// Protocol and setting, e.g. "Paxos (1,2,1)".
    pub protocol: String,
    /// The fault budget label, e.g. "crashes=1,drops=1" or "none".
    pub budget: String,
    /// "SPOR" or "unreduced" (both stateful DFS).
    pub strategy: String,
    /// Visited-store backend label.
    pub backend: String,
    /// Verdict string of the safety (invariant) run.
    pub verdict: String,
    /// Verdict string of the liveness (termination) run under the same
    /// budget and strategy: `"verified"`, or a lasso description such as
    /// `"fair lasso (4 stem + 0 cycle steps)"`.
    pub liveness: String,
    /// States stored by the safety run.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Approximate peak bytes held by the visited-state store.
    pub store_bytes: usize,
    /// Bytes of visited-set data the store spilled to disk as sorted runs
    /// (non-zero only for the external-memory `runs` backend).
    pub store_spilled_bytes: usize,
    /// Bytes the store wrote while merging its sorted runs at level
    /// boundaries (non-zero only for the `runs` backend).
    pub store_merge_bytes: usize,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// Verdict string of the safety run with symmetry reduction on.
    pub sym_verdict: String,
    /// Verdict string of the liveness run with symmetry reduction on.
    pub sym_liveness: String,
    /// States stored by the symmetric safety run (orbit representatives).
    pub sym_states: usize,
    /// Wall-clock time of the symmetric safety run.
    pub sym_time: Duration,
    /// Peak frontier bytes of the disk-spilled BFS probe of this cell
    /// (safety property, `FrontierConfig::disk` at the sweep watermark,
    /// symmetry off). One probe per (protocol, budget, strategy) group —
    /// the number is backend-independent, like the liveness column.
    pub frontier_bytes: usize,
    /// Peak frontier bytes of the disk-spilled BFS probe with symmetry on:
    /// the frontier then holds canonical orbit representatives, so this
    /// shrinks by roughly the orbit collapse.
    pub sym_frontier_bytes: usize,
    /// `true` iff the spilled BFS probes (plain and symmetric) reproduced
    /// the in-memory-frontier verdict class and state count exactly. The
    /// `fault_sweep` binary exits non-zero when any cell disagrees, like
    /// backend and symmetry disagreement.
    pub spill_agrees: bool,
    /// Per-phase wall-clock breakdown of the plain safety run (all zero
    /// when tracing is disabled — the default for committed baselines).
    /// Serialised into `BENCH_fault_sweep.json` as flat `phase_<name>_ms`
    /// fields so the CI gate can watch phase shares drift.
    pub phases: mp_trace::PhaseTimes,
}

impl FaultCell {
    /// Orbit-collapse ratio of the cell: plain states per symmetric state
    /// (1.0 = no collapse; the Paxos crash cells sit near the group order).
    pub fn state_ratio(&self) -> f64 {
        self.states as f64 / self.sym_states.max(1) as f64
    }

    /// Frontier-collapse ratio of the cell: plain spilled frontier bytes
    /// per symmetric spilled frontier bytes. Tracks [`state_ratio`]
    /// (spilling canonical representatives shrinks the frontier by the
    /// orbit size, not just the visited set).
    ///
    /// [`state_ratio`]: FaultCell::state_ratio
    pub fn frontier_ratio(&self) -> f64 {
        self.frontier_bytes as f64 / self.sym_frontier_bytes.max(1) as f64
    }
}

/// Watermark of the sweep's disk-frontier probes: small enough that every
/// non-trivial cell writes multiple spill segments, so the sweep exercises
/// the segment machinery on every run.
pub const SWEEP_SPILL_WATERMARK: usize = 4096;

/// Buffer watermark (in entries) of the sweep's external-memory `runs`
/// visited-store backend: small enough that the larger fault cells spill
/// sorted fingerprint runs to disk and merge them at level boundaries.
pub const SWEEP_RUN_WATERMARK: usize = 4096;

/// Flattens one sweep-cell coordinate into a filesystem-safe checkpoint
/// subdirectory name: lowercase, alphanumerics kept, everything else
/// collapsed to `-`.
fn cell_slug(parts: &[&str]) -> String {
    let mut slug = String::new();
    for part in parts {
        if !slug.is_empty() && !slug.ends_with('-') {
            slug.push('-');
        }
        for ch in part.chars() {
            if ch.is_ascii_alphanumeric() {
                slug.push(ch.to_ascii_lowercase());
            } else if !slug.ends_with('-') {
                slug.push('-');
            }
        }
    }
    slug.trim_matches('-').to_string()
}

/// The comparison class of a verdict string: `"verified"`, `"violated"` or
/// `"bounded"`. Symmetric and plain runs may legitimately report different
/// counterexample *shapes* (a different path or lasso of the same orbit),
/// so agreement is judged on the class, never on the rendered string.
pub fn verdict_class(verdict: &str) -> &'static str {
    if verdict.contains("counterexample") || verdict.contains("lasso") {
        "violated"
    } else if verdict.contains("verified") {
        "verified"
    } else {
        "bounded"
    }
}

/// The visited-store backends every cell is run with. The `runs` backend
/// is the external-memory visited set: a bloom front in RAM plus sorted
/// fingerprint runs on disk, merged at BFS level boundaries.
pub fn sweep_backends() -> Vec<StoreConfig> {
    vec![
        StoreConfig::Exact,
        StoreConfig::sharded(),
        StoreConfig::fingerprint(48),
        StoreConfig::runs_with_watermark(SWEEP_RUN_WATERMARK),
    ]
}

/// The default budget grid: no faults, one fault of each class alone, and
/// one mixed budget.
pub fn budget_grid() -> Vec<FaultBudget> {
    vec![
        FaultBudget::none(),
        FaultBudget::none().crashes(1),
        FaultBudget::none().drops(1),
        FaultBudget::none().dups(1),
        FaultBudget::none().crashes(1).drops(1),
    ]
}

/// Renders a liveness verdict for the sweep's liveness column.
fn liveness_label(report: &mp_checker::RunReport) -> String {
    match &report.verdict {
        mp_checker::Verdict::Violated(cx) if cx.is_lasso => format!(
            "fair lasso ({} stem + {} cycle steps)",
            cx.steps.len(),
            cx.cycle.len()
        ),
        verdict => verdict.to_string(),
    }
}

#[allow(clippy::too_many_arguments)] // a sweep cell genuinely has this many axes
fn run_cells<S, M, O>(
    protocol: &str,
    budget_label: &str,
    spec: &ProtocolSpec<S, M>,
    roles: &RoleMap,
    property: Invariant<S, M, O>,
    liveness: &Property<S, M, NullObserver>,
    observer: O,
    run_budget: &Budget,
    out: &mut Vec<FaultCell>,
) where
    S: LocalState + Permutable,
    M: Message + Permutable,
    O: Observer<S, M> + Permutable + Ord,
{
    for spor in [false, true] {
        // The liveness verdict is backend-independent (the lasso search
        // runs on the exact store): one run per strategy and symmetry
        // setting, recorded in every backend row of the group.
        let liveness_verdict = |symmetry: bool| {
            let mut config = CheckerConfig::stateful_dfs();
            config.max_states = run_budget.max_states;
            config.time_limit = run_budget.time_limit;
            config.trace = run_budget.trace.clone();
            let checker =
                Checker::with_observer(spec, liveness.clone(), NullObserver).config(config);
            let checker = if spor { checker.spor() } else { checker };
            let checker = if symmetry {
                checker.with_role_symmetry(roles)
            } else {
                checker
            };
            liveness_label(&checker.run())
        };
        let liveness_plain = liveness_verdict(false);
        let liveness_sym = liveness_verdict(true);

        // The disk-frontier probe (one per strategy and symmetry setting,
        // like liveness): a BFS run of the safety property with the
        // spilled frontier at the sweep watermark, checked against the
        // in-memory frontier for verdict-class and state-count agreement.
        let frontier_probe = |symmetry: bool| -> (usize, bool) {
            let run = |frontier: FrontierConfig| {
                let mut config = CheckerConfig::stateful_bfs();
                config.max_states = run_budget.max_states;
                config.time_limit = run_budget.time_limit;
                config.trace = run_budget.trace.clone();
                config.frontier = frontier;
                let checker =
                    Checker::with_observer(spec, property.clone(), observer.clone()).config(config);
                let checker = if spor { checker.spor() } else { checker };
                let checker = if symmetry {
                    checker.with_role_symmetry(roles)
                } else {
                    checker
                };
                checker.run()
            };
            let mem = run(FrontierConfig::Mem);
            let disk = run(FrontierConfig::disk_with_watermark(SWEEP_SPILL_WATERMARK));
            let agrees = verdict_class(&mem.verdict.to_string())
                == verdict_class(&disk.verdict.to_string())
                && mem.stats.states == disk.stats.states;
            (disk.stats.frontier_peak_bytes, agrees)
        };
        let (frontier_bytes, plain_spill_agrees) = frontier_probe(false);
        let (sym_frontier_bytes, sym_spill_agrees) = frontier_probe(true);
        let spill_agrees = plain_spill_agrees && sym_spill_agrees;

        for store in sweep_backends() {
            let run = |symmetry: bool| {
                // A spilling budget (the binary's `--spill` flag) moves the
                // safety cells onto the BFS engine so the whole sweep
                // drives the disk frontier; the models are acyclic, so BFS
                // and DFS explore the same (reduced) state graph. A
                // checkpointing budget does the same — checkpoint/resume is
                // a level-synchronous (BFS) contract.
                let mut config =
                    if run_budget.frontier.spills() || run_budget.checkpoint_dir.is_some() {
                        CheckerConfig::stateful_bfs()
                    } else {
                        CheckerConfig::stateful_dfs()
                    };
                config.frontier = run_budget.frontier;
                config.max_states = run_budget.max_states;
                config.time_limit = run_budget.time_limit;
                config.trace = run_budget.trace.clone();
                config.store = store;
                if let Some(root) = &run_budget.checkpoint_dir {
                    // One subdirectory per cell coordinate, so every cell
                    // of a killed sweep resumes from its own manifest.
                    let slug = cell_slug(&[
                        protocol,
                        budget_label,
                        if spor { "spor" } else { "unreduced" },
                        &store.to_string(),
                        if symmetry { "sym" } else { "plain" },
                    ]);
                    config.checkpoint = Some(
                        CheckpointConfig::new(root.join(slug))
                            .with_every_levels(run_budget.checkpoint_every),
                    );
                }
                let checker =
                    Checker::with_observer(spec, property.clone(), observer.clone()).config(config);
                let checker = if spor { checker.spor() } else { checker };
                let checker = if symmetry {
                    checker.with_role_symmetry(roles)
                } else {
                    checker
                };
                checker.run()
            };
            let report = run(false);
            let sym_report = run(true);
            out.push(FaultCell {
                protocol: protocol.to_string(),
                budget: budget_label.to_string(),
                strategy: if spor { "SPOR" } else { "unreduced" }.to_string(),
                backend: store.to_string(),
                verdict: report.verdict.to_string(),
                liveness: liveness_plain.clone(),
                states: report.stats.states,
                transitions: report.stats.transitions_executed,
                store_bytes: report.stats.store_bytes,
                store_spilled_bytes: report.stats.store_spilled_bytes,
                store_merge_bytes: report.stats.store_merge_bytes,
                time: report.stats.elapsed,
                sym_verdict: sym_report.verdict.to_string(),
                sym_liveness: liveness_sym.clone(),
                sym_states: sym_report.stats.states,
                sym_time: sym_report.stats.elapsed,
                frontier_bytes,
                sym_frontier_bytes,
                spill_agrees,
                phases: report.stats.phases.clone(),
            });
        }
    }
}

/// Runs the full fault sweep: each protocol under every budget of the grid
/// (plus a corruption budget for Paxos, which has a Byzantine mutator),
/// SPOR on/off, every store backend.
pub fn fault_sweep(run_budget: &Budget) -> Vec<FaultCell> {
    fault_sweep_grid(run_budget, &budget_grid(), true)
}

/// Runs the fault sweep over an explicit budget grid. `with_corruption`
/// additionally appends the Byzantine-corruption budget to the Paxos rows.
/// The `fault_sweep` binary's `--smoke` mode uses this with a reduced grid
/// so CI can watch the verdict/liveness trajectory per PR.
pub fn fault_sweep_grid(
    run_budget: &Budget,
    budgets: &[FaultBudget],
    with_corruption: bool,
) -> Vec<FaultCell> {
    let mut cells = Vec::new();

    let paxos_setting = PaxosSetting::new(1, 2, 1);
    let paxos_label = format!("Paxos {paxos_setting}");
    let paxos_roles = mp_protocols::paxos::symmetry_roles(paxos_setting);
    let mut paxos_budgets = budgets.to_vec();
    if with_corruption {
        paxos_budgets.push(FaultBudget::none().corruptions(2));
    }
    for budget in paxos_budgets {
        let spec = faulty_paxos(paxos_setting, PaxosVariant::Correct, budget);
        run_cells(
            &paxos_label,
            &budget.to_string(),
            &spec,
            &paxos_roles,
            faulty_consensus_property(paxos_setting),
            &faulty_termination_property(paxos_setting),
            NullObserver,
            run_budget,
            &mut cells,
        );
    }

    let multicast_setting = MulticastSetting::new(2, 1, 0, 1);
    let multicast_label = format!("Echo Multicast {multicast_setting}");
    let multicast_roles = mp_protocols::echo_multicast::symmetry_roles(multicast_setting);
    for budget in budgets {
        let spec = faulty_multicast(multicast_setting, *budget);
        run_cells(
            &multicast_label,
            &budget.to_string(),
            &spec,
            &multicast_roles,
            faulty_agreement_property(multicast_setting),
            &faulty_delivery_termination_property(multicast_setting),
            NullObserver,
            run_budget,
            &mut cells,
        );
    }

    let storage_setting = StorageSetting::new(2, 1);
    let storage_label = format!("Regular storage {storage_setting}");
    let storage_roles = mp_protocols::storage::symmetry_roles(storage_setting);
    for budget in budgets {
        let spec = faulty_storage(storage_setting, *budget);
        run_cells(
            &storage_label,
            &budget.to_string(),
            &spec,
            &storage_roles,
            faulty_regularity_property(storage_setting),
            &faulty_read_completion_property(storage_setting),
            faulty_regularity_observer(storage_setting),
            run_budget,
            &mut cells,
        );
    }

    cells
}

/// Asserts symmetry agreement: within every cell, the symmetric run must
/// produce the same safety and liveness *verdict class* as the plain run
/// and must not explore more states. Returns the offending cells, empty
/// when all agree.
pub fn symmetry_disagreements(cells: &[FaultCell]) -> Vec<&FaultCell> {
    cells
        .iter()
        .filter(|c| {
            verdict_class(&c.verdict) != verdict_class(&c.sym_verdict)
                || verdict_class(&c.liveness) != verdict_class(&c.sym_liveness)
                || c.sym_states > c.states
        })
        .collect()
}

/// Asserts disk-frontier agreement: the spilled BFS probe of every cell
/// must have reproduced the in-memory frontier's verdict class and state
/// count (both with and without symmetry). Returns the offending cells,
/// empty when all agree.
pub fn frontier_disagreements(cells: &[FaultCell]) -> Vec<&FaultCell> {
    cells.iter().filter(|c| !c.spill_agrees).collect()
}

/// A seed-consistency check row: state counts of the base model vs the
/// all-zero-budget fault-augmented model under the same strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedCheck {
    /// Protocol label.
    pub protocol: String,
    /// "SPOR" or "unreduced".
    pub strategy: String,
    /// States of the seed (base) model.
    pub base_states: usize,
    /// States of the zero-budget fault-augmented model.
    pub faulted_states: usize,
}

impl SeedCheck {
    /// `true` if the zero budget reproduced the seed exactly.
    pub fn matches(&self) -> bool {
        self.base_states == self.faulted_states
    }
}

/// Verifies that injecting an all-zero budget reproduces the seed models'
/// state counts exactly, under both the unreduced and the SPOR search.
pub fn zero_budget_seed_checks(run_budget: &Budget) -> Vec<SeedCheck> {
    #[allow(clippy::too_many_arguments)] // one spec/property/observer triple per side
    fn pair<S, M, O, FS, FM, FO2>(
        protocol: &str,
        base_spec: &ProtocolSpec<S, M>,
        base_property: impl Fn() -> Invariant<S, M, O>,
        base_observer: impl Fn() -> O,
        faulted_spec: &ProtocolSpec<FS, FM>,
        faulted_property: impl Fn() -> Invariant<FS, FM, FO2>,
        faulted_observer: impl Fn() -> FO2,
        run_budget: &Budget,
        out: &mut Vec<SeedCheck>,
    ) where
        S: LocalState,
        M: Message,
        O: Observer<S, M>,
        FS: LocalState,
        FM: Message,
        FO2: Observer<FS, FM>,
    {
        for spor in [false, true] {
            let config = run_budget.apply(CheckerConfig::stateful_dfs());
            let base = Checker::with_observer(base_spec, base_property(), base_observer())
                .config(config.clone());
            let base = if spor { base.spor() } else { base };
            let faulted =
                Checker::with_observer(faulted_spec, faulted_property(), faulted_observer())
                    .config(config);
            let faulted = if spor { faulted.spor() } else { faulted };
            out.push(SeedCheck {
                protocol: protocol.to_string(),
                strategy: if spor { "SPOR" } else { "unreduced" }.to_string(),
                base_states: base.run().stats.states,
                faulted_states: faulted.run().stats.states,
            });
        }
    }

    let mut checks = Vec::new();

    let paxos_setting = PaxosSetting::new(1, 2, 1);
    pair(
        &format!("Paxos {paxos_setting}"),
        &paxos(paxos_setting, PaxosVariant::Correct),
        || consensus_property(paxos_setting),
        || NullObserver,
        &faulty_paxos(paxos_setting, PaxosVariant::Correct, FaultBudget::none()),
        || faulty_consensus_property(paxos_setting),
        || NullObserver,
        run_budget,
        &mut checks,
    );

    let multicast_setting = MulticastSetting::new(2, 1, 0, 1);
    pair(
        &format!("Echo Multicast {multicast_setting}"),
        &multicast(multicast_setting),
        || agreement_property(multicast_setting),
        || NullObserver,
        &faulty_multicast(multicast_setting, FaultBudget::none()),
        || faulty_agreement_property(multicast_setting),
        || NullObserver,
        run_budget,
        &mut checks,
    );

    let storage_setting = StorageSetting::new(2, 1);
    pair(
        &format!("Regular storage {storage_setting}"),
        &storage(storage_setting),
        || regularity_property(storage_setting),
        || RegularityObserver::new(storage_setting),
        &faulty_storage(storage_setting, FaultBudget::none()),
        || faulty_regularity_property(storage_setting),
        || faulty_regularity_observer(storage_setting),
        run_budget,
        &mut checks,
    );

    checks
}

/// Asserts backend agreement: within each (protocol, budget, strategy)
/// group, every store backend must report the same verdict and state
/// count. Returns the offending cells, empty when all agree.
pub fn backend_disagreements(cells: &[FaultCell]) -> Vec<&FaultCell> {
    let mut bad = Vec::new();
    for cell in cells {
        let reference = cells
            .iter()
            .find(|c| {
                c.protocol == cell.protocol
                    && c.budget == cell.budget
                    && c.strategy == cell.strategy
            })
            .expect("the group contains at least the cell itself");
        // The liveness verdict is computed once per strategy (it is
        // backend-independent by construction), so only the safety verdict
        // and state count can disagree across backends.
        if cell.verdict != reference.verdict || cell.states != reference.states {
            bad.push(cell);
        }
    }
    bad
}

/// Renders the sweep as an aligned text table (with the symmetry on/off
/// state counts and the orbit-collapse ratio per cell).
pub fn render_fault_sweep(cells: &[FaultCell]) -> String {
    let mut out = String::from(
        "protocol                  | budget              | strategy  | backend             |   states | sym stat | ratio | store KiB | front KiB | sym front | time     | verdict              | liveness\n",
    );
    out.push_str(
        "--------------------------+---------------------+-----------+---------------------+----------+----------+-------+-----------+-----------+-----------+----------+----------------------+---------\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{:<25} | {:<19} | {:<9} | {:<19} | {:>8} | {:>8} | {:>5.2} | {:>9} | {:>9} | {:>9} | {:>8} | {:<20} | {}\n",
            c.protocol,
            c.budget,
            c.strategy,
            c.backend,
            c.states,
            c.sym_states,
            c.state_ratio(),
            c.store_bytes / 1024,
            c.frontier_bytes / 1024,
            c.sym_frontier_bytes / 1024,
            format!("{:.1?}", c.time),
            c.verdict,
            c.liveness
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialises the sweep as a JSON array (the `BENCH_fault_sweep.json`
/// payload) so external tooling — including the CI bench-regression gate —
/// can track the verdict and orbit-collapse trajectory.
pub fn fault_sweep_json(cells: &[FaultCell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"protocol\":\"{}\",\"budget\":\"{}\",\"strategy\":\"{}\",\"backend\":\"{}\",\
             \"verdict\":\"{}\",\"liveness\":\"{}\",\"states\":{},\"transitions\":{},\
             \"store_bytes\":{},\"store_spilled_bytes\":{},\"store_merge_bytes\":{},\
             \"time_ms\":{},\"sym_verdict\":\"{}\",\"sym_liveness\":\"{}\",\
             \"sym_states\":{},\"sym_time_ms\":{},\"state_ratio\":{:.3},\
             \"frontier_bytes\":{},\"sym_frontier_bytes\":{},\"frontier_ratio\":{:.3},\
             \"spill_agrees\":{}{}}}{}\n",
            json_escape(&c.protocol),
            json_escape(&c.budget),
            json_escape(&c.strategy),
            json_escape(&c.backend),
            json_escape(&c.verdict),
            json_escape(&c.liveness),
            c.states,
            c.transitions,
            c.store_bytes,
            c.store_spilled_bytes,
            c.store_merge_bytes,
            c.time.as_millis(),
            json_escape(&c.sym_verdict),
            json_escape(&c.sym_liveness),
            c.sym_states,
            c.sym_time.as_millis(),
            c.state_ratio(),
            c.frontier_bytes,
            c.sym_frontier_bytes,
            c.frontier_ratio(),
            c.spill_agrees,
            crate::report::phase_json_fields(&c.phases),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_budget() -> Budget {
        Budget {
            max_states: 50_000,
            time_limit: Some(Duration::from_secs(20)),
            ..Budget::default()
        }
    }

    #[test]
    fn zero_budget_reproduces_seed_state_counts() {
        for check in zero_budget_seed_checks(&tiny_budget()) {
            assert!(
                check.matches(),
                "{} [{}]: base {} vs faulted {}",
                check.protocol,
                check.strategy,
                check.base_states,
                check.faulted_states
            );
        }
    }

    #[test]
    fn sweep_backends_agree_on_a_small_grid() {
        // One protocol, two budgets, to keep the unit test fast; the full
        // grid is exercised by the binary and the integration tests.
        let run_budget = tiny_budget();
        let setting = PaxosSetting::new(1, 2, 1);
        let roles = mp_protocols::paxos::symmetry_roles(setting);
        let mut cells = Vec::new();
        for budget in [FaultBudget::none(), FaultBudget::none().drops(1)] {
            let spec = faulty_paxos(setting, PaxosVariant::Correct, budget);
            run_cells(
                "Paxos",
                &budget.to_string(),
                &spec,
                &roles,
                faulty_consensus_property(setting),
                &faulty_termination_property(setting),
                NullObserver,
                &run_budget,
                &mut cells,
            );
        }
        assert_eq!(cells.len(), 2 * 2 * 4);
        assert!(backend_disagreements(&cells).is_empty());
        assert!(symmetry_disagreements(&cells).is_empty());
        assert!(frontier_disagreements(&cells).is_empty());
        // The spilled-frontier probes ran and recorded real byte counts,
        // and symmetry never grows the frontier.
        assert!(cells.iter().all(|c| c.frontier_bytes > 0));
        assert!(cells
            .iter()
            .all(|c| c.sym_frontier_bytes <= c.frontier_bytes));
        assert!(cells.iter().all(|c| c.verdict == "verified"));
        // Symmetry never grows the explored set, and the fault cells (two
        // interchangeable acceptors) must genuinely collapse orbits.
        assert!(cells.iter().all(|c| c.sym_states <= c.states));
        assert!(
            cells
                .iter()
                .filter(|c| c.budget != "none")
                .all(|c| c.state_ratio() > 1.0),
            "drop cells must collapse: {cells:?}"
        );
        // The liveness column: zero-budget Paxos terminates; a single lost
        // message can strand a quorum, a fair quiescent lasso.
        assert!(cells
            .iter()
            .filter(|c| c.budget == "none")
            .all(|c| c.liveness == "verified" && c.sym_liveness == "verified"));
        assert!(cells
            .iter()
            .filter(|c| c.budget != "none")
            .all(|c| c.liveness.contains("lasso") && c.sym_liveness.contains("lasso")));
        let json = fault_sweep_json(&cells);
        assert!(json.starts_with("[\n"));
        assert_eq!(json.matches("\"protocol\"").count(), cells.len());
        assert_eq!(json.matches("\"liveness\"").count(), cells.len());
        assert_eq!(json.matches("\"sym_states\"").count(), cells.len());
        assert_eq!(json.matches("\"state_ratio\"").count(), cells.len());
        assert_eq!(json.matches("\"frontier_bytes\"").count(), cells.len());
        assert_eq!(json.matches("\"sym_frontier_bytes\"").count(), cells.len());
        assert_eq!(json.matches("\"spill_agrees\":true").count(), cells.len());
        assert_eq!(
            json.matches("\"store_spilled_bytes\":").count(),
            cells.len()
        );
        assert_eq!(json.matches("\"store_merge_bytes\":").count(), cells.len());
        assert_eq!(
            json.matches("\"phase_expansion_ms\":").count(),
            cells.len(),
            "every cell carries its flat phase breakdown"
        );
        let table = render_fault_sweep(&cells);
        assert!(table.contains("fingerprint"));
        assert!(table.contains("runs("));
        assert!(table.contains("liveness"));
        assert!(table.contains("ratio"));
        assert!(table.contains("front KiB"));
    }

    #[test]
    fn cell_slugs_are_filesystem_safe_and_distinct() {
        let a = cell_slug(&["Paxos (1,2,1)", "crashes=1", "spor", "runs(4096)", "sym"]);
        assert_eq!(a, "paxos-1-2-1-crashes-1-spor-runs-4096-sym");
        let b = cell_slug(&["Paxos (1,2,1)", "crashes=1", "spor", "runs(4096)", "plain"]);
        assert_ne!(a, b);
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn verdict_classes_compare_shapes_not_strings() {
        assert_eq!(verdict_class("verified"), "verified");
        assert_eq!(verdict_class("counterexample found (3 steps)"), "violated");
        assert_eq!(
            verdict_class("fair lasso (7 stem + 0 cycle steps)"),
            "violated"
        );
        assert_eq!(verdict_class("limit reached: state limit of 10"), "bounded");
    }
}
