//! Seed-heuristic comparison (paper, Section V-B "Seed transitions").
//!
//! MP-Basset's experiments use the "opposite transaction heuristic": prefer
//! seed transitions that start a new protocol instance or keep one open.
//! The paper notes this is the opposite of the transaction heuristic of
//! Bhattacharya et al. and that the latter "resulted in very little
//! reduction". This experiment runs the same protocol under all available
//! heuristics so the difference can be inspected.

use mp_checker::NullObserver;
use mp_por::SeedHeuristic;
use mp_protocols::paxos::{consensus_property, quorum_model, PaxosSetting, PaxosVariant};

use crate::runner::run_cell;
use crate::{Budget, CellStrategy, Measurement};

/// Every heuristic compared by the experiment.
pub const HEURISTICS: [SeedHeuristic; 4] = [
    SeedHeuristic::OppositeTransaction,
    SeedHeuristic::Transaction,
    SeedHeuristic::FirstEnabled,
    SeedHeuristic::FewestDependents,
];

/// Runs Paxos under SPOR with each seed heuristic.
pub fn heuristic_comparison(setting: PaxosSetting, budget: &Budget) -> Vec<Measurement> {
    let spec = quorum_model(setting, PaxosVariant::Correct);
    HEURISTICS
        .iter()
        .map(|heuristic| {
            run_cell(
                &format!("Paxos {setting}"),
                "Consensus",
                false,
                &spec,
                consensus_property(setting),
                NullObserver,
                CellStrategy::SporWithHeuristic(*heuristic),
                budget,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_heuristics_verify_and_are_reported() {
        let rows = heuristic_comparison(PaxosSetting::new(1, 3, 1), &Budget::default());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.verdict, "verified", "{}", row.strategy);
        }
        // The labels must distinguish the heuristics.
        let labels: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.strategy.as_str()).collect();
        assert_eq!(labels.len(), 4);
    }
}
