//! # mp-harness — reproduction of the DSN 2011 evaluation
//!
//! This crate turns the building blocks of the other crates into the
//! experiments reported in the paper:
//!
//! * [`table1`] — Table I ("quorum semantics results"): single-message vs
//!   quorum models under DPOR/SPOR;
//! * [`table2`] — Table II ("transition refinement in action"): unsplit vs
//!   reply-/quorum-/combined-split models under SPOR;
//! * [`scaling`] — the Section II-C analysis: state-space inflation of
//!   single-message models as a function of the quorum size;
//! * [`debugging`] — the "fast debugging" experiments: resources needed to
//!   find the first counterexample in the faulty variants;
//! * [`fault_sweep`] — budgeted generic fault injection (`mp-faults`) swept
//!   over the evaluation protocols, with machine-readable JSON output;
//! * [`heuristics`] — the seed-heuristic comparison discussed in Section V-B.
//!
//! Every experiment produces [`Measurement`] rows which the binaries print
//! as aligned text tables (and optionally CSV); `EXPERIMENTS.md` in the
//! repository root records a snapshot of these outputs next to the numbers
//! the paper reports.
//!
//! Absolute state counts and times are not expected to match the paper — the
//! engine, hardware and protocol-model details differ — but the *shape*
//! (which strategy wins, by roughly what factor, and where the optimisations
//! are ineffective) is the reproduction target.
//!
//! One experiment cell, programmatically:
//!
//! ```
//! use mp_checker::NullObserver;
//! use mp_harness::{Budget, CellStrategy};
//! use mp_harness::runner::run_cell;
//! use mp_protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};
//!
//! let setting = CollectSetting::new(3, 2, 1);
//! let spec = collect_model(setting, true);
//! let m = run_cell(
//!     "collect(3,2,1)",
//!     "soundness",
//!     false, // no violation expected
//!     &spec,
//!     collect_soundness_property(setting),
//!     NullObserver,
//!     CellStrategy::SporStateful,
//!     &Budget::small(),
//! );
//! assert!(m.completed && m.as_expected);
//! assert_eq!(m.verdict, "verified");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_gate;
pub mod cli;
pub mod debugging;
pub mod fault_sweep;
pub mod heuristics;
pub mod parallel_scaling;
pub mod report;
pub mod runner;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod trace_report;

pub use cli::{Cli, FlagSpec};
pub use report::{
    json_output_path, render_csv, render_json, render_table, write_json_rows, Measurement,
};
pub use runner::{Budget, CellStrategy};
// Visited-store and frontier selection are part of the experiment surface:
// a `Budget` carries a `StoreConfig` and a `FrontierConfig`, re-exported
// here so binaries need one import.
pub use mp_store::{FrontierConfig, StoreConfig};
