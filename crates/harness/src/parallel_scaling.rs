//! Thread-scaling benchmark of the parallel BFS engine's persistent
//! worker pool.
//!
//! Each cell of the sweep runs one protocol/property pair on the pooled
//! engine at every thread count of the grid (same SPOR reduction, same
//! store, same frontier) and compares it against a sequential BFS
//! reference run. Two things are measured and one is asserted:
//!
//! * **speedup** — wall-clock time of the 1-thread pooled run divided by
//!   the N-thread run of the same cell family. This is the number the
//!   `BENCH_parallel_scaling.json` baseline tracks and `bench_gate`
//!   guards against regressions (a pooled engine whose 4-thread run gets
//!   *slower* relative to its own 1-thread run has lost scaling
//!   efficiency, whatever the absolute times are);
//! * **cores** — `std::thread::available_parallelism()` of the machine
//!   that produced the row, recorded so a baseline captured on a small
//!   box is legible: speedup is bounded by the physical parallelism, and
//!   a 1-core container honestly reports speedups near 1.0;
//! * **agreement** — verdict and every order-independent counter
//!   (states, transitions, max depth) of each pooled run must equal the
//!   sequential reference. Work stealing reorders expansions within a
//!   level; it must never change what is explored.

use std::time::Duration;

use mp_checker::{Checker, CheckerConfig, NullObserver, Verdict};
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as multicast_quorum, symmetry_roles as multicast_roles,
    MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, symmetry_roles as paxos_roles, PaxosSetting,
    PaxosVariant,
};

use crate::report::phase_json_fields;
use crate::{Budget, Measurement};

/// The worker-pool sizes every cell family is swept over.
pub const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// One row of the thread-scaling sweep: a pooled run at one thread count,
/// with its speedup relative to the 1-thread run of the same cell family
/// and its agreement with the sequential BFS reference.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// The pooled run's measurement (strategy label
    /// `parallel-bfs(N)+SPOR[+sym]`, `threads` set by the engine).
    pub measurement: Measurement,
    /// Wall-clock speedup vs the 1-thread run of the same family
    /// (1.0 by definition for the 1-thread row).
    pub speedup: f64,
    /// Available parallelism of the machine that produced the row.
    pub cores: usize,
    /// `true` when verdict, states, transitions and max depth all match
    /// the sequential BFS reference run.
    pub agrees: bool,
}

/// Wall-clock ratio with microsecond resolution and a 1 µs floor, so
/// smoke-scale cells (whole runs inside a millisecond) never divide by
/// zero.
fn ratio(base: Duration, run: Duration) -> f64 {
    base.as_micros().max(1) as f64 / run.as_micros().max(1) as f64
}

#[allow(clippy::too_many_arguments)] // a scaling cell genuinely has this many axes
fn push_family<S, M>(
    label: &str,
    property_label: &str,
    spec: &mp_model::ProtocolSpec<S, M>,
    property: impl Fn() -> mp_checker::Invariant<S, M, NullObserver>,
    roles: Option<&mp_symmetry::RoleMap>,
    thread_grid: &[usize],
    budget: &Budget,
    rows: &mut Vec<ScalingRow>,
) where
    S: mp_model::LocalState + mp_model::Permutable,
    M: mp_model::Message + mp_model::Permutable,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let run = |config: CheckerConfig| {
        let checker = Checker::new(spec, property())
            .spor()
            .config(budget.apply(config));
        match roles {
            Some(roles) => checker.with_role_symmetry(roles).run(),
            None => checker.run(),
        }
    };
    // The sequential BFS reference every pooled run must agree with.
    let reference = run(CheckerConfig::stateful_bfs());
    let mut base_time = None;
    for &threads in thread_grid {
        let report = run(CheckerConfig::parallel_bfs(threads));
        let base = *base_time.get_or_insert(report.stats.elapsed);
        let agrees = report.verdict.to_string() == reference.verdict.to_string()
            && report.stats.counters() == reference.stats.counters();
        let (verdict, completed) = match &report.verdict {
            Verdict::Verified => ("verified".to_string(), true),
            Verdict::Violated(cx) => (format!("CE ({} steps)", cx.len()), true),
            Verdict::LimitReached { what } => (format!("bounded ({what})"), false),
        };
        rows.push(ScalingRow {
            measurement: Measurement {
                protocol: label.to_string(),
                property: property_label.to_string(),
                strategy: match roles {
                    Some(_) => format!("parallel-bfs({threads})+SPOR+sym"),
                    None => format!("parallel-bfs({threads})+SPOR"),
                },
                states: report.stats.states,
                transitions: report.stats.transitions_executed,
                time: report.stats.elapsed,
                verdict,
                completed,
                as_expected: agrees,
                frontier_bytes: report.stats.frontier_peak_bytes,
                threads: report.stats.worker_threads,
                phases: report.stats.phases.clone(),
            },
            speedup: ratio(base, report.stats.elapsed),
            cores,
            agrees,
        });
    }
}

/// Sweeps the pooled engine over `thread_grid` on a Paxos and an echo
/// multicast quorum cell, each with symmetry off and on. Rows come back
/// in family-major order: all thread counts of one family before the
/// next. Cell sizes matter here: wall-clock ratios on cells that finish
/// in a millisecond are pure scheduler noise, so the benchmark default
/// ([`bench_cells`]) picks models in the tens of thousands of states
/// (hundreds of milliseconds per run) while tests and the agreement
/// probe use [`smoke_cells`].
pub fn parallel_scaling_sweep(
    thread_grid: &[usize],
    paxos: PaxosSetting,
    multicast: MulticastSetting,
    budget: &Budget,
) -> Vec<ScalingRow> {
    let mut rows = Vec::new();

    let setting = paxos;
    let spec = paxos_quorum(setting, PaxosVariant::Correct);
    let roles = paxos_roles(setting);
    let label = format!("Paxos {setting} quorum");
    for sym in [false, true] {
        push_family(
            &label,
            "Consensus",
            &spec,
            || consensus_property(setting),
            sym.then_some(&roles),
            thread_grid,
            budget,
            &mut rows,
        );
    }

    let setting = multicast;
    let spec = multicast_quorum(setting);
    let roles = multicast_roles(setting);
    let label = format!("Echo Multicast {setting} quorum");
    for sym in [false, true] {
        push_family(
            &label,
            "Agreement",
            &spec,
            || agreement_property(setting),
            sym.then_some(&roles),
            thread_grid,
            budget,
            &mut rows,
        );
    }

    rows
}

/// The benchmark-scale cell pair: Paxos `(2,3,1)` (~27k states, hundreds
/// of milliseconds per run — large enough that wall-clock ratios carry
/// signal) and echo multicast `(3,1,1,1)` (~4k states, with a Byzantine
/// receiver so the pooled engine is also benchmarked under fault
/// transitions).
pub fn bench_cells() -> (PaxosSetting, MulticastSetting) {
    (
        PaxosSetting::new(2, 3, 1),
        MulticastSetting::new(3, 1, 1, 1),
    )
}

/// The smoke-scale cell pair (a few dozen to a few hundred states):
/// right for agreement testing and CI smoke runs, useless for timing.
pub fn smoke_cells() -> (PaxosSetting, MulticastSetting) {
    (
        PaxosSetting::new(1, 2, 1),
        MulticastSetting::new(2, 1, 0, 1),
    )
}

/// Cross-engine agreement probe for the `fault_sweep` binary's
/// `--threads N` flag: runs the sweep's protocol cells on the pooled
/// engine at `threads` workers and returns one human-readable line per
/// cell that *disagrees* with the sequential BFS reference (empty =
/// everything agrees, the binary prints OK).
pub fn parallel_agreement_probe(threads: usize, budget: &Budget) -> Vec<String> {
    let (paxos, multicast) = smoke_cells();
    parallel_scaling_sweep(&[threads], paxos, multicast, budget)
        .into_iter()
        .filter(|row| !row.agrees)
        .map(|row| {
            format!(
                "{} / {} / {}: pooled run diverged from sequential BFS ({}, {} states)",
                row.measurement.protocol,
                row.measurement.property,
                row.measurement.strategy,
                row.measurement.verdict,
                row.measurement.states
            )
        })
        .collect()
}

/// Renders the scaling sweep as a small text table.
pub fn render_parallel_sweep(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "configuration                                  | thr |   states |     time | speedup | vs sequential\n",
    );
    out.push_str(
        "-----------------------------------------------+-----+----------+----------+---------+--------------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<46} | {:>3} | {:>8} | {:>8} | {:>6.2}x | {}\n",
            format!(
                "{} [{}]",
                row.measurement.protocol, row.measurement.strategy
            ),
            row.measurement.threads,
            row.measurement.states,
            row.measurement.time_label(),
            row.speedup,
            if row.agrees { "agree" } else { "DISAGREE" }
        ));
    }
    out
}

/// Renders the sweep as the `BENCH_parallel_scaling.json` array: the
/// shared `Measurement` fields plus a fractional `speedup` and the
/// producing machine's `cores`. `speedup` is a gated field (`bench_gate`
/// fails a run whose speedup drops beyond the tolerance against the
/// committed baseline); `cores` is informational.
pub fn render_parallel_json(rows: &[ScalingRow]) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let m = &row.measurement;
        out.push_str(&format!(
            "  {{\"protocol\":\"{}\",\"property\":\"{}\",\"strategy\":\"{}\",\"states\":{},\
             \"transitions\":{},\"time_ms\":{},\"verdict\":\"{}\",\"completed\":{},\
             \"frontier_bytes\":{},\"threads\":{},\"speedup\":{:.3},\"cores\":{}{}}}{}\n",
            escape(&m.protocol),
            escape(&m.property),
            escape(&m.strategy),
            m.states,
            m.transitions,
            m.time.as_millis(),
            escape(&m.verdict),
            m.completed,
            m.frontier_bytes,
            m.threads,
            row.speedup,
            row.cores,
            phase_json_fields(&m.phases),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_gate::{parse_rows, JsonValue};

    #[test]
    fn sweep_rows_agree_with_sequential_bfs_and_carry_speedups() {
        let (paxos, multicast) = smoke_cells();
        let rows = parallel_scaling_sweep(&[1, 2], paxos, multicast, &Budget::small());
        // 2 protocols × sym off/on × 2 thread counts.
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.agrees, "{}", render_parallel_sweep(&rows));
            assert!(row.measurement.completed);
            assert!(row.speedup > 0.0);
            assert!(row.cores >= 1);
            assert_eq!(
                row.measurement.threads,
                if row.measurement.strategy.contains("(1)") {
                    1
                } else {
                    2
                }
            );
        }
        // The 1-thread row of each family defines the baseline: speedup 1.
        for family in rows.chunks(2) {
            assert_eq!(family[0].speedup, 1.0);
        }
        // Symmetry rows are labelled apart from the plain rows so the
        // bench gate keys them separately.
        assert!(rows
            .iter()
            .any(|r| r.measurement.strategy.ends_with("+sym")));
        let rendered = render_parallel_sweep(&rows);
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("agree"));
    }

    #[test]
    fn json_rows_parse_back_through_the_bench_gate() {
        let (paxos, multicast) = smoke_cells();
        let rows = parallel_scaling_sweep(&[1, 2], paxos, multicast, &Budget::small());
        let parsed = parse_rows(&render_parallel_json(&rows)).expect("gate must parse the emit");
        assert_eq!(parsed.len(), rows.len());
        for row in &parsed {
            assert!(matches!(row.get("speedup"), Some(JsonValue::Num(s)) if *s > 0.0));
            assert!(matches!(row.get("threads"), Some(JsonValue::Num(t)) if *t >= 1.0));
            assert!(matches!(row.get("cores"), Some(JsonValue::Num(c)) if *c >= 1.0));
        }
        // Strategy labels keep every row key unique per thread count.
        let keys: std::collections::BTreeSet<String> =
            parsed.iter().map(crate::bench_gate::row_key).collect();
        assert_eq!(keys.len(), parsed.len(), "row keys must be unique");
    }

    #[test]
    fn probe_is_silent_when_engines_agree() {
        assert!(parallel_agreement_probe(2, &Budget::small()).is_empty());
    }

    /// The full agreement matrix: every thread count of the grid × all
    /// three evaluation protocols × symmetry off/on × in-memory and disk
    /// frontiers. Verdicts and order-independent counters must match the
    /// sequential BFS reference everywhere — work stealing may reorder
    /// expansions within a level, never change what is explored.
    #[test]
    fn pooled_engine_agrees_with_sequential_bfs_across_the_matrix() {
        use mp_protocols::storage::{
            quorum_model as storage_quorum, regularity_property, symmetry_roles as storage_roles,
            RegularityObserver, StorageSetting,
        };
        use mp_store::FrontierConfig;

        for frontier in [FrontierConfig::Mem, FrontierConfig::disk_with_watermark(64)] {
            let budget = Budget::small().with_frontier(frontier);

            // Paxos and echo multicast (NullObserver cells) through the
            // sweep itself.
            let (paxos, multicast) = smoke_cells();
            let rows = parallel_scaling_sweep(&THREAD_GRID, paxos, multicast, &budget);
            assert_eq!(rows.len(), 2 * 2 * THREAD_GRID.len());
            for row in &rows {
                assert!(
                    row.agrees,
                    "disagreement under {frontier:?}:\n{}",
                    render_parallel_sweep(&rows)
                );
            }

            // Regular storage carries a history-variable observer, which
            // the pooled engine must permute and thread exactly like the
            // sequential one.
            let setting = StorageSetting::new(2, 1);
            let spec = storage_quorum(setting);
            let roles = storage_roles(setting);
            for sym in [false, true] {
                let run = |config: CheckerConfig| {
                    let checker = Checker::with_observer(
                        &spec,
                        regularity_property(setting),
                        RegularityObserver::new(setting),
                    )
                    .spor()
                    .config(budget.apply(config));
                    if sym {
                        checker.with_role_symmetry(&roles).run()
                    } else {
                        checker.run()
                    }
                };
                let reference = run(CheckerConfig::stateful_bfs());
                assert!(reference.verdict.is_verified());
                for threads in THREAD_GRID {
                    let pooled = run(CheckerConfig::parallel_bfs(threads));
                    assert_eq!(
                        pooled.verdict.to_string(),
                        reference.verdict.to_string(),
                        "storage sym={sym} threads={threads} {frontier:?}"
                    );
                    assert_eq!(
                        pooled.stats.counters(),
                        reference.stats.counters(),
                        "storage sym={sym} threads={threads} {frontier:?}"
                    );
                    assert_eq!(pooled.stats.worker_threads, threads);
                    assert_eq!(pooled.stats.worker_spawns, threads);
                }
            }
        }
    }
}
