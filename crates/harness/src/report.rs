//! Measurement rows and plain-text/CSV rendering.

use std::fmt;
use std::time::Duration;

use mp_trace::PhaseTimes;

/// One cell of an evaluation table: a protocol/property/strategy combination
/// with the measured state count and time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// Protocol and setting, e.g. "Paxos (2,3,1)".
    pub protocol: String,
    /// Property under verification, e.g. "Consensus".
    pub property: String,
    /// Search strategy label, e.g. "SPOR" or "DPOR (stateless)".
    pub strategy: String,
    /// Number of states stored/expanded.
    pub states: usize,
    /// Number of transitions executed.
    pub transitions: usize,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// The verdict string ("verified", "CE (n steps)", "bounded (...)" ).
    pub verdict: String,
    /// `false` if the run hit its budget before finishing.
    pub completed: bool,
    /// `true` if the verdict matches the expectation for the row (verified
    /// vs counterexample), or the run was bounded.
    pub as_expected: bool,
    /// Peak bytes queued in the BFS frontier, when the row was produced by
    /// a breadth-first engine (0 for the depth-first and stateless rows,
    /// which have no frontier). Recorded in `BENCH_*.json` so the CI gate
    /// can watch the spill trajectory.
    pub frontier_bytes: usize,
    /// Worker-pool size when the row was produced by the parallel BFS
    /// engine (0 for the sequential rows). Every parallel-engine row in a
    /// `BENCH_*.json` carries this as a `threads` field; sequential rows
    /// omit it.
    pub threads: usize,
    /// Per-phase wall-clock breakdown of the run (all zero when tracing is
    /// disabled, which is the default for every bench baseline). Emitted
    /// into `BENCH_*.json` as flat `phase_<name>_ms` fields so the CI gate
    /// can watch a phase's *share* of the traced time drift.
    pub phases: PhaseTimes,
}

impl Measurement {
    /// Human-readable duration (e.g. `1.2s`, `350ms`).
    pub fn time_label(&self) -> String {
        let secs = self.time.as_secs_f64();
        if secs >= 60.0 {
            format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
        } else if secs >= 1.0 {
            format!("{secs:.2}s")
        } else {
            format!("{:.0}ms", secs * 1000.0)
        }
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {}: {} states in {} ({})",
            self.protocol,
            self.property,
            self.strategy,
            self.states,
            self.time_label(),
            self.verdict
        )
    }
}

/// Renders measurements as an aligned text table grouped the way the paper's
/// tables are: one line per protocol row, one column pair (states, time) per
/// strategy.
pub fn render_table(title: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');

    // Preserve first-appearance order of protocols and strategies.
    let mut protocols: Vec<(String, String)> = Vec::new();
    let mut strategies: Vec<String> = Vec::new();
    for row in rows {
        let key = (row.protocol.clone(), row.property.clone());
        if !protocols.contains(&key) {
            protocols.push(key);
        }
        if !strategies.contains(&row.strategy) {
            strategies.push(row.strategy.clone());
        }
    }

    let proto_width = protocols
        .iter()
        .map(|(p, prop)| p.len() + prop.len() + 3)
        .chain(["protocol / property".len()])
        .max()
        .unwrap_or(20);
    let col_width = 26usize;

    out.push_str(&format!("{:<proto_width$}", "protocol / property"));
    for s in &strategies {
        out.push_str(&format!(" | {s:^col_width$}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<proto_width$}", ""));
    for _ in &strategies {
        out.push_str(&format!(" | {:^col_width$}", "states / time / verdict"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(proto_width + strategies.len() * (col_width + 3)));
    out.push('\n');

    for (protocol, property) in &protocols {
        out.push_str(&format!(
            "{:<proto_width$}",
            format!("{protocol} [{property}]")
        ));
        for strategy in &strategies {
            let cell = rows.iter().find(|r| {
                &r.protocol == protocol && &r.property == property && &r.strategy == strategy
            });
            match cell {
                Some(m) => {
                    let marker = if m.completed { "" } else { ">" };
                    out.push_str(&format!(
                        " | {:^col_width$}",
                        format!(
                            "{}{} / {} / {}",
                            marker,
                            m.states,
                            m.time_label(),
                            m.verdict
                        )
                    ));
                }
                None => out.push_str(&format!(" | {:^col_width$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the flat phase-time JSON fields of a phase breakdown (leading
/// comma included), shared by every `BENCH_*.json` emitter. Each phase gets
/// a `phase_<name>_ms` field (the historical unit, kept for old baselines)
/// and a `phase_<name>_us` sibling — smoke-scale runs finish whole phases
/// inside a millisecond, so the `_ms` column reads all-zero exactly where
/// the share-drift gate needs signal most. `bench_gate` prefers the `_us`
/// family when both sides of a comparison carry it.
pub fn phase_json_fields(phases: &PhaseTimes) -> String {
    let mut out = String::new();
    for (phase, time) in phases.iter() {
        out.push_str(&format!(
            ",\"phase_{}_ms\":{},\"phase_{}_us\":{}",
            phase.name(),
            time.as_millis(),
            phase.name(),
            time.as_micros()
        ));
    }
    out
}

/// Renders measurements as a JSON array (for the `BENCH_*.json` files the
/// binaries can emit so the bench trajectory is machine-readable).
pub fn render_json(rows: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in rows.iter().enumerate() {
        let threads_field = if m.threads > 0 {
            format!(",\"threads\":{}", m.threads)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {{\"protocol\":\"{}\",\"property\":\"{}\",\"strategy\":\"{}\",\"states\":{},\
             \"transitions\":{},\"time_ms\":{},\"verdict\":\"{}\",\"completed\":{},\
             \"frontier_bytes\":{}{}{}}}{}\n",
            json_escape(&m.protocol),
            json_escape(&m.property),
            json_escape(&m.strategy),
            m.states,
            m.transitions,
            m.time.as_millis(),
            json_escape(&m.verdict),
            m.completed,
            m.frontier_bytes,
            threads_field,
            phase_json_fields(&m.phases),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Parses the shared `--json [PATH]` CLI convention of the harness
/// binaries: returns `None` when `--json` is absent, `Some(default)` when it
/// is given without a path (the next argument is another flag or missing),
/// and `Some(path)` otherwise. Keeping the convention in one place is what
/// lets every binary emit its `BENCH_*.json`.
pub fn json_output_path(args: &[String], default: &str) -> Option<String> {
    let at = args.iter().position(|a| a == "--json")?;
    match args.get(at + 1) {
        Some(next) if !next.starts_with("--") => Some(next.clone()),
        _ => Some(default.to_string()),
    }
}

/// Writes measurement rows as a JSON array to `path` and reports the write
/// on stderr — the shared tail of every binary's `--json` handling.
///
/// # Panics
///
/// Panics when the file cannot be written; the binaries treat that as fatal.
pub fn write_json_rows(path: &str, rows: &[Measurement]) {
    std::fs::write(path, render_json(rows)).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {} rows to {path}", rows.len());
}

/// Renders measurements as CSV (one row per measurement).
pub fn render_csv(rows: &[Measurement]) -> String {
    let mut out =
        String::from("protocol,property,strategy,states,transitions,time_ms,verdict,completed\n");
    for m in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            m.protocol,
            m.property,
            m.strategy,
            m.states,
            m.transitions,
            m.time.as_millis(),
            m.verdict.replace(',', ";"),
            m.completed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(protocol: &str, strategy: &str, states: usize) -> Measurement {
        Measurement {
            protocol: protocol.to_string(),
            property: "p".to_string(),
            strategy: strategy.to_string(),
            states,
            transitions: states * 2,
            time: Duration::from_millis(1500),
            verdict: "verified".to_string(),
            completed: true,
            as_expected: true,
            frontier_bytes: 0,
            threads: 0,
            phases: PhaseTimes::default(),
        }
    }

    #[test]
    fn threads_field_marks_parallel_rows_only() {
        let mut pooled = sample("p", "parallel-bfs(4)+SPOR", 10);
        pooled.threads = 4;
        let json = render_json(&[sample("p", "SPOR", 10), pooled]);
        assert_eq!(json.matches("\"threads\":").count(), 1, "{json}");
        assert!(json.contains("\"threads\":4"), "{json}");
    }

    #[test]
    fn time_labels() {
        let mut m = sample("a", "s", 1);
        assert_eq!(m.time_label(), "1.50s");
        m.time = Duration::from_millis(20);
        assert_eq!(m.time_label(), "20ms");
        m.time = Duration::from_secs(90);
        assert_eq!(m.time_label(), "1m30s");
    }

    #[test]
    fn table_contains_all_cells() {
        let rows = vec![
            sample("Paxos (2,3,1)", "SPOR", 100),
            sample("Paxos (2,3,1)", "DPOR (stateless)", 400),
            sample("Storage (3,1)", "SPOR", 50),
        ];
        let table = render_table("Table I", &rows);
        assert!(table.contains("Table I"));
        assert!(table.contains("Paxos (2,3,1)"));
        assert!(table.contains("Storage (3,1)"));
        assert!(table.contains("SPOR"));
        assert!(table.contains("DPOR (stateless)"));
        assert!(table.contains("100"));
        // The storage row has no DPOR cell: rendered as '-'.
        assert!(table.contains('-'));
    }

    #[test]
    fn json_is_an_array_of_objects() {
        let rows = vec![sample("p1", "s1", 10), sample("p2", "s2", 20)];
        let json = render_json(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"protocol\"").count(), 2);
        assert!(json.contains("\"states\":10"));
        assert!(json.contains("\"time_ms\":1500"));
        // Exactly one separating comma between the two objects.
        assert_eq!(json.matches("},\n").count(), 1);
        // Every row carries the full flat phase breakdown (zeros when
        // tracing was disabled).
        assert_eq!(json.matches("\"phase_expansion_ms\":").count(), 2);
        assert_eq!(json.matches("\"phase_expansion_us\":").count(), 2);
        assert_eq!(json.matches("\"phase_scc_backstop_ms\":0").count(), 2);
    }

    #[test]
    fn phase_fields_report_milliseconds_and_microseconds() {
        let mut nanos = [0u64; mp_trace::PHASE_COUNT];
        nanos[0] = 7_000_000; // 7 ms of expansion
        nanos[1] = 250_000; // 250 µs of store lookup — invisible in ms
        let mut m = sample("p", "s", 1);
        m.phases = PhaseTimes::from_nanos(nanos);
        let json = render_json(&[m]);
        assert!(json.contains("\"phase_expansion_ms\":7"), "{json}");
        assert!(json.contains("\"phase_expansion_us\":7000"), "{json}");
        // The sub-millisecond phase only shows up in the _us column.
        assert!(json.contains("\"phase_store_lookup_ms\":0"), "{json}");
        assert!(json.contains("\"phase_store_lookup_us\":250"), "{json}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![sample("p1", "s1", 10)];
        let csv = render_csv(&rows);
        assert!(csv.starts_with("protocol,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("p1,p,s1,10,20,1500,verified,true"));
    }

    #[test]
    fn json_output_path_follows_the_flag_convention() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(json_output_path(&to_args(&["bin"]), "d.json"), None);
        assert_eq!(
            json_output_path(&to_args(&["bin", "--json"]), "d.json"),
            Some("d.json".to_string())
        );
        assert_eq!(
            json_output_path(&to_args(&["bin", "--json", "out.json"]), "d.json"),
            Some("out.json".to_string())
        );
        assert_eq!(
            json_output_path(&to_args(&["bin", "--json", "--full"]), "d.json"),
            Some("d.json".to_string())
        );
    }

    #[test]
    fn display_is_one_line() {
        let m = sample("p", "s", 5);
        assert_eq!(m.to_string().lines().count(), 1);
    }
}
