//! Shared experiment-cell runner.

use std::path::PathBuf;
use std::time::Duration;

use mp_checker::{Checker, CheckerConfig, Invariant, Observer, Tracer, Verdict};
use mp_model::{LocalState, Message, ProtocolSpec};
use mp_por::SeedHeuristic;
use mp_store::{FrontierConfig, StoreConfig};

use crate::report::Measurement;

/// Resource budget applied to every experiment cell. The defaults keep the
/// whole table runnable on a laptop in minutes; `--full` in the binaries
/// lifts them to paper-scale.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum states stored/expanded per cell.
    pub max_states: usize,
    /// Wall-clock budget per cell.
    pub time_limit: Option<Duration>,
    /// Visited-store backend used by the stateful cells (`mp-store`). The
    /// exact store is the default; a fingerprint store lets paper-scale
    /// sweeps fit in memory at the price of a probabilistic `Verified`.
    pub store: StoreConfig,
    /// BFS frontier backend used by the breadth-first cells (`mp-store`).
    /// The in-memory frontier is the default; the disk frontier spills
    /// encoded states past its watermark so paper-scale sweeps keep their
    /// level queues on disk next to a compact visited set.
    pub frontier: FrontierConfig,
    /// Batch size fed to the parallel engine's worker pool per round
    /// (`CheckerConfig::batch_size`); `0` keeps the engine's automatic
    /// `threads * 64`. The sequential cells ignore it.
    pub batch_size: usize,
    /// Observability sink (`mp-trace`) forwarded into every cell's
    /// [`CheckerConfig`]. The default disabled tracer keeps every
    /// instrumentation point a no-op; the binaries' `--progress` /
    /// `--trace PATH` flags install an enabled one.
    pub trace: Tracer,
    /// Root directory for per-cell checkpoint/resume state (`None` runs
    /// without checkpoints). Each cell checkpoints into its own
    /// subdirectory, so a killed sweep resumes every cell at its last
    /// committed BFS level. [`Budget::apply`] does **not** forward this —
    /// the sweep derives the per-cell [`mp_checker::CheckpointConfig`]
    /// itself.
    pub checkpoint_dir: Option<PathBuf>,
    /// Commit a checkpoint every this-many BFS levels (min 1).
    pub checkpoint_every: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: 150_000,
            time_limit: Some(Duration::from_secs(30)),
            store: StoreConfig::Exact,
            frontier: FrontierConfig::Mem,
            batch_size: 0,
            trace: Tracer::disabled(),
            checkpoint_dir: None,
            checkpoint_every: 1,
        }
    }
}

impl Budget {
    /// An effectively unbounded budget (paper-scale runs).
    pub fn unbounded() -> Self {
        Budget {
            max_states: usize::MAX / 2,
            time_limit: None,
            ..Self::default()
        }
    }

    /// A tight budget used by smoke tests and benchmarks.
    pub fn small() -> Self {
        Budget {
            max_states: 20_000,
            time_limit: Some(Duration::from_secs(10)),
            ..Self::default()
        }
    }

    /// Selects the visited-store backend (builder style).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// Selects the BFS frontier backend (builder style).
    pub fn with_frontier(mut self, frontier: FrontierConfig) -> Self {
        self.frontier = frontier;
        self
    }

    /// Sets the parallel engine's worker-pool batch size (builder style);
    /// `0` keeps the automatic `threads * 64`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Installs an observability tracer (builder style); every cell run
    /// under this budget then emits heartbeat/NDJSON events and records its
    /// phase breakdown.
    pub fn with_trace(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }

    /// Roots per-cell checkpoint directories under `dir` (builder style).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the checkpoint cadence in BFS levels (builder style; min 1).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Applies the budget's limits, store, frontier and tracer choices to a
    /// configuration.
    pub fn apply(&self, mut config: CheckerConfig) -> CheckerConfig {
        config.max_states = self.max_states;
        config.time_limit = self.time_limit;
        config.store = self.store;
        config.frontier = self.frontier;
        config.batch_size = self.batch_size;
        config.trace = self.trace.clone();
        config
    }
}

/// The search/reduction strategies appearing as columns in the paper's
/// tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellStrategy {
    /// Unreduced stateful depth-first search.
    UnreducedStateful,
    /// Stateful depth-first search with static POR (the MP-LPOR analogue).
    SporStateful,
    /// Stateful DFS with static POR and an explicit seed heuristic.
    SporWithHeuristic(SeedHeuristic),
    /// Stateless depth-first search with dynamic POR (the Basset baseline).
    DporStateless,
    /// Stateless depth-first search without reduction.
    UnreducedStateless,
    /// SPOR-reduced breadth-first search on the persistent worker pool
    /// (extension; `0` threads = available CPUs). Verdicts and counter
    /// sums match the sequential cells; only the wall clock moves.
    ParallelBfs {
        /// Worker-pool size.
        threads: usize,
    },
}

impl CellStrategy {
    /// Column label used in reports.
    pub fn label(&self) -> String {
        match self {
            CellStrategy::UnreducedStateful => "unreduced".to_string(),
            CellStrategy::SporStateful => "SPOR".to_string(),
            CellStrategy::SporWithHeuristic(h) => format!("SPOR[{}]", h.name()),
            CellStrategy::DporStateless => "DPOR (stateless)".to_string(),
            CellStrategy::UnreducedStateless => "stateless".to_string(),
            CellStrategy::ParallelBfs { threads } => format!("parallel-bfs({threads})+SPOR"),
        }
    }
}

/// Runs one experiment cell: a protocol + property + observer under a
/// strategy and budget, returning a [`Measurement`] row.
#[allow(clippy::too_many_arguments)] // an experiment cell genuinely has this many axes
pub fn run_cell<S, M, O>(
    protocol_label: &str,
    property_label: &str,
    expect_violation: bool,
    spec: &ProtocolSpec<S, M>,
    property: Invariant<S, M, O>,
    observer: O,
    strategy: CellStrategy,
    budget: &Budget,
) -> Measurement
where
    S: LocalState,
    M: Message,
    O: Observer<S, M>,
{
    let checker = Checker::with_observer(spec, property, observer);
    let checker = match strategy {
        CellStrategy::UnreducedStateful => checker
            .unreduced()
            .config(budget.apply(CheckerConfig::stateful_dfs())),
        CellStrategy::SporStateful => checker
            .spor()
            .config(budget.apply(CheckerConfig::stateful_dfs())),
        CellStrategy::SporWithHeuristic(h) => checker
            .spor_with_heuristic(h)
            .config(budget.apply(CheckerConfig::stateful_dfs())),
        CellStrategy::DporStateless => checker.config(budget.apply(CheckerConfig::stateless(true))),
        CellStrategy::UnreducedStateless => {
            checker.config(budget.apply(CheckerConfig::stateless(false)))
        }
        CellStrategy::ParallelBfs { threads } => checker
            .spor()
            .config(budget.apply(CheckerConfig::parallel_bfs(threads))),
    };
    let report = checker.run();

    let (verdict, completed, as_expected) = match &report.verdict {
        Verdict::Verified => ("verified".to_string(), true, !expect_violation),
        Verdict::Violated(cx) => (format!("CE ({} steps)", cx.len()), true, expect_violation),
        Verdict::LimitReached { what } => (format!("bounded ({what})"), false, true),
    };

    Measurement {
        protocol: protocol_label.to_string(),
        property: property_label.to_string(),
        strategy: strategy.label(),
        states: report.stats.states,
        transitions: report.stats.transitions_executed,
        time: report.stats.elapsed,
        verdict,
        completed,
        as_expected,
        frontier_bytes: report.stats.frontier_peak_bytes,
        threads: report.stats.worker_threads,
        phases: report.stats.phases.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::NullObserver;
    use mp_protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};

    #[test]
    fn run_cell_produces_sensible_measurements() {
        let setting = CollectSetting::new(3, 2, 1);
        let spec = collect_model(setting, true);
        let m = run_cell(
            "collect(3,2,1)",
            "soundness",
            false,
            &spec,
            collect_soundness_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            &Budget::small(),
        );
        assert!(m.completed);
        assert!(m.as_expected);
        assert_eq!(m.verdict, "verified");
        assert!(m.states > 1);
        assert_eq!(m.strategy, "SPOR");
    }

    #[test]
    fn budget_limits_are_applied() {
        let setting = CollectSetting::new(4, 2, 2);
        let spec = collect_model(setting, false);
        let tiny = Budget {
            max_states: 10,
            time_limit: None,
            ..Budget::default()
        };
        let m = run_cell(
            "collect",
            "true",
            false,
            &spec,
            mp_protocols::sweep::collect_true_property(),
            NullObserver,
            CellStrategy::UnreducedStateful,
            &tiny,
        );
        assert!(!m.completed);
        assert!(m.verdict.contains("bounded"));
    }

    #[test]
    fn budget_store_choice_reaches_the_engine() {
        let setting = CollectSetting::new(3, 2, 1);
        let spec = collect_model(setting, true);
        let exact = run_cell(
            "collect(3,2,1)",
            "soundness",
            false,
            &spec,
            collect_soundness_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            &Budget::small(),
        );
        let fp = run_cell(
            "collect(3,2,1)",
            "soundness",
            false,
            &spec,
            collect_soundness_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            &Budget::small().with_store(mp_store::StoreConfig::fingerprint(48)),
        );
        assert_eq!(exact.verdict, fp.verdict);
        assert_eq!(exact.states, fp.states);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(CellStrategy::SporStateful.label(), "SPOR");
        assert_eq!(CellStrategy::DporStateless.label(), "DPOR (stateless)");
        assert!(CellStrategy::SporWithHeuristic(SeedHeuristic::Transaction)
            .label()
            .contains("transaction"));
    }
}
