//! Section II-C — state-space inflation of single-message models.
//!
//! The paper argues that replacing a quorum transition that consumes `l`
//! messages by single-message transitions inflates the state space by
//! roughly `(k + l)²`. This experiment measures the actual inflation on two
//! families:
//!
//! * the parametric quorum-collection protocol of
//!   [`mp_protocols::sweep`], sweeping the quorum size, and
//! * Paxos with a growing number of acceptors (hence a growing majority).

use mp_checker::{Checker, CheckerConfig, NullObserver};
use mp_model::StateGraph;
use mp_protocols::paxos::{
    consensus_property, quorum_model, single_message_model, symmetry_roles, PaxosSetting,
    PaxosVariant,
};
use mp_protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};
use mp_store::StoreConfig;

use crate::runner::run_cell;
use crate::{Budget, CellStrategy, Measurement};

/// One point of the quorum-size sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalingPoint {
    /// Description of the configuration (voters, quorum).
    pub label: String,
    /// Quorum size of the collect transition.
    pub quorum: usize,
    /// Reachable states of the quorum-transition model.
    pub quorum_states: usize,
    /// Reachable states of the single-message model.
    pub single_states: usize,
}

impl ScalingPoint {
    /// The measured inflation factor (single-message / quorum states).
    pub fn inflation(&self) -> f64 {
        self.single_states as f64 / self.quorum_states as f64
    }
}

/// Sweeps the quorum size of the collection protocol and returns the state
/// counts of both modelling styles (full state graphs, no reduction — this
/// measures model size, not search quality).
pub fn collect_sweep(voters: usize, collectors: usize, max_states: usize) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for quorum in 1..=voters {
        let setting = CollectSetting::new(voters, quorum, collectors);
        let quorum_states = StateGraph::build(&collect_model(setting, true), max_states)
            .map(|g| g.num_states())
            .unwrap_or(max_states);
        let single_states = StateGraph::build(&collect_model(setting, false), max_states)
            .map(|g| g.num_states())
            .unwrap_or(max_states);
        points.push(ScalingPoint {
            label: format!("collect: {voters} voters, quorum {quorum}, {collectors} collector(s)"),
            quorum,
            quorum_states,
            single_states,
        });
    }
    points
}

/// Measures quorum vs single-message Paxos as the number of acceptors (and
/// with it the majority quorum) grows, using SPOR for both so the comparison
/// matches Table I's middle and right columns. The two modelling styles get
/// distinct protocol labels so every row has a unique
/// (protocol, property, strategy) key — which is what the CI bench gate
/// matches baseline rows on.
pub fn paxos_sweep(max_acceptors: usize, budget: &Budget) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for acceptors in 1..=max_acceptors {
        let setting = PaxosSetting::new(1, acceptors, 1);
        rows.push(run_cell(
            &format!("Paxos {setting} single-message"),
            "Consensus",
            false,
            &single_message_model(setting, PaxosVariant::Correct),
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
        rows.push(run_cell(
            &format!("Paxos {setting} quorum"),
            "Consensus",
            false,
            &quorum_model(setting, PaxosVariant::Correct),
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
    }
    rows
}

/// One row of the symmetry (orbit-reduction) scaling comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct SymmetryPoint {
    /// Configuration label, e.g. "Paxos (1,3,1) quorum".
    pub label: String,
    /// Order of the validated symmetry group (acceptors! × learners!).
    pub group_order: usize,
    /// States of the plain SPOR run.
    pub states: usize,
    /// States of the SPOR+symmetry run (orbit representatives).
    pub sym_states: usize,
    /// Wall time of the plain run.
    pub time: std::time::Duration,
    /// Wall time of the symmetric run.
    pub sym_time: std::time::Duration,
    /// `true` if both runs produced the same verdict class.
    pub verdicts_agree: bool,
}

impl SymmetryPoint {
    /// The orbit-collapse ratio (plain states per symmetric state).
    pub fn state_ratio(&self) -> f64 {
        self.states as f64 / self.sym_states.max(1) as f64
    }

    /// The wall-time ratio (plain time per symmetric time; > 1 means the
    /// reduction also paid for itself in time).
    pub fn time_ratio(&self) -> f64 {
        let sym = self.sym_time.as_secs_f64();
        if sym == 0.0 {
            1.0
        } else {
            self.time.as_secs_f64() / sym
        }
    }
}

/// Measures the orbit collapse of the Paxos acceptor symmetry as the
/// acceptor set grows: the validated group order is `acceptors!`, so the
/// reduction compounds with the quorum-model savings. Returns the per-point
/// ratios plus `Measurement` rows (strategy-labelled by the engine, e.g.
/// `SPOR+sym(6)`) that the `quorum_scaling` binary appends to
/// `BENCH_quorum_scaling.json` so the trajectory is gated in CI.
pub fn paxos_symmetry_sweep(
    max_acceptors: usize,
    budget: &Budget,
) -> (Vec<SymmetryPoint>, Vec<Measurement>) {
    use mp_symmetry::SymmetryGroup;

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for acceptors in 1..=max_acceptors {
        let setting = PaxosSetting::new(1, acceptors, 1);
        let label = format!("Paxos {setting} quorum");
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let roles = symmetry_roles(setting);
        let group_order = SymmetryGroup::build(&spec, &roles).order();
        let run = |symmetry: bool| {
            let checker = Checker::new(&spec, consensus_property(setting))
                .spor()
                .config(budget.apply(CheckerConfig::stateful_dfs()));
            let checker = if symmetry {
                checker.with_role_symmetry(&roles)
            } else {
                checker
            };
            checker.run()
        };
        let plain = run(false);
        let sym = run(true);
        points.push(SymmetryPoint {
            label: label.clone(),
            group_order,
            states: plain.stats.states,
            sym_states: sym.stats.states,
            time: plain.stats.elapsed,
            sym_time: sym.stats.elapsed,
            verdicts_agree: plain.verdict.is_violated() == sym.verdict.is_violated()
                && plain.verdict.is_verified() == sym.verdict.is_verified(),
        });
        rows.push(Measurement {
            protocol: label,
            property: "Consensus".to_string(),
            strategy: format!("SPOR+sym({group_order})"),
            states: sym.stats.states,
            transitions: sym.stats.transitions_executed,
            time: sym.stats.elapsed,
            verdict: sym.verdict.to_string(),
            completed: !matches!(sym.verdict, mp_checker::Verdict::LimitReached { .. }),
            as_expected: sym.verdict.is_verified(),
            frontier_bytes: sym.stats.frontier_peak_bytes,
            threads: sym.stats.worker_threads,
            phases: sym.stats.phases.clone(),
        });
    }
    (points, rows)
}

/// Renders the symmetry scaling comparison as a small text table.
pub fn render_symmetry_sweep(points: &[SymmetryPoint]) -> String {
    let mut out = String::from(
        "configuration                |  |G| |   states | sym states | state ratio | time ratio | verdicts\n",
    );
    out.push_str(
        "-----------------------------+------+----------+------------+-------------+------------+---------\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<28} | {:>4} | {:>8} | {:>10} | {:>10.2}x | {:>9.2}x | {}\n",
            p.label,
            p.group_order,
            p.states,
            p.sym_states,
            p.state_ratio(),
            p.time_ratio(),
            if p.verdicts_agree {
                "agree"
            } else {
                "DISAGREE"
            }
        ));
    }
    out
}

/// One row of the disk-frontier (spill) scaling comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierPoint {
    /// Configuration label, e.g. "Paxos (1,3,1) quorum".
    pub label: String,
    /// States explored (identical for both frontiers by construction).
    pub states: usize,
    /// Peak frontier bytes of the spilled run (exact encoded bytes).
    pub disk_peak_bytes: usize,
    /// Total bytes the spilled run wrote to disk.
    pub spilled_bytes: usize,
    /// `true` if the spilled run reproduced the in-memory run's verdict
    /// and state count exactly.
    pub agrees: bool,
}

/// Watermark of the scaling sweep's spilled runs. The growing-acceptor
/// quorum models have frontier levels of a few hundred bytes to a few KiB,
/// so this is small enough that every point past the trivial one writes
/// real spill segments.
pub const SCALING_SPILL_WATERMARK: usize = 64;

/// Measures the disk-backed BFS frontier on the growing-acceptor Paxos
/// quorum models: every point runs the consensus check twice — in-memory
/// frontier vs disk frontier at [`SCALING_SPILL_WATERMARK`] (small enough
/// to force multi-segment spilling) — and asserts exact verdict/state
/// agreement. Returns the per-point byte accounting plus
/// `Measurement` rows (strategy `"SPOR (BFS+spill)"`, `frontier_bytes`
/// recorded) that the `quorum_scaling` binary appends to
/// `BENCH_quorum_scaling.json` so the spill trajectory is gated in CI.
pub fn paxos_frontier_sweep(
    max_acceptors: usize,
    budget: &Budget,
) -> (Vec<FrontierPoint>, Vec<Measurement>) {
    use mp_store::FrontierConfig;

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for acceptors in 1..=max_acceptors {
        let setting = PaxosSetting::new(1, acceptors, 1);
        let label = format!("Paxos {setting} quorum");
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let run = |frontier: FrontierConfig| {
            Checker::new(&spec, consensus_property(setting))
                .spor()
                .config(
                    budget
                        .clone()
                        .with_frontier(frontier)
                        .apply(CheckerConfig::stateful_bfs()),
                )
                .run()
        };
        let mem = run(FrontierConfig::Mem);
        let disk = run(FrontierConfig::disk_with_watermark(SCALING_SPILL_WATERMARK));
        points.push(FrontierPoint {
            label: label.clone(),
            states: disk.stats.states,
            disk_peak_bytes: disk.stats.frontier_peak_bytes,
            spilled_bytes: disk.stats.frontier_spilled_bytes,
            agrees: mem.verdict.to_string() == disk.verdict.to_string()
                && mem.stats.states == disk.stats.states,
        });
        rows.push(Measurement {
            protocol: label,
            property: "Consensus".to_string(),
            strategy: "SPOR (BFS+spill)".to_string(),
            states: disk.stats.states,
            transitions: disk.stats.transitions_executed,
            time: disk.stats.elapsed,
            verdict: disk.verdict.to_string(),
            completed: !matches!(disk.verdict, mp_checker::Verdict::LimitReached { .. }),
            as_expected: disk.verdict.is_verified(),
            frontier_bytes: disk.stats.frontier_peak_bytes,
            threads: disk.stats.worker_threads,
            phases: disk.stats.phases.clone(),
        });
    }
    (points, rows)
}

/// Renders the frontier scaling comparison as a small text table.
pub fn render_frontier_sweep(points: &[FrontierPoint]) -> String {
    let mut out = String::from(
        "configuration                |   states | frontier peak | spilled bytes | mem vs disk\n",
    );
    out.push_str(
        "-----------------------------+----------+---------------+---------------+------------\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<28} | {:>8} | {:>12}B | {:>12}B | {}\n",
            p.label,
            p.states,
            p.disk_peak_bytes,
            p.spilled_bytes,
            if p.agrees { "agree" } else { "DISAGREE" }
        ));
    }
    out
}

/// One row of the visited-store backend comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorePoint {
    /// Backend label ("exact", "sharded(64)", "fingerprint(48-bit)").
    pub backend: String,
    /// States explored.
    pub states: usize,
    /// Approximate peak bytes held by the visited-state store.
    pub store_bytes: usize,
    /// Verdict string of the run.
    pub verdict: String,
}

/// Verifies one quorum-scaling configuration of the collection protocol
/// with each `mp-store` backend under stateful DFS, so the memory savings
/// of hash compaction are measurable on the same workload. All backends
/// must report the same verdict (the fingerprint verdict is probabilistic
/// in theory, exact in practice at these state counts).
pub fn store_backend_sweep(
    setting: CollectSetting,
    quorum_style: bool,
    budget: &Budget,
) -> Vec<StorePoint> {
    let spec = collect_model(setting, quorum_style);
    [
        StoreConfig::Exact,
        StoreConfig::sharded(),
        StoreConfig::fingerprint(48),
    ]
    .into_iter()
    .map(|store| {
        let report = Checker::new(&spec, collect_soundness_property(setting))
            .config(
                budget
                    .clone()
                    .with_store(store)
                    .apply(CheckerConfig::stateful_dfs()),
            )
            .run();
        StorePoint {
            backend: store.to_string(),
            states: report.stats.states,
            store_bytes: report.stats.store_bytes,
            verdict: report.verdict.to_string(),
        }
    })
    .collect()
}

/// Renders the store comparison as a small text table.
pub fn render_store_sweep(points: &[StorePoint]) -> String {
    let mut out = String::from("backend              |    states | store bytes | verdict\n");
    out.push_str("---------------------+-----------+-------------+---------\n");
    for p in points {
        out.push_str(&format!(
            "{:<20} | {:>9} | {:>11} | {}\n",
            p.backend, p.states, p.store_bytes, p.verdict
        ));
    }
    out
}

/// Renders the collect sweep as a small text table.
pub fn render_sweep(points: &[ScalingPoint]) -> String {
    let mut out =
        String::from("quorum size | quorum-model states | single-message states | inflation\n");
    out.push_str("------------+---------------------+-----------------------+----------\n");
    for p in points {
        out.push_str(&format!(
            "{:>11} | {:>19} | {:>21} | {:>8.2}x\n",
            p.quorum,
            p.quorum_states,
            p.single_states,
            p.inflation()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_grows_with_quorum_size() {
        let points = collect_sweep(3, 1, 1_000_000);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.single_states >= p.quorum_states));
        assert!(
            points.last().unwrap().inflation() >= points.first().unwrap().inflation(),
            "inflation must not shrink as the quorum grows: {points:?}"
        );
        let rendered = render_sweep(&points);
        assert!(rendered.contains("inflation"));
        assert_eq!(rendered.lines().count(), 2 + points.len());
    }

    #[test]
    fn store_sweep_saves_memory_without_changing_the_verdict() {
        let points = store_backend_sweep(CollectSetting::new(3, 2, 1), false, &Budget::small());
        assert_eq!(points.len(), 3);
        let exact = &points[0];
        let fingerprint = &points[2];
        assert!(points.iter().all(|p| p.verdict == exact.verdict));
        assert!(points.iter().all(|p| p.states == exact.states));
        assert!(
            fingerprint.store_bytes < exact.store_bytes,
            "hash compaction must shrink the store: {points:?}"
        );
        let rendered = render_store_sweep(&points);
        assert!(rendered.contains("fingerprint"));
    }

    #[test]
    fn frontier_sweep_spills_and_agrees() {
        let (points, rows) = paxos_frontier_sweep(2, &Budget::small());
        assert_eq!(points.len(), 2);
        assert_eq!(rows.len(), 2);
        assert!(points.iter().all(|p| p.agrees), "{points:?}");
        assert!(points.iter().all(|p| p.disk_peak_bytes > 0));
        assert!(rows.iter().all(|r| r.strategy == "SPOR (BFS+spill)"));
        assert!(rows.iter().all(|r| r.frontier_bytes > 0));
        let rendered = render_frontier_sweep(&points);
        assert!(rendered.contains("frontier peak"));
        assert!(rendered.contains("agree"));
    }

    #[test]
    fn paxos_sweep_prefers_quorum_models() {
        let rows = paxos_sweep(2, &Budget::small());
        assert_eq!(rows.len(), 4);
        // For each acceptor count the quorum model (odd rows) must not be
        // larger than the single-message model (even rows).
        for pair in rows.chunks(2) {
            assert!(pair[1].states <= pair[0].states, "{pair:?}");
        }
    }
}
