//! Section II-C — state-space inflation of single-message models.
//!
//! The paper argues that replacing a quorum transition that consumes `l`
//! messages by single-message transitions inflates the state space by
//! roughly `(k + l)²`. This experiment measures the actual inflation on two
//! families:
//!
//! * the parametric quorum-collection protocol of
//!   [`mp_protocols::sweep`], sweeping the quorum size, and
//! * Paxos with a growing number of acceptors (hence a growing majority).

use mp_checker::{Checker, CheckerConfig, NullObserver};
use mp_model::StateGraph;
use mp_protocols::paxos::{
    consensus_property, quorum_model, single_message_model, PaxosSetting, PaxosVariant,
};
use mp_protocols::sweep::{collect_model, collect_soundness_property, CollectSetting};
use mp_store::StoreConfig;

use crate::runner::run_cell;
use crate::{Budget, CellStrategy, Measurement};

/// One point of the quorum-size sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalingPoint {
    /// Description of the configuration (voters, quorum).
    pub label: String,
    /// Quorum size of the collect transition.
    pub quorum: usize,
    /// Reachable states of the quorum-transition model.
    pub quorum_states: usize,
    /// Reachable states of the single-message model.
    pub single_states: usize,
}

impl ScalingPoint {
    /// The measured inflation factor (single-message / quorum states).
    pub fn inflation(&self) -> f64 {
        self.single_states as f64 / self.quorum_states as f64
    }
}

/// Sweeps the quorum size of the collection protocol and returns the state
/// counts of both modelling styles (full state graphs, no reduction — this
/// measures model size, not search quality).
pub fn collect_sweep(voters: usize, collectors: usize, max_states: usize) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for quorum in 1..=voters {
        let setting = CollectSetting::new(voters, quorum, collectors);
        let quorum_states = StateGraph::build(&collect_model(setting, true), max_states)
            .map(|g| g.num_states())
            .unwrap_or(max_states);
        let single_states = StateGraph::build(&collect_model(setting, false), max_states)
            .map(|g| g.num_states())
            .unwrap_or(max_states);
        points.push(ScalingPoint {
            label: format!("collect: {voters} voters, quorum {quorum}, {collectors} collector(s)"),
            quorum,
            quorum_states,
            single_states,
        });
    }
    points
}

/// Measures quorum vs single-message Paxos as the number of acceptors (and
/// with it the majority quorum) grows, using SPOR for both so the comparison
/// matches Table I's middle and right columns.
pub fn paxos_sweep(max_acceptors: usize, budget: &Budget) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for acceptors in 1..=max_acceptors {
        let setting = PaxosSetting::new(1, acceptors, 1);
        let label = format!("Paxos {setting}");
        rows.push(run_cell(
            &label,
            "Consensus",
            false,
            &single_message_model(setting, PaxosVariant::Correct),
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
        rows.push(run_cell(
            &label,
            "Consensus",
            false,
            &quorum_model(setting, PaxosVariant::Correct),
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
    }
    rows
}

/// One row of the visited-store backend comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorePoint {
    /// Backend label ("exact", "sharded(64)", "fingerprint(48-bit)").
    pub backend: String,
    /// States explored.
    pub states: usize,
    /// Approximate peak bytes held by the visited-state store.
    pub store_bytes: usize,
    /// Verdict string of the run.
    pub verdict: String,
}

/// Verifies one quorum-scaling configuration of the collection protocol
/// with each `mp-store` backend under stateful DFS, so the memory savings
/// of hash compaction are measurable on the same workload. All backends
/// must report the same verdict (the fingerprint verdict is probabilistic
/// in theory, exact in practice at these state counts).
pub fn store_backend_sweep(
    setting: CollectSetting,
    quorum_style: bool,
    budget: &Budget,
) -> Vec<StorePoint> {
    let spec = collect_model(setting, quorum_style);
    [
        StoreConfig::Exact,
        StoreConfig::sharded(),
        StoreConfig::fingerprint(48),
    ]
    .into_iter()
    .map(|store| {
        let report = Checker::new(&spec, collect_soundness_property(setting))
            .config(
                budget
                    .with_store(store)
                    .apply(CheckerConfig::stateful_dfs()),
            )
            .run();
        StorePoint {
            backend: store.to_string(),
            states: report.stats.states,
            store_bytes: report.stats.store_bytes,
            verdict: report.verdict.to_string(),
        }
    })
    .collect()
}

/// Renders the store comparison as a small text table.
pub fn render_store_sweep(points: &[StorePoint]) -> String {
    let mut out = String::from("backend              |    states | store bytes | verdict\n");
    out.push_str("---------------------+-----------+-------------+---------\n");
    for p in points {
        out.push_str(&format!(
            "{:<20} | {:>9} | {:>11} | {}\n",
            p.backend, p.states, p.store_bytes, p.verdict
        ));
    }
    out
}

/// Renders the collect sweep as a small text table.
pub fn render_sweep(points: &[ScalingPoint]) -> String {
    let mut out =
        String::from("quorum size | quorum-model states | single-message states | inflation\n");
    out.push_str("------------+---------------------+-----------------------+----------\n");
    for p in points {
        out.push_str(&format!(
            "{:>11} | {:>19} | {:>21} | {:>8.2}x\n",
            p.quorum,
            p.quorum_states,
            p.single_states,
            p.inflation()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_grows_with_quorum_size() {
        let points = collect_sweep(3, 1, 1_000_000);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.single_states >= p.quorum_states));
        assert!(
            points.last().unwrap().inflation() >= points.first().unwrap().inflation(),
            "inflation must not shrink as the quorum grows: {points:?}"
        );
        let rendered = render_sweep(&points);
        assert!(rendered.contains("inflation"));
        assert_eq!(rendered.lines().count(), 2 + points.len());
    }

    #[test]
    fn store_sweep_saves_memory_without_changing_the_verdict() {
        let points = store_backend_sweep(CollectSetting::new(3, 2, 1), false, &Budget::small());
        assert_eq!(points.len(), 3);
        let exact = &points[0];
        let fingerprint = &points[2];
        assert!(points.iter().all(|p| p.verdict == exact.verdict));
        assert!(points.iter().all(|p| p.states == exact.states));
        assert!(
            fingerprint.store_bytes < exact.store_bytes,
            "hash compaction must shrink the store: {points:?}"
        );
        let rendered = render_store_sweep(&points);
        assert!(rendered.contains("fingerprint"));
    }

    #[test]
    fn paxos_sweep_prefers_quorum_models() {
        let rows = paxos_sweep(2, &Budget::small());
        assert_eq!(rows.len(), 4);
        // For each acceptor count the quorum model (odd rows) must not be
        // larger than the single-message model (even rows).
        for pair in rows.chunks(2) {
            assert!(pair[1].states <= pair[0].states, "{pair:?}");
        }
    }
}
