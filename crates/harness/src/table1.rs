//! Table I — "Quorum semantics results".
//!
//! For every protocol setting of the paper's Table I, three cells are
//! measured:
//!
//! 1. the single-message ("no quorum") model under stateless DPOR — the
//!    Basset baseline (for regular storage the paper used unreduced stateful
//!    search instead, because its DPOR does not preserve the property; we do
//!    the same);
//! 2. the single-message model under SPOR (stateful);
//! 3. the quorum model under SPOR (stateful) — "our quorum results".

use mp_checker::NullObserver;
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as multicast_quorum, single_message_model as multicast_single,
    MulticastSetting,
};
use mp_protocols::paxos::{
    consensus_property, quorum_model as paxos_quorum, single_message_model as paxos_single,
    PaxosSetting, PaxosVariant,
};
use mp_protocols::storage::{
    quorum_model as storage_quorum, regularity_property, single_message_model as storage_single,
    wrong_regularity_property, RegularityObserver, StorageSetting,
};

use crate::runner::run_cell;
use crate::{Budget, CellStrategy, Measurement};

/// The Paxos settings used in the default (bounded) and `--full` runs. The
/// paper's Paxos (2,3,1) is tractable but long; the bounded default uses
/// (2,2,1) so the whole table finishes in minutes, and the full run uses the
/// paper's setting.
pub fn paxos_setting(full: bool) -> PaxosSetting {
    if full {
        PaxosSetting::new(2, 3, 1)
    } else {
        PaxosSetting::new(2, 2, 1)
    }
}

/// Runs every row of Table I and returns the measurements.
///
/// `full` selects the paper-scale protocol settings; the default uses
/// slightly smaller instances so that the entire table completes quickly.
pub fn table_i(budget: &Budget, full: bool) -> Vec<Measurement> {
    let mut rows = Vec::new();

    // --- Paxos ----------------------------------------------------------
    // The faulty-learner bug needs at least three acceptors to manifest
    // (with two, the majority is every acceptor and mixed-ballot quorums
    // cannot form), so the Faulty Paxos row always uses the paper's (2,3,1)
    // setting; it is cheap because the counterexample is found early.
    for (variant, prop_label, expect_ce) in [
        (PaxosVariant::Correct, "Consensus", false),
        (PaxosVariant::FaultyLearner, "Consensus (faulty)", true),
    ] {
        let setting = if expect_ce {
            PaxosSetting::new(2, 3, 1)
        } else {
            paxos_setting(full)
        };
        let single = paxos_single(setting, variant);
        let quorum = paxos_quorum(setting, variant);
        let row_label = if expect_ce {
            format!("Faulty Paxos {setting}")
        } else {
            format!("Paxos {setting}")
        };
        rows.push(run_cell(
            &row_label,
            prop_label,
            expect_ce,
            &single,
            consensus_property(setting),
            NullObserver,
            CellStrategy::DporStateless,
            budget,
        ));
        rows.push(run_cell(
            &row_label,
            prop_label,
            expect_ce,
            &single,
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
        rows.push(run_cell(
            &row_label,
            prop_label,
            expect_ce,
            &quorum,
            consensus_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
    }

    // --- Echo Multicast --------------------------------------------------
    let multicast_rows: Vec<(MulticastSetting, &str, bool)> = vec![
        (MulticastSetting::new(3, 0, 1, 1), "Agreement", false),
        (MulticastSetting::new(2, 1, 0, 1), "Agreement", false),
        (MulticastSetting::new(2, 1, 2, 1), "Wrong agreement", true),
    ];
    for (setting, prop_label, expect_ce) in multicast_rows {
        let label = format!("Echo Multicast {setting}");
        let single = multicast_single(setting);
        let quorum = multicast_quorum(setting);
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &single,
            agreement_property(setting),
            NullObserver,
            CellStrategy::DporStateless,
            budget,
        ));
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &single,
            agreement_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &quorum,
            agreement_property(setting),
            NullObserver,
            CellStrategy::SporStateful,
            budget,
        ));
    }

    // --- Regular storage -------------------------------------------------
    let storage_rows: Vec<(StorageSetting, &str, bool)> = vec![
        (StorageSetting::new(3, 1), "Regularity", false),
        (StorageSetting::new(3, 2), "Wrong regularity", true),
    ];
    for (setting, prop_label, expect_ce) in storage_rows {
        let label = format!("Regular storage {setting}");
        let single = storage_single(setting);
        let quorum = storage_quorum(setting);
        let property = |wrong: bool| {
            if wrong {
                wrong_regularity_property(setting)
            } else {
                regularity_property(setting)
            }
        };
        // The paper's DPOR does not preserve this property; like the paper we
        // fall back to unreduced (stateful) search for the first column.
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &single,
            property(expect_ce),
            RegularityObserver::new(setting),
            CellStrategy::UnreducedStateful,
            budget,
        ));
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &single,
            property(expect_ce),
            RegularityObserver::new(setting),
            CellStrategy::SporStateful,
            budget,
        ));
        rows.push(run_cell(
            &label,
            prop_label,
            expect_ce,
            &quorum,
            property(expect_ce),
            RegularityObserver::new(setting),
            CellStrategy::SporStateful,
            budget,
        ));
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_table_i_has_all_rows_and_expected_verdicts() {
        let rows = table_i(&Budget::small(), false);
        // 7 protocol rows × 3 strategies.
        assert_eq!(rows.len(), 21);
        for row in &rows {
            assert!(
                row.as_expected,
                "unexpected verdict for {} / {} / {}: {}",
                row.protocol, row.property, row.strategy, row.verdict
            );
        }
        // At least the cheap debugging rows (Faulty Paxos, wrong agreement)
        // must find their counterexamples even under the small budget; the
        // storage wrong-regularity cells may legitimately hit the bound.
        assert!(
            rows.iter()
                .filter(|r| r.protocol.contains("Faulty Paxos") || r.property == "Wrong agreement")
                .any(|r| r.verdict.starts_with("CE")),
            "no counterexample found in the debugging rows"
        );
    }
}
