//! Table II — "Transition refinement in action".
//!
//! Every protocol is modelled with quorum transitions and checked under
//! SPOR, once unsplit and once for each refinement strategy (reply-split,
//! quorum-split, combined-split). As in the paper, dynamic POR is not
//! combined with refinement: split transitions of the same process are
//! inter-dependent, so refinement cannot help DPOR.

use mp_checker::NullObserver;
use mp_protocols::echo_multicast::{
    agreement_property, quorum_model as multicast_quorum, MulticastSetting,
};
use mp_protocols::paxos::{consensus_property, quorum_model as paxos_quorum, PaxosVariant};
use mp_protocols::storage::{
    quorum_model as storage_quorum, regularity_property, wrong_regularity_property,
    RegularityObserver, StorageSetting,
};
use mp_refine::SplitStrategy;

use crate::runner::run_cell;
use crate::{Budget, CellStrategy, Measurement};

/// Runs every row of Table II and returns the measurements.
///
/// `full` selects the paper-scale settings (Paxos (2,3,1) and Echo Multicast
/// (3,1,1,1)); the bounded default replaces them with smaller instances so
/// the table finishes quickly.
pub fn table_ii(budget: &Budget, full: bool) -> Vec<Measurement> {
    let mut rows = Vec::new();

    // --- Paxos ----------------------------------------------------------
    // As in Table I, the faulty-learner row always uses the paper's (2,3,1)
    // setting because the bug needs at least three acceptors to manifest.
    for (variant, prop_label, expect_ce) in [
        (PaxosVariant::Correct, "Consensus", false),
        (PaxosVariant::FaultyLearner, "Consensus (faulty)", true),
    ] {
        let setting = if expect_ce {
            mp_protocols::paxos::PaxosSetting::new(2, 3, 1)
        } else {
            crate::table1::paxos_setting(full)
        };
        let base = paxos_quorum(setting, variant);
        let label = if expect_ce {
            format!("Faulty Paxos {setting}")
        } else {
            format!("Paxos {setting}")
        };
        for strategy in SplitStrategy::ALL {
            let split = strategy
                .apply(&base)
                .expect("refinement of the Paxos model succeeds");
            let mut m = run_cell(
                &label,
                prop_label,
                expect_ce,
                &split,
                consensus_property(setting),
                NullObserver,
                CellStrategy::SporStateful,
                budget,
            );
            m.strategy = strategy.label().to_string();
            rows.push(m);
        }
    }

    // --- Echo Multicast --------------------------------------------------
    let mut multicast_rows: Vec<(MulticastSetting, &str, bool)> = vec![
        (MulticastSetting::new(3, 0, 1, 1), "Agreement", false),
        (MulticastSetting::new(2, 1, 0, 1), "Agreement", false),
        (MulticastSetting::new(2, 1, 2, 1), "Wrong agreement", true),
    ];
    if full {
        multicast_rows.insert(2, (MulticastSetting::new(3, 1, 1, 1), "Agreement", false));
    }
    for (setting, prop_label, expect_ce) in multicast_rows {
        let base = multicast_quorum(setting);
        let label = format!("Echo Multicast {setting}");
        for strategy in SplitStrategy::ALL {
            let split = strategy
                .apply(&base)
                .expect("refinement of the multicast model succeeds");
            let mut m = run_cell(
                &label,
                prop_label,
                expect_ce,
                &split,
                agreement_property(setting),
                NullObserver,
                CellStrategy::SporStateful,
                budget,
            );
            m.strategy = strategy.label().to_string();
            rows.push(m);
        }
    }

    // --- Regular storage -------------------------------------------------
    let storage_rows: Vec<(StorageSetting, &str, bool)> = vec![
        (StorageSetting::new(3, 1), "Regularity", false),
        (StorageSetting::new(3, 2), "Wrong regularity", true),
    ];
    for (setting, prop_label, expect_ce) in storage_rows {
        let base = storage_quorum(setting);
        let label = format!("Regular storage {setting}");
        for strategy in SplitStrategy::ALL {
            let split = strategy
                .apply(&base)
                .expect("refinement of the storage model succeeds");
            let property = if expect_ce {
                wrong_regularity_property(setting)
            } else {
                regularity_property(setting)
            };
            let mut m = run_cell(
                &label,
                prop_label,
                expect_ce,
                &split,
                property,
                RegularityObserver::new(setting),
                CellStrategy::SporStateful,
                budget,
            );
            m.strategy = strategy.label().to_string();
            rows.push(m);
        }
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_table_ii_has_all_rows_and_expected_verdicts() {
        let rows = table_ii(&Budget::small(), false);
        // 7 protocol rows × 4 split strategies.
        assert_eq!(rows.len(), 28);
        for row in &rows {
            assert!(
                row.as_expected,
                "unexpected verdict for {} / {} / {}: {}",
                row.protocol, row.property, row.strategy, row.verdict
            );
        }
        let strategies: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.strategy.as_str()).collect();
        assert!(strategies.contains("combined-split"));
        assert!(strategies.contains("reply-split"));
        assert!(strategies.contains("quorum-split"));
    }
}
