//! Markdown rendering behind the `trace_report` binary.
//!
//! `mp_trace::analyze` turns an NDJSON trace into [`RunSummary`] values;
//! this module turns those into the human-facing artifacts CI publishes:
//! per-run summary tables, cross-run diff tables (the `diff` subcommand and
//! the gate's phase-drift evidence), the per-level timeline, and the
//! folded-stack flamegraph text. Everything renders to GitHub-flavoured
//! markdown except [`flame_text`], which is the raw collapsed-stack format
//! speedscope and inferno ingest.

use mp_trace::analyze::{analyze_stream, diff, RunSummary};
use mp_trace::{Gauge, Phase};

/// Reads and folds a whole trace file.
///
/// # Errors
///
/// The file being unreadable, or any validation error from
/// [`analyze_stream`], as a displayable message naming the path.
pub fn load_runs(path: &str) -> Result<Vec<RunSummary>, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    analyze_stream(contents.lines()).map_err(|e| format!("{path}: {e}"))
}

/// `protocol · strategy · property`, the run identity used in headings and
/// for pairing runs across two traces.
fn run_label(run: &RunSummary) -> String {
    format!("{} · {} · {}", run.protocol, run.strategy, run.property)
}

fn fmt_bytes(bytes: u64) -> String {
    match bytes {
        0..=1023 => format!("{bytes} B"),
        1024..=1048575 => format!("{:.1} KiB", bytes as f64 / 1024.0),
        _ => format!("{:.1} MiB", bytes as f64 / 1048576.0),
    }
}

/// Renders one gauge peak: every gauge is a byte figure except the
/// parallel pool's busiest-worker time, which is microseconds.
fn fmt_gauge(gauge: Gauge, peak: u64) -> String {
    match gauge {
        Gauge::WorkerBusyUs => format!("{peak} µs"),
        _ => fmt_bytes(peak),
    }
}

/// Renders one run's summary tables (verdict/counters, then the non-zero
/// phases with their shares, then the non-zero memory gauges).
fn run_summary_markdown(run: &RunSummary) -> String {
    let mut out = format!("### {}\n\n", run_label(run));
    out.push_str("| metric | value |\n|---|---|\n");
    out.push_str(&format!(
        "| verdict | {}{} |\n",
        run.verdict,
        if run.clean { "" } else { " (aborted)" }
    ));
    out.push_str(&format!("| states | {} |\n", run.states));
    out.push_str(&format!("| transitions | {} |\n", run.transitions));
    out.push_str(&format!("| elapsed | {} ms |\n", run.elapsed_ms));
    out.push_str(&format!("| peak depth | {} |\n", run.peak_depth));
    if run.steals > 0 {
        out.push_str(&format!("| steals | {} |\n", run.steals));
    }
    out.push_str(&format!(
        "| throughput p50 / p90 / max | {} / {} / {} states/s |\n",
        run.throughput.p50, run.throughput.p90, run.throughput.max
    ));
    if !run.levels.is_empty() {
        out.push_str(&format!("| BFS levels recorded | {} |\n", run.levels.len()));
    }

    let total_us = run.phase_total_us();
    if total_us > 0 {
        out.push_str("\n| phase | time (µs) | share |\n|---|---|---|\n");
        for phase in Phase::ALL {
            let us = run.phase_us(phase);
            if us > 0 {
                out.push_str(&format!(
                    "| {} | {us} | {:.1}% |\n",
                    phase.name(),
                    run.phase_share(phase) * 100.0
                ));
            }
        }
        out.push_str(&format!("| **total traced** | **{total_us}** | |\n"));
    } else {
        out.push_str("\n_No traced phase time (untraced or instantaneous run)._\n");
    }

    if Gauge::ALL.iter().any(|g| run.gauge(*g) > 0) {
        out.push_str("\n| gauge | peak |\n|---|---|\n");
        for gauge in Gauge::ALL {
            let peak = run.gauge(gauge);
            if peak > 0 {
                out.push_str(&format!(
                    "| {} | {} |\n",
                    gauge.name(),
                    fmt_gauge(gauge, peak)
                ));
            }
        }
    }
    out
}

/// The `summary` subcommand: one section per run in the trace.
pub fn summary_markdown(path: &str, runs: &[RunSummary]) -> String {
    let mut out = format!("## Trace summary: `{path}`\n\n{} run(s).\n\n", runs.len());
    for run in runs {
        out.push_str(&run_summary_markdown(run));
        out.push('\n');
    }
    out
}

/// Pairs runs of two traces by identity label in order of appearance
/// (duplicate labels match positionally), returning the pairs plus the
/// labels left unmatched on each side.
fn pair_runs<'a>(
    a: &'a [RunSummary],
    b: &'a [RunSummary],
) -> (
    Vec<(&'a RunSummary, &'a RunSummary)>,
    Vec<String>,
    Vec<String>,
) {
    let mut pairs = Vec::new();
    let mut unmatched_a = Vec::new();
    let mut used = vec![false; b.len()];
    for run_a in a {
        let label = run_label(run_a);
        match b
            .iter()
            .enumerate()
            .find(|(i, run_b)| !used[*i] && run_label(run_b) == label)
        {
            Some((i, run_b)) => {
                used[i] = true;
                pairs.push((run_a, run_b));
            }
            None => unmatched_a.push(label),
        }
    }
    let unmatched_b = b
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .map(|(_, r)| run_label(r))
        .collect();
    (pairs, unmatched_a, unmatched_b)
}

/// The `diff` subcommand: counter/throughput/phase-share deltas per paired
/// run (`b − a`; a positive delta means the second trace is bigger).
pub fn diff_markdown(
    path_a: &str,
    path_b: &str,
    runs_a: &[RunSummary],
    runs_b: &[RunSummary],
) -> String {
    let mut out = format!("## Trace diff: `{path_a}` → `{path_b}`\n\n");
    let (pairs, unmatched_a, unmatched_b) = pair_runs(runs_a, runs_b);
    if pairs.is_empty() {
        out.push_str("_No runs with matching identities to compare._\n");
    }
    for (a, b) in &pairs {
        let d = diff(a, b);
        out.push_str(&format!("### {}\n\n", run_label(a)));
        out.push_str("| metric | a | b | delta |\n|---|---|---|---|\n");
        out.push_str(&format!(
            "| states | {} | {} | {:+} |\n",
            a.states, b.states, d.states_delta
        ));
        out.push_str(&format!(
            "| transitions | {} | {} | {:+} |\n",
            a.transitions, b.transitions, d.transitions_delta
        ));
        out.push_str(&format!(
            "| peak depth | {} | {} | {:+} |\n",
            a.peak_depth, b.peak_depth, d.depth_delta
        ));
        out.push_str(&format!(
            "| elapsed (ms) | {} | {} | {:+} |\n",
            a.elapsed_ms, b.elapsed_ms, d.elapsed_ms_delta
        ));
        out.push_str(&format!(
            "| throughput p50 (states/s) | {} | {} | {:.2}× |\n",
            a.throughput.p50, b.throughput.p50, d.throughput_ratio
        ));
        for (i, gauge) in Gauge::ALL.iter().enumerate() {
            if a.gauge(*gauge) > 0 || b.gauge(*gauge) > 0 {
                out.push_str(&format!(
                    "| {} peak | {} | {} | {:+} {} |\n",
                    gauge.name(),
                    fmt_gauge(*gauge, a.gauge(*gauge)),
                    fmt_gauge(*gauge, b.gauge(*gauge)),
                    d.gauge_delta[i],
                    if matches!(gauge, Gauge::WorkerBusyUs) {
                        "µs"
                    } else {
                        "B"
                    }
                ));
            }
        }
        if d.phase_share_delta.iter().any(|x| *x != 0.0) {
            out.push_str("\n| phase | share a | share b | Δ (pts) |\n|---|---|---|---|\n");
            for (i, phase) in Phase::ALL.iter().enumerate() {
                if a.phase_us(*phase) == 0 && b.phase_us(*phase) == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "| {} | {:.1}% | {:.1}% | {:+.1} |\n",
                    phase.name(),
                    a.phase_share(*phase) * 100.0,
                    b.phase_share(*phase) * 100.0,
                    d.phase_share_delta[i] * 100.0
                ));
            }
        }
        out.push('\n');
    }
    for label in unmatched_a {
        out.push_str(&format!("_Only in `{path_a}`: {label}_\n"));
    }
    for label in unmatched_b {
        out.push_str(&format!("_Only in `{path_b}`: {label}_\n"));
    }
    out
}

/// The `timeline` subcommand: the per-level `level_summary` time-series of
/// every run that recorded one.
pub fn timeline_markdown(path: &str, runs: &[RunSummary]) -> String {
    let mut out = format!("## Level timeline: `{path}`\n\n");
    let mut any = false;
    for run in runs {
        if run.levels.is_empty() {
            continue;
        }
        any = true;
        out.push_str(&format!("### {}\n\n", run_label(run)));
        out.push_str(
            "| level | width | new states | store hits | frontier bytes | duration (µs) |\n\
             |---|---|---|---|---|---|\n",
        );
        for level in &run.levels {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                level.level,
                level.width,
                level.new_states,
                level.store_hits,
                level.frontier_bytes,
                level.duration_us
            ));
        }
        out.push('\n');
    }
    if !any {
        out.push_str("_No level_summary events (non-BFS engines, or a pre-level trace)._\n");
    }
    out
}

/// The `flame` subcommand: folded `engine;phase <µs>` stacks of every run,
/// ready for `speedscope` or inferno's `flamegraph.pl` descendants.
pub fn flame_text(runs: &[RunSummary]) -> String {
    let mut out = String::new();
    for run in runs {
        for line in run.folded_stacks() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_trace::{Counter, SharedBuffer, Tracer};

    fn traced_runs(spec: &[(&str, u64)]) -> Vec<RunSummary> {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        for (strategy, states) in spec {
            let run = tracer.begin_run("paxos", strategy, "agreement");
            run.add(Counter::States, *states);
            run.sample_gauge(Gauge::StoreBytes, states * 100);
            {
                let _g = run.span(Phase::Expansion);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            run.finish("verified");
            drop(run);
        }
        let text = buf.contents();
        analyze_stream(text.lines()).unwrap()
    }

    #[test]
    fn summary_renders_one_section_per_run() {
        let runs = traced_runs(&[("bfs", 10), ("dfs", 10)]);
        let md = summary_markdown("t.ndjson", &runs);
        assert!(md.contains("2 run(s)"));
        assert!(md.contains("### paxos · bfs · agreement"));
        assert!(md.contains("### paxos · dfs · agreement"));
        assert!(md.contains("| states | 10 |"));
        assert!(md.contains("| expansion |"));
        assert!(md.contains("| store_bytes | 1000 B |"), "{md}");
    }

    #[test]
    fn diff_pairs_runs_by_identity_and_reports_deltas() {
        let a = traced_runs(&[("bfs", 10), ("dfs", 5)]);
        let b = traced_runs(&[("dfs", 5), ("bfs", 25)]);
        let md = diff_markdown("a.ndjson", "b.ndjson", &a, &b);
        // Order-insensitive pairing: bfs pairs with bfs despite reordering.
        assert!(md.contains("### paxos · bfs · agreement"));
        assert!(md.contains("| states | 10 | 25 | +15 |"), "{md}");
        assert!(md.contains("| states | 5 | 5 | +0 |"), "{md}");
        assert!(!md.contains("Only in"));
    }

    #[test]
    fn diff_reports_unmatched_runs() {
        let a = traced_runs(&[("bfs", 10)]);
        let b = traced_runs(&[("parallel", 10)]);
        let md = diff_markdown("a.ndjson", "b.ndjson", &a, &b);
        assert!(md.contains("No runs with matching identities"));
        assert!(md.contains("Only in `a.ndjson`: paxos · bfs · agreement"));
        assert!(md.contains("Only in `b.ndjson`: paxos · parallel · agreement"));
    }

    #[test]
    fn timeline_handles_runs_without_levels() {
        let runs = traced_runs(&[("dfs", 3)]);
        let md = timeline_markdown("t.ndjson", &runs);
        assert!(md.contains("No level_summary events"));
    }

    #[test]
    fn flame_lines_are_collapsed_stacks() {
        let runs = traced_runs(&[("bfs", 10)]);
        let text = flame_text(&runs);
        assert!(!text.is_empty());
        for line in text.lines() {
            let (frames, count) = line.rsplit_once(' ').expect("count-terminated");
            assert!(frames.contains(';'), "{line}");
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn bytes_format_rounds_to_sensible_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1048576), "3.0 MiB");
    }

    #[test]
    fn worker_busy_gauge_formats_as_microseconds_not_bytes() {
        assert_eq!(fmt_gauge(Gauge::WorkerBusyUs, 1500), "1500 µs");
        assert_eq!(fmt_gauge(Gauge::StoreBytes, 2048), "2.0 KiB");
    }

    #[test]
    fn summary_reports_steals_and_worker_busy_for_pool_runs() {
        let buf = SharedBuffer::new();
        let tracer = Tracer::to_writer(false, Box::new(buf.clone()));
        let run = tracer.begin_run("paxos", "pool-bfs(4)", "agreement");
        run.add(Counter::States, 10);
        run.add(mp_trace::Counter::Steals, 7);
        run.sample_gauge(Gauge::WorkerBusyUs, 1234);
        run.finish("verified");
        drop(run);
        let text = buf.contents();
        let runs = analyze_stream(text.lines()).unwrap();
        assert_eq!(runs[0].steals, 7);
        let md = summary_markdown("t.ndjson", &runs);
        assert!(md.contains("| steals | 7 |"), "{md}");
        assert!(md.contains("| worker_busy_us | 1234 µs |"), "{md}");
    }
}
