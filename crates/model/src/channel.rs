//! Directed, unordered channels between processes.
//!
//! The system consists of `n` processes communicating via directed channels
//! `c_{i,j}`, which are unordered multisets of messages (paper, Section
//! II-A). [`Channels`] stores the contents of every non-empty channel in a
//! canonical form so that two global states with the same pending messages
//! compare and hash equal regardless of the order in which the messages were
//! sent.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Envelope, Kind, Message, Multiset, ProcessId};

/// The contents of all channels of a system.
///
/// Conceptually a map from `(sender, receiver)` to a multiset of messages.
/// The map is keyed by `(receiver, sender)` internally because the dominant
/// query of the model checker is "all pending messages of process *i*"
/// (the union of *i*'s incoming channels), which then becomes a contiguous
/// range scan.
///
/// # Examples
///
/// ```
/// use mp_model::{Channels, ProcessId};
///
/// let mut ch: Channels<String> = Channels::new(3);
/// ch.send(ProcessId(0), ProcessId(2), "hello".to_string());
/// ch.send(ProcessId(1), ProcessId(2), "world".to_string());
/// assert_eq!(ch.total_pending(), 2);
/// assert_eq!(ch.pending_for(ProcessId(2)).count(), 2);
/// assert_eq!(ch.pending_for(ProcessId(0)).count(), 0);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channels<M: Ord> {
    /// `(receiver, sender) -> multiset of messages`; empty channels are not
    /// stored, which keeps the canonical form unique.
    contents: BTreeMap<(ProcessId, ProcessId), Multiset<M>>,
    num_processes: usize,
    total: usize,
}

impl<M: Message> Channels<M> {
    /// Creates the channel state of a system of `num_processes` processes
    /// with every channel empty.
    pub fn new(num_processes: usize) -> Self {
        Channels {
            contents: BTreeMap::new(),
            num_processes,
            total: 0,
        }
    }

    /// Returns the number of processes of the system.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Returns the total number of pending messages across all channels.
    pub fn total_pending(&self) -> usize {
        self.total
    }

    /// Returns `true` if every channel is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds a message to the channel from `sender` to `receiver`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is not a process of the system; the
    /// protocol validation in [`ProtocolSpec`](crate::ProtocolSpec) is meant
    /// to rule this out before exploration starts.
    pub fn send(&mut self, sender: ProcessId, receiver: ProcessId, message: M) {
        assert!(
            sender.index() < self.num_processes && receiver.index() < self.num_processes,
            "send endpoints out of range: {sender} -> {receiver} with {} processes",
            self.num_processes
        );
        self.contents
            .entry((receiver, sender))
            .or_default()
            .entry_increment(message);
        self.total += 1;
    }

    /// Removes one occurrence of the message carried by `envelope` from the
    /// incoming channel of `receiver`.
    ///
    /// Returns `true` if the message was present and removed.
    pub fn consume(&mut self, receiver: ProcessId, envelope: &Envelope<M>) -> bool {
        let key = (receiver, envelope.sender);
        let Some(bag) = self.contents.get_mut(&key) else {
            return false;
        };
        if !bag.remove(&envelope.payload) {
            return false;
        }
        self.total -= 1;
        if bag.is_empty() {
            self.contents.remove(&key);
        }
        true
    }

    /// Returns how many copies of `envelope` are pending for `receiver`.
    pub fn pending_count(&self, receiver: ProcessId, envelope: &Envelope<M>) -> usize {
        self.contents
            .get(&(receiver, envelope.sender))
            .map(|bag| bag.count(&envelope.payload))
            .unwrap_or(0)
    }

    /// Iterates over all pending envelopes of `receiver` (the union of its
    /// incoming channels), repeating duplicated messages.
    pub fn pending_for(&self, receiver: ProcessId) -> impl Iterator<Item = Envelope<M>> + '_ {
        self.incoming_channels(receiver).flat_map(|(sender, bag)| {
            bag.iter_occurrences()
                .map(move |payload| Envelope::new(sender, payload.clone()))
        })
    }

    /// Iterates over the non-empty incoming channels of `receiver` as
    /// `(sender, contents)` pairs.
    pub fn incoming_channels(
        &self,
        receiver: ProcessId,
    ) -> impl Iterator<Item = (ProcessId, &Multiset<M>)> + '_ {
        let lo = (receiver, ProcessId(0));
        let hi = (receiver, ProcessId(usize::MAX));
        self.contents
            .range(lo..=hi)
            .map(|((_, sender), bag)| (*sender, bag))
    }

    /// Returns the contents of the channel from `sender` to `receiver`; an
    /// empty multiset if the channel is empty.
    pub fn channel(&self, sender: ProcessId, receiver: ProcessId) -> Multiset<M> {
        self.contents
            .get(&(receiver, sender))
            .cloned()
            .unwrap_or_default()
    }

    /// Returns, for each sender, the distinct pending payloads of the given
    /// `kind` in the incoming channels of `receiver`.
    ///
    /// This is the enumeration primitive for quorum transitions: an exact
    /// quorum of size `q` picks `q` distinct senders and one message per
    /// sender (paper, Definition 2). Multiplicities above one are irrelevant
    /// for enabledness because a transition consumes at most one copy of a
    /// payload per sender in a single step.
    pub fn pending_by_sender(
        &self,
        receiver: ProcessId,
        kind: Kind,
    ) -> BTreeMap<ProcessId, Vec<M>> {
        let mut out: BTreeMap<ProcessId, Vec<M>> = BTreeMap::new();
        for (sender, bag) in self.incoming_channels(receiver) {
            let payloads: Vec<M> = bag
                .iter()
                .filter(|(payload, _)| payload.kind() == kind)
                .map(|(payload, _)| payload.clone())
                .collect();
            if !payloads.is_empty() {
                out.insert(sender, payloads);
            }
        }
        out
    }

    /// Returns all pending envelopes of the given `kind` for `receiver`,
    /// without repeating duplicated copies.
    pub fn pending_of_kind(&self, receiver: ProcessId, kind: Kind) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        for (sender, payloads) in self.pending_by_sender(receiver, kind) {
            for payload in payloads {
                out.push(Envelope::new(sender, payload));
            }
        }
        out
    }

    /// Iterates over every non-empty channel as `((sender, receiver), contents)`.
    pub fn iter(&self) -> impl Iterator<Item = ((ProcessId, ProcessId), &Multiset<M>)> + '_ {
        self.contents
            .iter()
            .map(|((receiver, sender), bag)| ((*sender, *receiver), bag))
    }

    /// Rewrites the channel contents under a process permutation: the
    /// channel `i -> j` becomes `perm(i) -> perm(j)` and every payload is
    /// rewritten through [`Permutable::permute`](crate::Permutable::permute). The canonical (sorted)
    /// internal form is rebuilt, so permuted channel states compare and hash
    /// like any other.
    pub fn permute(&self, perm: &crate::Permutation) -> Self
    where
        M: crate::Permutable,
    {
        let mut out = Channels::new(self.num_processes);
        for ((sender, receiver), bag) in self.iter() {
            for payload in bag.iter_occurrences() {
                out.send(
                    perm.apply(sender),
                    perm.apply(receiver),
                    payload.permute(perm),
                );
            }
        }
        out
    }
}

// Channels encode as (process count, non-empty channel count, then each
// channel's internal `(receiver, sender)` key and multiset). The internal
// map is already canonical (sorted, no empty channels), so the encoding is
// canonical too and decoding rebuilds the exact same value.
impl<M: Ord + crate::Encode> crate::Encode for Channels<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        crate::codec::write_varint(self.num_processes as u64, out);
        self.contents.encode(out);
    }
}

impl<M: Ord + crate::Decode> crate::Decode for Channels<M> {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        let num_processes = usize::decode(input)?;
        let contents: BTreeMap<(ProcessId, ProcessId), Multiset<M>> = BTreeMap::decode(input)?;
        let mut total = 0;
        for ((receiver, sender), bag) in &contents {
            if receiver.index() >= num_processes || sender.index() >= num_processes {
                return Err(crate::DecodeError::new("channel endpoint out of range"));
            }
            if bag.is_empty() {
                return Err(crate::DecodeError::new("empty channel in encoding"));
            }
            total += bag.len();
        }
        Ok(Channels {
            contents,
            num_processes,
            total,
        })
    }
}

impl<M: Message> fmt::Debug for Channels<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for ((sender, receiver), bag) in self.iter() {
            map.entry(&format_args!("{sender}->{receiver}"), bag);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req(u8),
        Ack(u8),
    }
    crate::codec!(enum Msg { 0 = Req(n), 1 = Ack(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req(_) => "REQ",
                Msg::Ack(_) => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn send_and_consume_roundtrip() {
        let mut ch: Channels<Msg> = Channels::new(3);
        ch.send(p(0), p(1), Msg::Req(1));
        assert_eq!(ch.total_pending(), 1);
        let env = Envelope::new(p(0), Msg::Req(1));
        assert_eq!(ch.pending_count(p(1), &env), 1);
        assert!(ch.consume(p(1), &env));
        assert!(ch.is_empty());
        assert!(!ch.consume(p(1), &env));
    }

    #[test]
    fn duplicate_messages_are_kept_as_multiset() {
        let mut ch: Channels<Msg> = Channels::new(2);
        ch.send(p(0), p(1), Msg::Req(1));
        ch.send(p(0), p(1), Msg::Req(1));
        let env = Envelope::new(p(0), Msg::Req(1));
        assert_eq!(ch.pending_count(p(1), &env), 2);
        assert!(ch.consume(p(1), &env));
        assert_eq!(ch.pending_count(p(1), &env), 1);
        assert_eq!(ch.total_pending(), 1);
    }

    #[test]
    fn pending_for_unions_incoming_channels() {
        let mut ch: Channels<Msg> = Channels::new(4);
        ch.send(p(0), p(3), Msg::Req(0));
        ch.send(p(1), p(3), Msg::Ack(1));
        ch.send(p(2), p(3), Msg::Ack(2));
        ch.send(p(0), p(1), Msg::Req(9));
        let pending: Vec<Envelope<Msg>> = ch.pending_for(p(3)).collect();
        assert_eq!(pending.len(), 3);
        assert!(pending.iter().all(|e| e.sender != p(3)));
    }

    #[test]
    fn pending_by_sender_filters_kind() {
        let mut ch: Channels<Msg> = Channels::new(3);
        ch.send(p(0), p(2), Msg::Req(0));
        ch.send(p(0), p(2), Msg::Ack(0));
        ch.send(p(1), p(2), Msg::Ack(1));
        let by_sender = ch.pending_by_sender(p(2), "ACK");
        assert_eq!(by_sender.len(), 2);
        assert_eq!(by_sender[&p(0)], vec![Msg::Ack(0)]);
        assert_eq!(by_sender[&p(1)], vec![Msg::Ack(1)]);
        let reqs = ch.pending_of_kind(p(2), "REQ");
        assert_eq!(reqs, vec![Envelope::new(p(0), Msg::Req(0))]);
    }

    #[test]
    fn channel_query_returns_copy() {
        let mut ch: Channels<Msg> = Channels::new(2);
        ch.send(p(0), p(1), Msg::Req(5));
        let bag = ch.channel(p(0), p(1));
        assert_eq!(bag.len(), 1);
        assert!(bag.contains(&Msg::Req(5)));
        assert!(ch.channel(p(1), p(0)).is_empty());
    }

    #[test]
    fn canonical_equality_ignores_send_order() {
        let mut a: Channels<Msg> = Channels::new(3);
        a.send(p(0), p(2), Msg::Req(0));
        a.send(p(1), p(2), Msg::Req(1));
        let mut b: Channels<Msg> = Channels::new(3);
        b.send(p(1), p(2), Msg::Req(1));
        b.send(p(0), p(2), Msg::Req(0));
        assert_eq!(a, b);
    }

    #[test]
    fn consuming_last_message_removes_channel_entry() {
        let mut a: Channels<Msg> = Channels::new(2);
        a.send(p(0), p(1), Msg::Req(0));
        let b: Channels<Msg> = Channels::new(2);
        assert_ne!(a, b);
        assert!(a.consume(p(1), &Envelope::new(p(0), Msg::Req(0))));
        assert_eq!(a, b, "empty channels must not linger in the canonical form");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_unknown_process_panics() {
        let mut ch: Channels<Msg> = Channels::new(2);
        ch.send(p(0), p(5), Msg::Req(0));
    }

    #[test]
    fn iter_lists_all_nonempty_channels() {
        let mut ch: Channels<Msg> = Channels::new(3);
        ch.send(p(0), p(1), Msg::Req(0));
        ch.send(p(2), p(1), Msg::Req(1));
        ch.send(p(1), p(0), Msg::Ack(0));
        let pairs: Vec<(ProcessId, ProcessId)> = ch.iter().map(|(k, _)| k).collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(p(0), p(1))));
        assert!(pairs.contains(&(p(2), p(1))));
        assert!(pairs.contains(&(p(1), p(0))));
    }
}
