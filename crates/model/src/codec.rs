//! Compact binary state serialization ([`Encode`] / [`Decode`]).
//!
//! The disk-backed BFS frontier of `mp-store` spills encoded global states
//! to fixed-size segments and reads them back level by level; this module
//! is the codec it runs on. The format is deliberately minimal — no
//! framing, no versioning, no self-description — because encoded states
//! are always written and read by the same binary checking the same model,
//! so the Rust types *are* the schema. Spill files never outlive their
//! run; checkpoint files (`mp-store`) do outlive the writing *process*,
//! but their manifest pins the build's format version and the model/config
//! identity, so the same-schema premise holds there too (see
//! `docs/ON_DISK_FORMATS.md` for the layered durability contract).
//!
//! Layout rules:
//!
//! * `u8`/`bool`/`char` and friends are single bytes or LEB128 varints;
//!   `usize`/`u16`/`u32`/`u64` are LEB128 varints (states are full of small
//!   counters, so varints are what makes the encoding compact);
//! * signed integers are zigzag-mapped before the varint;
//! * sequences (`Vec`, `BTreeSet`, `BTreeMap`, `String`) are a varint
//!   length followed by their elements in iteration order;
//! * `Option` is a one-byte tag; tuples and structs are their fields in
//!   declaration order; enums are a one-byte variant tag followed by the
//!   variant's fields.
//!
//! Every value round-trips: `decode(encode(v)) == v`. Decoding consumes
//! exactly the bytes encoding produced, so records can be concatenated
//! without separators (which is how frontier segments are laid out).
//!
//! Protocol crates implement the traits for their state and message types
//! with the [`codec!`](crate::codec!) macro:
//!
//! ```
//! use mp_model::{codec, Decode, Encode};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! enum Msg {
//!     Ping { round: u32 },
//!     Stop,
//! }
//! codec!(enum Msg { 0 = Ping { round }, 1 = Stop });
//!
//! let mut bytes = Vec::new();
//! Msg::Ping { round: 7 }.encode(&mut bytes);
//! Msg::Stop.encode(&mut bytes);
//! let mut r = bytes.as_slice();
//! assert_eq!(Msg::decode(&mut r).unwrap(), Msg::Ping { round: 7 });
//! assert_eq!(Msg::decode(&mut r).unwrap(), Msg::Stop);
//! assert!(r.is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
///
/// In practice this only fires on a corrupted spill file (or a programming
/// error pairing an encoder with the wrong decoder); the search engines
/// treat it as fatal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
}

impl DecodeError {
    /// Creates an error tagged with the failing context.
    pub fn new(context: &'static str) -> Self {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed encoded state: {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// A value that can be serialized into the compact state format.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// A value that can be reconstructed from the compact state format.
///
/// `input` is advanced past exactly the bytes [`Encode::encode`] produced
/// for the value, so concatenated records decode back to back.
pub trait Decode: Sized {
    /// Decodes one value from the front of `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Encodes `value` into a fresh buffer (convenience for tests and
/// single-record uses; bulk writers append with [`Encode::encode`]).
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a single value that must consume the whole input.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or trailing bytes.
pub fn decode_from_slice<T: Decode>(mut input: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut input)?;
    if !input.is_empty() {
        return Err(DecodeError::new("trailing bytes after value"));
    }
    Ok(value)
}

/// Appends a LEB128 varint.
pub fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or a varint longer than 64 bits.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some((&byte, rest)) = input.split_first() else {
            return Err(DecodeError::new("truncated varint"));
        };
        *input = rest;
        if shift >= 64 {
            return Err(DecodeError::new("varint overflows 64 bits"));
        }
        // The 10th byte sits at shift 63: only its lowest payload bit fits,
        // anything above would be shifted out and silently lost.
        if shift == 63 && byte & 0x7e != 0 {
            return Err(DecodeError::new("varint overflows 64 bits"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_byte(input: &mut &[u8], context: &'static str) -> Result<u8, DecodeError> {
    let Some((&byte, rest)) = input.split_first() else {
        return Err(DecodeError::new(context));
    };
    *input = rest;
    Ok(byte)
}

fn read_len(input: &mut &[u8], context: &'static str) -> Result<usize, DecodeError> {
    let len = read_varint(input)?;
    // A sequence cannot be longer than the remaining input (every element
    // costs at least one byte) — reject early so corrupted lengths cannot
    // drive huge allocations.
    if len > input.len() as u64 {
        return Err(DecodeError::new(context));
    }
    Ok(len as usize)
}

impl Encode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl Decode for () {
    fn decode(_input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_byte(input, "truncated bool")? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::new("invalid bool byte")),
        }
    }
}

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        read_byte(input, "truncated u8")
    }
}

macro_rules! varint_codec {
    ($($t:ty),* $(,)?) => {
        $(
            impl Encode for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    write_varint(*self as u64, out);
                }
            }
            impl Decode for $t {
                fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                    let raw = read_varint(input)?;
                    <$t>::try_from(raw).map_err(|_| DecodeError::new("varint out of range"))
                }
            }
        )*
    };
}

varint_codec!(u16, u32, u64, usize);

macro_rules! zigzag_codec {
    ($($t:ty as $wide:ty),* $(,)?) => {
        $(
            impl Encode for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    let wide = *self as $wide as i64;
                    write_varint(((wide << 1) ^ (wide >> 63)) as u64, out);
                }
            }
            impl Decode for $t {
                fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                    let raw = read_varint(input)?;
                    let wide = ((raw >> 1) as i64) ^ -((raw & 1) as i64);
                    <$t>::try_from(wide).map_err(|_| DecodeError::new("zigzag out of range"))
                }
            }
        )*
    };
}

zigzag_codec!(i8 as i64, i16 as i64, i32 as i64, i64 as i64, isize as i64);

impl Encode for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for u128 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let Some((bytes, rest)) = input.split_first_chunk::<16>() else {
            return Err(DecodeError::new("truncated u128"));
        };
        *input = rest;
        Ok(u128::from_le_bytes(*bytes))
    }
}

impl Encode for i128 {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u128).encode(out);
    }
}

impl Decode for i128 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(u128::decode(input)? as i128)
    }
}

impl Encode for char {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(u64::from(*self as u32), out);
    }
}

impl Decode for char {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let raw = u32::try_from(read_varint(input)?)
            .map_err(|_| DecodeError::new("char out of range"))?;
        char::from_u32(raw).ok_or(DecodeError::new("invalid char scalar"))
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "truncated string")?;
        let (bytes, rest) = input.split_at(len);
        *input = rest;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("invalid utf-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_byte(input, "truncated option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(DecodeError::new("invalid option tag")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "truncated vec length")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "truncated set length")?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for (key, value) in self {
            key.encode(out);
            value.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "truncated map length")?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(input)?;
            out.insert(key, V::decode(input)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_codec {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Encode),+> Encode for ($($name,)+) {
                fn encode(&self, out: &mut Vec<u8>) {
                    $(self.$idx.encode(out);)+
                }
            }
            impl<$($name: Decode),+> Decode for ($($name,)+) {
                fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                    Ok(($($name::decode(input)?,)+))
                }
            }
        )*
    };
}

tuple_codec!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Derives [`Encode`] and [`Decode`] for a struct or enum of codec-capable
/// fields.
///
/// Field *names* are given (types are inferred from the constructor), and
/// enum variants carry explicit one-byte tags so reordering variants cannot
/// silently change the format:
///
/// ```
/// use mp_model::codec;
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// struct Tok;
/// codec!(struct Tok);
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// struct Pair { a: u8, b: u32 }
/// codec!(struct Pair { a, b });
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// enum Msg { Req(u8), Ack { seq: u32 }, Stop }
/// codec!(enum Msg { 0 = Req(v), 1 = Ack { seq }, 2 = Stop });
/// ```
#[macro_export]
macro_rules! codec {
    (struct $name:ident) => {
        impl $crate::Encode for $name {
            fn encode(&self, _out: &mut Vec<u8>) {}
        }
        impl $crate::Decode for $name {
            fn decode(_input: &mut &[u8]) -> Result<Self, $crate::DecodeError> {
                Ok($name)
            }
        }
    };
    (struct $name:ident ( $($field:ident),+ $(,)? )) => {
        impl $crate::Encode for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                let $name($($field),+) = self;
                $($crate::Encode::encode($field, out);)+
            }
        }
        impl $crate::Decode for $name {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::DecodeError> {
                Ok($name($({ let $field = $crate::Decode::decode(input)?; $field }),+))
            }
        }
    };
    (struct $name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Encode for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                $($crate::Encode::encode(&self.$field, out);)*
            }
        }
        impl $crate::Decode for $name {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::DecodeError> {
                Ok($name { $($field: $crate::Decode::decode(input)?),* })
            }
        }
    };
    (enum $name:ident {
        $($tag:literal = $variant:ident
            $(( $($tf:ident),+ $(,)? ))?
            $({ $($sf:ident),+ $(,)? })?
        ),* $(,)?
    }) => {
        impl $crate::Encode for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $(
                        $name::$variant $(( $($tf),+ ))? $({ $($sf),+ })? => {
                            out.push($tag);
                            $($($crate::Encode::encode($tf, out);)+)?
                            $($($crate::Encode::encode($sf, out);)+)?
                        }
                    )*
                }
            }
        }
        impl $crate::Decode for $name {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::DecodeError> {
                let Some((&tag, rest)) = input.split_first() else {
                    return Err($crate::DecodeError::new("truncated enum tag"));
                };
                *input = rest;
                match tag {
                    $(
                        $tag => Ok($name::$variant
                            $(( $({ let $tf = $crate::Decode::decode(input)?; $tf }),+ ))?
                            $({ $($sf: $crate::Decode::decode(input)?),+ })?
                        ),
                    )*
                    _ => Err($crate::DecodeError::new("unknown enum tag")),
                }
            }
        }
    };
}

/// Incremental 64-bit FNV-1a hasher.
///
/// The on-disk subsystem uses it for the content checksums of checkpoint
/// files and for [`ProtocolSpec::structure_fingerprint`] — both need a
/// hash that is stable across runs and platforms, which `DefaultHasher`
/// does not guarantee. FNV-1a is fully specified, byte-oriented and
/// dependency-free.
///
/// [`ProtocolSpec::structure_fingerprint`]: crate::ProtocolSpec::structure_fingerprint
///
/// ```
/// use mp_model::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"abc");
/// let once = h.finish();
/// let mut again = Fnv64::new();
/// again.write(b"ab");
/// again.write(b"c");
/// assert_eq!(once, again.finish(), "chunking never changes the digest");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// Feeds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a varint-encoded integer into the digest (used to hash
    /// structured values without allocating).
    pub fn write_u64(&mut self, value: u64) {
        let mut buf = Vec::with_capacity(10);
        write_varint(value, &mut buf);
        self.write(&buf);
    }

    /// Returns the digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Length of the longest common prefix of two byte strings.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Appends a delta record: `cur` encoded against the previous record of the
/// same stream as `varint(shared) varint(suffix_len) suffix`, where
/// `shared` is the longest common prefix with `prev` and `suffix` the rest
/// of `cur`. BFS-neighbouring states share most of their locals, so this
/// shrinks spill segments substantially on top of the varint codec; the
/// first record of a segment passes an empty `prev` and degrades to a
/// length-prefixed raw record.
///
/// ```
/// use mp_model::{read_delta_record, write_delta_record};
///
/// let mut out = Vec::new();
/// write_delta_record(b"", b"paxos-state-1", &mut out);
/// write_delta_record(b"paxos-state-1", b"paxos-state-2", &mut out);
/// let mut input = out.as_slice();
/// let first = read_delta_record(b"", &mut input).unwrap();
/// let second = read_delta_record(&first, &mut input).unwrap();
/// assert_eq!(second, b"paxos-state-2");
/// assert!(input.is_empty());
/// ```
pub fn write_delta_record(prev: &[u8], cur: &[u8], out: &mut Vec<u8>) {
    let shared = common_prefix_len(prev, cur);
    write_varint(shared as u64, out);
    write_varint((cur.len() - shared) as u64, out);
    out.extend_from_slice(&cur[shared..]);
}

/// Reads one delta record written by [`write_delta_record`] and rebuilds
/// the full byte string against `prev` (the previously reconstructed
/// record of the same stream).
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or when the record claims a
/// longer shared prefix than `prev` provides (a corrupted stream).
pub fn read_delta_record(prev: &[u8], input: &mut &[u8]) -> Result<Vec<u8>, DecodeError> {
    let shared = read_varint(input)? as usize;
    let suffix_len = read_varint(input)? as usize;
    if shared > prev.len() {
        return Err(DecodeError::new("delta record exceeds previous record"));
    }
    if input.len() < suffix_len {
        return Err(DecodeError::new("truncated delta record suffix"));
    }
    let mut full = Vec::with_capacity(shared + suffix_len);
    full.extend_from_slice(&prev[..shared]);
    full.extend_from_slice(&input[..suffix_len]);
    *input = &input[suffix_len..];
    Ok(full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0usize);
        roundtrip(usize::MAX);
        roundtrip(u64::MAX);
        roundtrip(12_345u32);
        roundtrip(u16::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(-42i8);
        roundtrip(i32::MIN);
        roundtrip(isize::MAX);
        roundtrip(u128::MAX);
        roundtrip(i128::MIN);
        roundtrip('x');
        roundtrip('🦀');
        roundtrip(String::from("hello"));
        roundtrip(String::new());
    }

    #[test]
    fn small_values_encode_small() {
        assert_eq!(encode_to_vec(&5usize), vec![5]);
        assert_eq!(encode_to_vec(&0u64), vec![0]);
        assert_eq!(encode_to_vec(&-1i32), vec![1]); // zigzag
        assert_eq!(encode_to_vec(&300usize).len(), 2);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(7u8));
        roundtrip(Option::<u8>::None);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(BTreeSet::from([3u8, 1, 2]));
        roundtrip(BTreeMap::from([(1u8, String::from("a")), (2, "b".into())]));
        roundtrip((1u8, 2u32));
        roundtrip((1u8, 2u32, String::from("x")));
        roundtrip((1u8, 2u32, 3u64, Some(4usize)));
    }

    #[test]
    fn records_concatenate_without_separators() {
        let mut bytes = Vec::new();
        for i in 0..10u32 {
            (i, vec![i as u8; i as usize]).encode(&mut bytes);
        }
        let mut r = bytes.as_slice();
        for i in 0..10u32 {
            let (n, v) = <(u32, Vec<u8>)>::decode(&mut r).unwrap();
            assert_eq!(n, i);
            assert_eq!(v.len(), i as usize);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn overlong_varints_error_instead_of_truncating() {
        // u64::MAX is the widest legal varint: nine 0xff bytes + 0x01.
        let mut max = vec![0xffu8; 9];
        max.push(0x01);
        assert_eq!(decode_from_slice::<u64>(&max), Ok(u64::MAX));
        // A 10th byte with payload above bit 0 would shift bits out of the
        // u64 — it must error, not silently decode to a wrong value.
        let mut overlong = vec![0x80u8; 9];
        overlong.push(0x02);
        assert!(decode_from_slice::<u64>(&overlong).is_err());
        // An 11th byte is always rejected.
        let mut eleven = vec![0x80u8; 10];
        eleven.push(0x01);
        assert!(decode_from_slice::<u64>(&eleven).is_err());
    }

    #[test]
    fn truncated_and_malformed_inputs_error() {
        assert!(decode_from_slice::<u64>(&[0x80]).is_err()); // dangling varint
        assert!(decode_from_slice::<bool>(&[7]).is_err());
        assert!(decode_from_slice::<Option<u8>>(&[2]).is_err());
        assert!(decode_from_slice::<String>(&[2, 0xff]).is_err()); // short
        assert!(decode_from_slice::<u8>(&[1, 2]).is_err()); // trailing
                                                            // A corrupted length larger than the input must not allocate.
        assert!(decode_from_slice::<Vec<u64>>(&[0xff, 0xff, 0x7f]).is_err());
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Unit;
    codec!(struct Unit);

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Named {
        a: u8,
        b: Vec<u32>,
    }
    codec!(struct Named { a, b });

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Mixed {
        Unit,
        Tuple(u8, String),
        Struct { x: Option<u32>, y: bool },
    }
    codec!(enum Mixed {
        0 = Unit,
        1 = Tuple(a, b),
        2 = Struct { x, y },
    });

    #[test]
    fn macro_derived_codecs_roundtrip() {
        roundtrip(Unit);
        roundtrip(Named {
            a: 9,
            b: vec![1, 2, 3],
        });
        roundtrip(Mixed::Unit);
        roundtrip(Mixed::Tuple(4, "hi".into()));
        roundtrip(Mixed::Struct {
            x: Some(8),
            y: true,
        });
        assert!(decode_from_slice::<Mixed>(&[9]).is_err(), "unknown tag");
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let digest = |bytes: &[u8]| {
            let mut h = Fnv64::new();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf29ce484222325);
        assert_eq!(digest(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn delta_records_roundtrip_and_shrink_similar_payloads() {
        let records: Vec<Vec<u8>> = (0u8..20)
            .map(|i| {
                let mut r = vec![7u8; 60];
                r.push(i);
                r
            })
            .collect();
        let mut out = Vec::new();
        let mut prev: Vec<u8> = Vec::new();
        for r in &records {
            write_delta_record(&prev, r, &mut out);
            prev = r.clone();
        }
        let raw: usize = records.iter().map(Vec::len).sum();
        assert!(
            out.len() < raw / 4,
            "61-byte records sharing 60 bytes must compress: {} vs {raw}",
            out.len()
        );
        let mut input = out.as_slice();
        let mut prev: Vec<u8> = Vec::new();
        for r in &records {
            let back = read_delta_record(&prev, &mut input).expect("decode");
            assert_eq!(&back, r);
            prev = back;
        }
        assert!(input.is_empty());
    }

    #[test]
    fn corrupt_delta_records_are_rejected() {
        // Shared prefix longer than the previous record.
        let mut out = Vec::new();
        write_varint(5, &mut out);
        write_varint(0, &mut out);
        assert!(read_delta_record(b"ab", &mut out.as_slice()).is_err());
        // Truncated suffix.
        let mut out = Vec::new();
        write_varint(0, &mut out);
        write_varint(9, &mut out);
        out.push(1);
        assert!(read_delta_record(b"", &mut out.as_slice()).is_err());
    }
}
