//! Enumeration of enabled transition instances ("enabled sets of messages").
//!
//! MP-Basset extends Basset's notion of an *enabled message* to an *enabled
//! set of messages* (paper, Section IV-A): a set `X` of messages is enabled
//! in state `s` if there is a transition `t` and a state `s'` such that
//! `s --t(X)--> s'`. A [`TransitionInstance`] is such a pair of a transition
//! and a concrete message set.
//!
//! The paper notes that in the worst case the enabled sets form the powerset
//! of all pending messages. The common case in fault-tolerant protocols,
//! however, is the *exact quorum transition* (Definition 2), which consumes
//! exactly `q` messages from `q` distinct senders; for those the enumeration
//! walks combinations of senders instead of the full powerset. Unbounded
//! [`QuorumSpec::AtLeast`]/[`QuorumSpec::Between`] transitions fall back to
//! enumerating all admissible sender-set sizes and are subject to the
//! [`EnumerationLimits`] safety valve.

use std::collections::BTreeMap;
use std::fmt;

use crate::{
    Envelope, GlobalState, InputSpec, Kind, LocalState, Message, ProcessId, ProtocolSpec,
    QuorumSpec, TransitionId, TransitionSpec,
};

/// A transition together with the concrete set of messages it consumes.
///
/// Instances are the unit scheduled by the model checker: executing an
/// instance consumes exactly `envelopes` from the incoming channels of
/// `process` and applies the transition's effect.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionInstance<M> {
    /// The transition being executed.
    pub transition: TransitionId,
    /// The process executing the transition.
    pub process: ProcessId,
    /// The messages consumed, in canonical (sorted) order; empty for
    /// internal transitions.
    pub envelopes: Vec<Envelope<M>>,
}

impl<M: Message> TransitionInstance<M> {
    /// Creates an instance, canonicalising the envelope order.
    pub fn new(
        transition: TransitionId,
        process: ProcessId,
        mut envelopes: Vec<Envelope<M>>,
    ) -> Self {
        envelopes.sort();
        TransitionInstance {
            transition,
            process,
            envelopes,
        }
    }

    /// Returns `senders(X)` for this instance: the distinct senders of the
    /// consumed messages.
    pub fn senders(&self) -> Vec<ProcessId> {
        crate::message::senders(&self.envelopes)
    }

    /// Returns `true` if this instance consumes messages from more than one
    /// sender, i.e. it is an execution of a quorum transition in the sense
    /// of Section II-A.
    pub fn is_quorum_execution(&self) -> bool {
        self.senders().len() > 1
    }
}

// Instances are the payload of the spillable parent-pointer tables the BFS
// engine rebuilds counterexample paths from.
impl<M: crate::Encode> crate::Encode for TransitionInstance<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.transition.encode(out);
        self.process.encode(out);
        self.envelopes.encode(out);
    }
}

impl<M: crate::Decode> crate::Decode for TransitionInstance<M> {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        Ok(TransitionInstance {
            transition: TransitionId::decode(input)?,
            process: ProcessId::decode(input)?,
            envelopes: Vec::decode(input)?,
        })
    }
}

impl<M: fmt::Debug> fmt::Debug for TransitionInstance<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}{:?}",
            self.transition, self.process, self.envelopes
        )
    }
}

/// Limits applied while enumerating enabled instances, protecting against the
/// exponential worst case of unbounded quorum specifications.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnumerationLimits {
    /// Maximum number of candidate message sets generated per transition per
    /// state before enumeration aborts with a panic (indicating a modelling
    /// mistake rather than silently dropping behaviours).
    pub max_candidates_per_transition: usize,
}

impl Default for EnumerationLimits {
    fn default() -> Self {
        EnumerationLimits {
            max_candidates_per_transition: 1 << 20,
        }
    }
}

/// Enumerates all enabled instances of all transitions in `state`.
///
/// The result is deterministic: instances are produced in transition-id order
/// and, within a transition, in canonical message-set order.
pub fn enabled_instances<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
) -> Vec<TransitionInstance<M>> {
    enabled_instances_with_limits(spec, state, EnumerationLimits::default())
}

/// Enumerates all enabled instances with explicit [`EnumerationLimits`].
pub fn enabled_instances_with_limits<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    limits: EnumerationLimits,
) -> Vec<TransitionInstance<M>> {
    let mut out = Vec::new();
    for (id, _) in spec.transitions() {
        enabled_instances_of_into(spec, state, id, limits, &mut out);
    }
    out
}

/// Enumerates the enabled instances of a single transition in `state`.
pub fn enabled_instances_of<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    transition: TransitionId,
) -> Vec<TransitionInstance<M>> {
    let mut out = Vec::new();
    enabled_instances_of_into(
        spec,
        state,
        transition,
        EnumerationLimits::default(),
        &mut out,
    );
    out
}

/// Returns `true` if `transition` has at least one enabled instance in
/// `state`, without materialising every instance.
pub fn is_enabled<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    transition: TransitionId,
) -> bool {
    !enabled_instances_of(spec, state, transition).is_empty()
}

fn enabled_instances_of_into<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    transition: TransitionId,
    limits: EnumerationLimits,
    out: &mut Vec<TransitionInstance<M>>,
) {
    let t = spec.transition(transition);
    if !spec.admits(state, t) {
        // A global enable filter (e.g. an exhausted fault budget in
        // `mp-faults`) vetoes the transition in this state.
        return;
    }
    let process = t.process();
    let local = state.local(process);
    match t.input() {
        InputSpec::Internal => {
            if t.guard_holds(local, &[]) {
                out.push(TransitionInstance::new(transition, process, Vec::new()));
            }
        }
        InputSpec::Single { kind } => {
            for env in pending_candidates(state, t, process, kind) {
                if t.guard_holds(local, std::slice::from_ref(&env)) {
                    out.push(TransitionInstance::new(transition, process, vec![env]));
                }
            }
        }
        InputSpec::Quorum { kind, quorum } => {
            enumerate_quorum_instances(state, t, transition, process, kind, *quorum, limits, out);
        }
    }
}

/// Pending single-message candidates of `kind` for a transition, respecting
/// its sender restriction.
fn pending_candidates<S: LocalState, M: Message>(
    state: &GlobalState<S, M>,
    t: &TransitionSpec<S, M>,
    process: ProcessId,
    kind: Kind,
) -> Vec<Envelope<M>> {
    state
        .channels
        .pending_of_kind(process, kind)
        .into_iter()
        .filter(|env| t.may_receive_from(env.sender))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn enumerate_quorum_instances<S: LocalState, M: Message>(
    state: &GlobalState<S, M>,
    t: &TransitionSpec<S, M>,
    transition: TransitionId,
    process: ProcessId,
    kind: Kind,
    quorum: QuorumSpec,
    limits: EnumerationLimits,
    out: &mut Vec<TransitionInstance<M>>,
) {
    let local = state.local(process);
    let by_sender: BTreeMap<ProcessId, Vec<M>> = state
        .channels
        .pending_by_sender(process, kind)
        .into_iter()
        .filter(|(sender, _)| t.may_receive_from(*sender))
        .collect();
    let senders: Vec<ProcessId> = by_sender.keys().copied().collect();
    if senders.is_empty() {
        return;
    }

    let max_size = quorum
        .max_senders()
        .unwrap_or(senders.len())
        .min(senders.len());
    let min_size = quorum.min_senders();
    if min_size > senders.len() {
        return;
    }

    let mut candidates_generated = 0usize;
    for size in min_size..=max_size {
        if !quorum.admits(size) {
            continue;
        }
        for combo in combinations(&senders, size) {
            // One message per chosen sender; if a sender has several distinct
            // pending payloads of the right kind, every choice is a candidate.
            let per_sender: Vec<&Vec<M>> = combo.iter().map(|s| &by_sender[s]).collect();
            for selection in cartesian_product(&per_sender) {
                candidates_generated += 1;
                assert!(
                    candidates_generated <= limits.max_candidates_per_transition,
                    "transition `{}` generated more than {} candidate message sets in one state; \
                     tighten its quorum specification or raise EnumerationLimits",
                    t.name(),
                    limits.max_candidates_per_transition
                );
                let envelopes: Vec<Envelope<M>> = combo
                    .iter()
                    .zip(selection.iter())
                    .map(|(sender, payload)| Envelope::new(**sender, (*payload).clone()))
                    .collect();
                if t.guard_holds(local, &envelopes) {
                    out.push(TransitionInstance::new(transition, process, envelopes));
                }
            }
        }
    }
}

/// Enumerates all `size`-element combinations of `items`, preserving order.
fn combinations<T>(items: &[T], size: usize) -> Vec<Vec<&T>> {
    let mut out = Vec::new();
    if size == 0 || size > items.len() {
        if size == 0 {
            out.push(Vec::new());
        }
        return out;
    }
    let mut indices: Vec<usize> = (0..size).collect();
    loop {
        out.push(indices.iter().map(|&i| &items[i]).collect());
        // Advance the combination indices (standard odometer).
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in i + 1..size {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

/// Cartesian product over per-sender payload choices.
fn cartesian_product<'a, T>(lists: &[&'a Vec<T>]) -> Vec<Vec<&'a T>> {
    let mut out: Vec<Vec<&T>> = vec![Vec::new()];
    for list in lists {
        let mut next = Vec::with_capacity(out.len() * list.len());
        for prefix in &out {
            for item in list.iter() {
                let mut extended = prefix.clone();
                extended.push(item);
                next.push(extended);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outcome, ProtocolSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Vote(u8),
        Other,
    }
    crate::codec!(enum Msg { 0 = Vote(n), 1 = Other });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Vote(_) => "VOTE",
                Msg::Other => "OTHER",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Protocol: process 0 collects VOTE messages; processes 1..=3 are voters
    /// (they have a trivial internal transition so the protocol validates).
    fn collector_protocol(quorum: QuorumSpec) -> ProtocolSpec<u32, Msg> {
        let mut b = ProtocolSpec::builder("collector");
        b = b.process("collector", 0u32);
        b = b.process("v1", 0).process("v2", 0).process("v3", 0);
        b = b.transition(
            TransitionSpec::builder("COLLECT", p(0))
                .quorum_input("VOTE", quorum)
                .effect(|l, msgs| Outcome::new(l + msgs.len() as u32))
                .build(),
        );
        b = b.transition(
            TransitionSpec::builder("NOOP", p(1))
                .internal()
                .guard(|_, _| false)
                .effect(|l, _| Outcome::new(*l))
                .build(),
        );
        b.build().unwrap()
    }

    fn state_with_votes(senders: &[usize]) -> GlobalState<u32, Msg> {
        let mut s = GlobalState::new(vec![0u32, 0, 0, 0]);
        for &i in senders {
            s.channels.send(p(i), p(0), Msg::Vote(i as u8));
        }
        s
    }

    #[test]
    fn combinations_enumeration() {
        let items = [1, 2, 3, 4];
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
        assert_eq!(combinations(&items, 0).len(), 1);
        let singles = combinations(&items, 1);
        assert_eq!(singles.len(), 4);
    }

    #[test]
    fn cartesian_product_counts() {
        let a = vec![1, 2];
        let b = vec![3];
        let c = vec![4, 5, 6];
        let prod = cartesian_product(&[&a, &b, &c]);
        assert_eq!(prod.len(), 6);
        let empty: Vec<&Vec<i32>> = Vec::new();
        assert_eq!(cartesian_product(&empty).len(), 1);
    }

    #[test]
    fn exact_quorum_instances_enumerate_sender_pairs() {
        let proto = collector_protocol(QuorumSpec::Exact(2));
        let state = state_with_votes(&[1, 2, 3]);
        let instances = enabled_instances(&proto, &state);
        // Three acceptor pairs: {1,2}, {1,3}, {2,3}; the NOOP guard is false.
        assert_eq!(instances.len(), 3);
        assert!(instances.iter().all(|i| i.envelopes.len() == 2));
        assert!(instances.iter().all(|i| i.is_quorum_execution()));
    }

    #[test]
    fn exact_quorum_needs_enough_senders() {
        let proto = collector_protocol(QuorumSpec::Exact(2));
        let state = state_with_votes(&[2]);
        assert!(enabled_instances(&proto, &state).is_empty());
        assert!(!is_enabled(&proto, &state, TransitionId(0)));
    }

    #[test]
    fn at_least_quorum_enumerates_all_admissible_sizes() {
        let proto = collector_protocol(QuorumSpec::AtLeast(2));
        let state = state_with_votes(&[1, 2, 3]);
        let instances = enabled_instances(&proto, &state);
        // Size-2 sets: 3, size-3 sets: 1.
        assert_eq!(instances.len(), 4);
    }

    #[test]
    fn between_quorum_respects_bounds() {
        let proto = collector_protocol(QuorumSpec::Between { min: 1, max: 2 });
        let state = state_with_votes(&[1, 2, 3]);
        let instances = enabled_instances(&proto, &state);
        // Size-1 sets: 3, size-2 sets: 3.
        assert_eq!(instances.len(), 6);
    }

    #[test]
    fn guard_filters_instances() {
        let mut b = ProtocolSpec::builder("guarded");
        b = b
            .process("collector", 0u32)
            .process("v1", 0)
            .process("v2", 0);
        b = b.transition(
            TransitionSpec::builder("COLLECT", p(0))
                .quorum_input("VOTE", QuorumSpec::Exact(2))
                .guard(|_, msgs| {
                    msgs.iter()
                        .all(|e| matches!(e.payload, Msg::Vote(v) if v > 0))
                })
                .effect(|l, _| Outcome::new(*l))
                .build(),
        );
        let proto = b.build().unwrap();
        let mut s = GlobalState::new(vec![0u32, 0, 0]);
        s.channels.send(p(1), p(0), Msg::Vote(0));
        s.channels.send(p(2), p(0), Msg::Vote(5));
        assert!(enabled_instances(&proto, &s).is_empty());
        let mut s2 = GlobalState::new(vec![0u32, 0, 0]);
        s2.channels.send(p(1), p(0), Msg::Vote(1));
        s2.channels.send(p(2), p(0), Msg::Vote(5));
        assert_eq!(enabled_instances(&proto, &s2).len(), 1);
    }

    #[test]
    fn allowed_senders_restrict_instances() {
        let mut b = ProtocolSpec::builder("restricted");
        b = b
            .process("collector", 0u32)
            .process("v1", 0)
            .process("v2", 0)
            .process("v3", 0);
        b = b.transition(
            TransitionSpec::builder("COLLECT_12", p(0))
                .quorum_input("VOTE", QuorumSpec::Exact(2))
                .allowed_senders([p(1), p(2)])
                .effect(|l, _| Outcome::new(*l))
                .build(),
        );
        let proto = b.build().unwrap();
        let state = state_with_votes(&[1, 2, 3]);
        let instances = enabled_instances(&proto, &state);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].senders(), vec![p(1), p(2)]);
    }

    #[test]
    fn multiple_payloads_per_sender_multiply_choices() {
        let proto = collector_protocol(QuorumSpec::Exact(2));
        let mut s = GlobalState::new(vec![0u32, 0, 0, 0]);
        s.channels.send(p(1), p(0), Msg::Vote(1));
        s.channels.send(p(1), p(0), Msg::Vote(9));
        s.channels.send(p(2), p(0), Msg::Vote(2));
        let instances = enabled_instances(&proto, &s);
        // Sender set {1,2}: 2 payload choices for p1 × 1 for p2.
        assert_eq!(instances.len(), 2);
    }

    #[test]
    fn wrong_kind_messages_are_ignored() {
        let proto = collector_protocol(QuorumSpec::Exact(2));
        let mut s = GlobalState::new(vec![0u32, 0, 0, 0]);
        s.channels.send(p(1), p(0), Msg::Other);
        s.channels.send(p(2), p(0), Msg::Vote(2));
        assert!(enabled_instances(&proto, &s).is_empty());
    }

    #[test]
    fn internal_transitions_respect_guards() {
        let mut b = ProtocolSpec::builder("internal");
        b = b.process("a", 0u32);
        b = b.transition(
            TransitionSpec::builder("START", p(0))
                .internal()
                .guard(|l, _| *l == 0)
                .effect(|l, _| Outcome::new(l + 1))
                .build(),
        );
        let proto = b.build().unwrap();
        let s0: GlobalState<u32, Msg> = GlobalState::new(vec![0]);
        assert_eq!(enabled_instances(&proto, &s0).len(), 1);
        let s1: GlobalState<u32, Msg> = GlobalState::new(vec![1]);
        assert!(enabled_instances(&proto, &s1).is_empty());
    }

    #[test]
    fn instance_canonicalises_envelope_order() {
        let a = TransitionInstance::new(
            TransitionId(0),
            p(0),
            vec![
                Envelope::new(p(2), Msg::Vote(2)),
                Envelope::new(p(1), Msg::Vote(1)),
            ],
        );
        let b = TransitionInstance::new(
            TransitionId(0),
            p(0),
            vec![
                Envelope::new(p(1), Msg::Vote(1)),
                Envelope::new(p(2), Msg::Vote(2)),
            ],
        );
        assert_eq!(a, b);
    }
}
