//! Error types of the model crate.

use std::error::Error;
use std::fmt;

use crate::{ProcessId, TransitionId};

/// Errors produced while validating or executing a protocol model.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// A transition refers to a process that does not exist.
    UnknownProcess {
        /// The offending process id.
        process: ProcessId,
        /// Number of processes in the protocol.
        num_processes: usize,
    },
    /// A transition id does not exist in the protocol.
    UnknownTransition {
        /// The offending transition id.
        transition: TransitionId,
    },
    /// Two transitions share the same name; names must be unique because
    /// refinement and reporting address transitions by name.
    DuplicateTransitionName {
        /// The duplicated name.
        name: String,
    },
    /// The protocol declares no processes or no transitions.
    EmptyProtocol,
    /// The initial local-state vector length does not match the number of
    /// processes.
    InitialStateMismatch {
        /// Number of processes declared.
        processes: usize,
        /// Number of initial local states provided.
        initial_states: usize,
    },
    /// A quorum specification can never be satisfied (e.g. quorum size
    /// larger than the number of potential senders).
    InfeasibleQuorum {
        /// Name of the offending transition.
        transition: String,
        /// Detail message.
        detail: String,
    },
    /// A transition instance was executed in a state where its guard does
    /// not hold or its messages are not pending.
    NotEnabled {
        /// Name of the transition.
        transition: String,
    },
    /// State-space exploration exceeded a configured limit.
    LimitExceeded {
        /// Description of the limit that was hit.
        what: String,
        /// The configured limit value.
        limit: usize,
    },
    /// A generic validation failure with a human-readable explanation.
    Validation(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownProcess {
                process,
                num_processes,
            } => write!(
                f,
                "transition refers to process {process} but the protocol has {num_processes} processes"
            ),
            ModelError::UnknownTransition { transition } => {
                write!(f, "unknown transition {transition}")
            }
            ModelError::DuplicateTransitionName { name } => {
                write!(f, "duplicate transition name `{name}`")
            }
            ModelError::EmptyProtocol => write!(f, "protocol has no processes or no transitions"),
            ModelError::InitialStateMismatch {
                processes,
                initial_states,
            } => write!(
                f,
                "protocol declares {processes} processes but {initial_states} initial local states"
            ),
            ModelError::InfeasibleQuorum { transition, detail } => {
                write!(f, "infeasible quorum for transition `{transition}`: {detail}")
            }
            ModelError::NotEnabled { transition } => {
                write!(f, "transition `{transition}` is not enabled in the given state")
            }
            ModelError::LimitExceeded { what, limit } => {
                write!(f, "exploration limit exceeded: {what} > {limit}")
            }
            ModelError::Validation(msg) => write!(f, "protocol validation failed: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::UnknownProcess {
            process: ProcessId(7),
            num_processes: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("p7"));
        assert!(msg.contains('3'));

        let e = ModelError::DuplicateTransitionName {
            name: "READ".into(),
        };
        assert!(e.to_string().contains("READ"));

        let e = ModelError::LimitExceeded {
            what: "states".into(),
            limit: 10,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
