//! Explicit state-graph construction.
//!
//! The semantics of a message-passing protocol is a state graph (Kripke
//! structure) `(S, S0, Δ)` (paper, Section II-A). For small instances the
//! full graph can be materialised; this is used by the transition-refinement
//! validation (Theorem 2 states that a refined protocol generates *the same*
//! state graph) and by tests that compare reduced explorations against the
//! ground truth.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::{successors, GlobalState, LocalState, Message, ModelError, ProtocolSpec, TransitionId};

/// An explicit state graph with states interned as dense indices.
#[derive(Clone, Debug)]
pub struct StateGraph<S, M: Message> {
    states: Vec<GlobalState<S, M>>,
    index: HashMap<GlobalState<S, M>, usize>,
    edges: Vec<Vec<(TransitionId, usize)>>,
    initial: usize,
}

impl<S: LocalState, M: Message> StateGraph<S, M> {
    /// Builds the full state graph of `spec` by breadth-first exploration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::LimitExceeded`] if more than `max_states`
    /// distinct states are reachable.
    pub fn build(spec: &ProtocolSpec<S, M>, max_states: usize) -> Result<Self, ModelError> {
        let initial_state = spec.initial_state();
        let mut graph = StateGraph {
            states: vec![initial_state.clone()],
            index: HashMap::from([(initial_state, 0)]),
            edges: vec![Vec::new()],
            initial: 0,
        };
        let mut queue = VecDeque::from([0usize]);
        while let Some(current) = queue.pop_front() {
            let state = graph.states[current].clone();
            for (instance, next_state) in successors(spec, &state) {
                let next_index = match graph.index.get(&next_state) {
                    Some(&i) => i,
                    None => {
                        if graph.states.len() >= max_states {
                            return Err(ModelError::LimitExceeded {
                                what: "state graph states".into(),
                                limit: max_states,
                            });
                        }
                        let i = graph.states.len();
                        graph.states.push(next_state.clone());
                        graph.index.insert(next_state, i);
                        graph.edges.push(Vec::new());
                        queue.push_back(i);
                        i
                    }
                };
                graph.edges[current].push((instance.transition, next_index));
            }
        }
        Ok(graph)
    }

    /// Returns the number of distinct reachable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Returns the number of edges, counting parallel edges produced by
    /// different transitions once each.
    pub fn num_edges(&self) -> usize {
        self.edge_set().len()
    }

    /// Returns the number of `(state, transition, state)` triples.
    pub fn num_labelled_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Returns the index of the initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Returns the state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn state(&self, index: usize) -> &GlobalState<S, M> {
        &self.states[index]
    }

    /// Returns the outgoing edges of a state as `(transition, successor)`.
    pub fn outgoing(&self, index: usize) -> &[(TransitionId, usize)] {
        &self.edges[index]
    }

    /// Returns the set of state pairs `Δ ⊆ S × S`, ignoring transition
    /// labels. Two protocols generate the same state graph iff they have the
    /// same reachable states and the same Δ — which is exactly the condition
    /// of Definition 1 (transition refinement).
    pub fn edge_set(&self) -> BTreeSet<(usize, usize)> {
        let mut set = BTreeSet::new();
        for (from, outs) in self.edges.iter().enumerate() {
            for (_, to) in outs {
                set.insert((from, *to));
            }
        }
        set
    }

    /// Returns the indices of deadlock states (states with no outgoing edge).
    pub fn deadlocks(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, outs)| outs.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks whether this graph and `other` are isomorphic *as state
    /// graphs over the same state space*: the same set of reachable global
    /// states and the same transition relation Δ (transition labels are
    /// ignored, per Definition 1 of the paper).
    pub fn same_state_graph(&self, other: &StateGraph<S, M>) -> bool {
        if self.num_states() != other.num_states() {
            return false;
        }
        // Map this graph's indices into the other graph's indices via the
        // actual global states.
        let mut mapping = vec![usize::MAX; self.num_states()];
        for (i, state) in self.states.iter().enumerate() {
            match other.index.get(state) {
                Some(&j) => mapping[i] = j,
                None => return false,
            }
        }
        let ours: BTreeSet<(usize, usize)> = self
            .edge_set()
            .into_iter()
            .map(|(a, b)| (mapping[a], mapping[b]))
            .collect();
        ours == other.edge_set()
    }

    /// Returns every reachable state as a set, useful for comparing the
    /// coverage of reduced searches against the ground truth.
    pub fn state_set(&self) -> BTreeSet<GlobalState<S, M>> {
        self.states.iter().cloned().collect()
    }

    /// Renders the graph in Graphviz DOT format with transition names as
    /// edge labels (for debugging small models).
    pub fn to_dot(&self, spec: &ProtocolSpec<S, M>) -> String {
        let mut out = String::from("digraph state_graph {\n  rankdir=LR;\n");
        out.push_str(&format!("  s{} [shape=doublecircle];\n", self.initial));
        for (from, outs) in self.edges.iter().enumerate() {
            for (tid, to) in outs {
                out.push_str(&format!(
                    "  s{from} -> s{to} [label=\"{}\"];\n",
                    spec.transition(*tid).name()
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Token(u8);
    crate::codec!(struct Token(n));

    impl Message for Token {
        fn kind(&self) -> Kind {
            "TOKEN"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Two independent processes, each making one internal step: the state
    /// graph is the classic commuting diamond of Figure 4(a).
    fn diamond() -> ProtocolSpec<u8, Token> {
        ProtocolSpec::builder("diamond")
            .process("a", 0u8)
            .process("b", 0u8)
            .transition(
                TransitionSpec::builder("t1", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("t2", p(1))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_has_four_states_and_four_edges() {
        let graph = StateGraph::build(&diamond(), 1000).unwrap();
        assert_eq!(graph.num_states(), 4);
        assert_eq!(graph.num_edges(), 4);
        assert_eq!(graph.num_labelled_edges(), 4);
        assert_eq!(graph.deadlocks().len(), 1);
    }

    #[test]
    fn state_limit_is_enforced() {
        let err = StateGraph::build(&diamond(), 2).unwrap_err();
        assert!(matches!(err, ModelError::LimitExceeded { .. }));
    }

    #[test]
    fn same_state_graph_is_reflexive() {
        let g1 = StateGraph::build(&diamond(), 1000).unwrap();
        let g2 = StateGraph::build(&diamond(), 1000).unwrap();
        assert!(g1.same_state_graph(&g2));
        assert!(g2.same_state_graph(&g1));
    }

    #[test]
    fn different_protocols_have_different_graphs() {
        let g1 = StateGraph::build(&diamond(), 1000).unwrap();
        // A protocol where only process a moves.
        let single = ProtocolSpec::builder("single")
            .process("a", 0u8)
            .process("b", 0u8)
            .transition(
                TransitionSpec::builder("t1", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap();
        let g2 = StateGraph::<u8, Token>::build(&single, 1000).unwrap();
        assert!(!g1.same_state_graph(&g2));
        assert!(!g2.same_state_graph(&g1));
    }

    #[test]
    fn renaming_transitions_preserves_the_state_graph() {
        // Definition 1 in action: a copy of the diamond with renamed
        // transitions generates the same state graph.
        let renamed = ProtocolSpec::builder("diamond-renamed")
            .process("a", 0u8)
            .process("b", 0u8)
            .transition(
                TransitionSpec::builder("alpha", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("beta", p(1))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap();
        let g1 = StateGraph::build(&diamond(), 1000).unwrap();
        let g2 = StateGraph::build(&renamed, 1000).unwrap();
        assert!(g1.same_state_graph(&g2));
    }

    #[test]
    fn dot_output_mentions_transition_names() {
        let proto = diamond();
        let graph = StateGraph::build(&proto, 1000).unwrap();
        let dot = graph.to_dot(&proto);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("t1"));
        assert!(dot.contains("t2"));
    }

    #[test]
    fn state_set_contains_initial_state() {
        let proto = diamond();
        let graph = StateGraph::build(&proto, 1000).unwrap();
        assert!(graph.state_set().contains(&proto.initial_state()));
        assert_eq!(graph.state(graph.initial()), &proto.initial_state());
        assert_eq!(graph.outgoing(graph.initial()).len(), 2);
    }
}
