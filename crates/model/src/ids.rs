//! Identifiers for processes and transitions.
//!
//! The message-passing computation model (paper, Section II-A) is defined
//! over `n` processes communicating through directed channels. Processes and
//! transitions are referred to by small dense indices so that the model
//! checker can use vectors instead of hash maps on its hot paths.

use std::fmt;

/// Identifier of a process in a message-passing protocol.
///
/// Process identifiers are dense indices in `0..n` where `n` is the number of
/// processes declared by the [`ProtocolSpec`](crate::ProtocolSpec).
///
/// # Examples
///
/// ```
/// use mp_model::ProcessId;
///
/// let p = ProcessId(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(format!("{p}"), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the underlying index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl crate::Encode for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl crate::Decode for ProcessId {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        Ok(ProcessId(usize::decode(input)?))
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

impl From<ProcessId> for usize {
    fn from(value: ProcessId) -> Self {
        value.0
    }
}

/// Identifier of a transition within a [`ProtocolSpec`](crate::ProtocolSpec).
///
/// Transition identifiers index the flat list of transition specifications of
/// a protocol, in declaration order. Refinement (see the `mp-refine` crate)
/// produces protocols with a different transition list, hence different
/// [`TransitionId`] spaces, while generating the same state graph.
///
/// # Examples
///
/// ```
/// use mp_model::TransitionId;
///
/// let t = TransitionId(0);
/// assert_eq!(t.index(), 0);
/// assert_eq!(format!("{t}"), "t0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TransitionId(pub usize);

impl TransitionId {
    /// Returns the underlying index of this transition.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl crate::Encode for TransitionId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl crate::Decode for TransitionId {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        Ok(TransitionId(usize::decode(input)?))
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TransitionId {
    fn from(value: usize) -> Self {
        TransitionId(value)
    }
}

impl From<TransitionId> for usize {
    fn from(value: TransitionId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_roundtrip() {
        let p: ProcessId = 7usize.into();
        assert_eq!(p.index(), 7);
        let back: usize = p.into();
        assert_eq!(back, 7);
    }

    #[test]
    fn process_id_ordering_is_index_ordering() {
        let mut set = BTreeSet::new();
        set.insert(ProcessId(3));
        set.insert(ProcessId(1));
        set.insert(ProcessId(2));
        let collected: Vec<usize> = set.into_iter().map(ProcessId::index).collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }

    #[test]
    fn transition_id_roundtrip() {
        let t: TransitionId = 11usize.into();
        assert_eq!(t.index(), 11);
        let back: usize = t.into();
        assert_eq!(back, 11);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(0).to_string(), "p0");
        assert_eq!(TransitionId(42).to_string(), "t42");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessId::default(), ProcessId(0));
        assert_eq!(TransitionId::default(), TransitionId(0));
    }
}
