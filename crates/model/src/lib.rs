//! # mp-model — the message-passing computation model with quorum transitions
//!
//! This crate is the modelling layer of a Rust reproduction of *"Efficient
//! Model Checking of Fault-Tolerant Distributed Protocols"* (Bokor, Kinder,
//! Serafini, Suri — DSN 2011). It plays the role of the paper's **MP
//! language**: protocols are described as a set of processes with guarded
//! transitions that may consume a *set* of messages in one atomic step
//! (**quorum transitions**), change the local state of the executing process,
//! and send messages.
//!
//! The crate provides:
//!
//! * the structural vocabulary — [`ProcessId`], [`Message`], [`Envelope`],
//!   [`Multiset`], [`Channels`], [`GlobalState`];
//! * transition specifications — [`TransitionSpec`], [`InputSpec`],
//!   [`QuorumSpec`], [`Outcome`], and the Table-IV style [`Annotations`]
//!   consumed by the partial-order reduction in `mp-por`;
//! * protocol specifications — [`ProtocolSpec`] and [`ProtocolBuilder`];
//! * the operational semantics — [`enabled_instances`], [`execute`],
//!   [`successors`], and the explicit [`StateGraph`] used to validate
//!   transition refinement (Theorem 2 of the paper);
//! * the compact state codec — [`Encode`], [`Decode`] and the
//!   [`codec!`](crate::codec!) macro — that lets the disk-backed BFS
//!   frontier of `mp-store` spill encoded states to disk.
//!
//! # Example: a quorum transition
//!
//! The Paxos proposer of Figure 2 in the paper consumes `READ_REPL` messages
//! from a majority of acceptors in a single step. Its MP-Basset counterpart:
//!
//! ```
//! use mp_model::{codec, Message, Outcome, ProcessId, QuorumSpec, TransitionSpec};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! enum Msg { ReadRepl(u32), Write(u32) }
//! codec!(enum Msg { 0 = ReadRepl(v), 1 = Write(v) });
//!
//! impl Message for Msg {
//!     fn kind(&self) -> &'static str {
//!         match self {
//!             Msg::ReadRepl(_) => "READ_REPL",
//!             Msg::Write(_) => "WRITE",
//!         }
//!     }
//! }
//!
//! let acceptors = [ProcessId(1), ProcessId(2), ProcessId(3)];
//! let majority = acceptors.len() / 2 + 1;
//! let read_repl = TransitionSpec::<u32, Msg>::builder("READ_REPL", ProcessId(0))
//!     .quorum_input("READ_REPL", QuorumSpec::Exact(majority))
//!     .sends(&["WRITE"])
//!     .effect(move |_local, msgs| {
//!         // select the highest READ_REPL value among the quorum
//!         let highest = msgs.iter().map(|m| match m.payload {
//!             Msg::ReadRepl(v) => v,
//!             _ => 0,
//!         }).max().unwrap_or(0);
//!         Outcome::new(1).broadcast(acceptors, Msg::Write(highest))
//!     })
//!     .build();
//! assert!(read_repl.is_exact_quorum());
//! ```
//!
//! The higher layers of the reproduction live in sibling crates:
//! `mp-por` (partial-order reduction), `mp-checker` (search engines),
//! `mp-refine` (quorum-/reply-split refinement) and `mp-protocols`
//! (Paxos, Echo Multicast, regular storage).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod codec;
pub mod enabled;
pub mod error;
pub mod graph;
pub mod ids;
pub mod message;
pub mod multiset;
pub mod permute;
pub mod protocol;
pub mod semantics;
pub mod state;
pub mod transition;

pub use channel::Channels;
pub use codec::{
    common_prefix_len, decode_from_slice, encode_to_vec, read_delta_record, read_varint,
    write_delta_record, write_varint, Decode, DecodeError, Encode, Fnv64,
};
pub use enabled::{
    enabled_instances, enabled_instances_of, enabled_instances_with_limits, is_enabled,
    EnumerationLimits, TransitionInstance,
};
pub use error::ModelError;
pub use graph::StateGraph;
pub use ids::{ProcessId, TransitionId};
pub use message::{Envelope, Kind, Message};
pub use multiset::Multiset;
pub use permute::{Permutable, Permutation};
pub use protocol::{EnableFilter, ProtocolBuilder, ProtocolSpec};
pub use semantics::{execute, execute_enabled, is_deadlock, successors};
pub use state::{GlobalState, LocalState};
pub use transition::{
    Annotations, Effect, Guard, InputSpec, Outcome, QuorumSpec, RecipientSet, TransitionBuilder,
    TransitionSpec,
};
