//! Messages and envelopes.
//!
//! In the message-passing computation model every channel `c_{i,j}` is an
//! unordered set of messages from a set `M` (paper, Section II-A). A
//! transition of the receiving process consumes a set of messages from its
//! incoming channels, so the model checker must know which process each
//! pending message came from; the pair of sender and payload is an
//! [`Envelope`].
//!
//! Transitions are named after the *kind* of message they consume (the MP
//! convention in Figure 2 of the paper: the `READ_REPL` transition consumes
//! `READ_REPL` messages). The [`Message`] trait therefore exposes a
//! [`kind`](Message::kind) so that the enabledness computation can quickly
//! select the candidate messages of a transition.

use std::fmt::Debug;
use std::hash::Hash;

use crate::codec::{Decode, Encode};
use crate::ProcessId;

/// The kind (type name) of a message, e.g. `"READ_REPL"`.
///
/// Kinds are `'static` string slices: protocols are defined in Rust code, so
/// the set of kinds is fixed at compile time, exactly as the set of MP
/// transition names is fixed in the paper's models.
pub type Kind = &'static str;

/// A protocol message payload.
///
/// Protocols define a single Rust type (typically an `enum` with one variant
/// per message kind) implementing this trait. The bounds are what the
/// explicit-state model checker needs: messages are stored in canonical
/// (ordered) multisets inside hashable global states, and they must be
/// codec-capable ([`Encode`]/[`Decode`], usually via the
/// [`codec!`](crate::codec!) macro) so the disk-backed BFS frontier of
/// `mp-store` can spill states holding them.
///
/// # Examples
///
/// ```
/// use mp_model::{codec, Kind, Message};
///
/// #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
/// enum PingPong {
///     Ping(u32),
///     Pong(u32),
/// }
/// codec!(enum PingPong { 0 = Ping(seq), 1 = Pong(seq) });
///
/// impl Message for PingPong {
///     fn kind(&self) -> Kind {
///         match self {
///             PingPong::Ping(_) => "PING",
///             PingPong::Pong(_) => "PONG",
///         }
///     }
/// }
///
/// assert_eq!(PingPong::Ping(1).kind(), "PING");
/// ```
pub trait Message:
    Clone + Eq + Ord + Hash + Debug + Send + Sync + Encode + Decode + 'static
{
    /// Returns the kind of this message.
    ///
    /// The kind is used to match messages with the transitions that can
    /// consume them (the MP convention that a transition is named after its
    /// input message type).
    fn kind(&self) -> Kind;
}

/// A message together with the process that sent it.
///
/// Envelopes identify a pending message inside the incoming channels of a
/// process: the receiving process is implicit (it is the process whose
/// transition consumes the envelope), and the sender is needed both by the
/// semantics (`senders(X)` in the paper) and by quorum-split refinement,
/// which restricts the allowed senders of a transition.
///
/// # Examples
///
/// ```
/// use mp_model::{Envelope, ProcessId};
///
/// let env = Envelope::new(ProcessId(1), "hello".to_string());
/// assert_eq!(env.sender, ProcessId(1));
/// assert_eq!(env.payload, "hello");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Envelope<M> {
    /// The process that sent the message.
    pub sender: ProcessId,
    /// The message payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates a new envelope from a sender and a payload.
    pub fn new(sender: ProcessId, payload: M) -> Self {
        Envelope { sender, payload }
    }
}

impl<M: Message> Envelope<M> {
    /// Returns the kind of the enclosed message.
    pub fn kind(&self) -> Kind {
        self.payload.kind()
    }
}

impl<M: Encode> Encode for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sender.encode(out);
        self.payload.encode(out);
    }
}

impl<M: Decode> Decode for Envelope<M> {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        Ok(Envelope {
            sender: ProcessId::decode(input)?,
            payload: M::decode(input)?,
        })
    }
}

/// Computes `senders(X)`: the set of distinct processes that sent the
/// messages in `envelopes` (paper, Section II-A).
///
/// The result is sorted and deduplicated.
///
/// # Examples
///
/// ```
/// use mp_model::{message::senders, Envelope, ProcessId};
///
/// let xs = vec![
///     Envelope::new(ProcessId(2), "a"),
///     Envelope::new(ProcessId(0), "b"),
///     Envelope::new(ProcessId(2), "c"),
/// ];
/// assert_eq!(senders(&xs), vec![ProcessId(0), ProcessId(2)]);
/// ```
pub fn senders<M>(envelopes: &[Envelope<M>]) -> Vec<ProcessId> {
    let mut out: Vec<ProcessId> = envelopes.iter().map(|e| e.sender).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Convenience implementation so that plain strings can be used as messages
/// in documentation examples and unit tests of the infrastructure crates.
/// The kind of a `String` message is the static string `"STRING"`.
impl Message for String {
    fn kind(&self) -> Kind {
        "STRING"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum TestMsg {
        A(u8),
        B,
    }
    crate::codec!(enum TestMsg { 0 = A(n), 1 = B });

    impl Message for TestMsg {
        fn kind(&self) -> Kind {
            match self {
                TestMsg::A(_) => "A",
                TestMsg::B => "B",
            }
        }
    }

    #[test]
    fn envelope_kind_matches_payload_kind() {
        let e = Envelope::new(ProcessId(0), TestMsg::A(3));
        assert_eq!(e.kind(), "A");
        let e = Envelope::new(ProcessId(0), TestMsg::B);
        assert_eq!(e.kind(), "B");
    }

    #[test]
    fn senders_deduplicates_and_sorts() {
        let xs = vec![
            Envelope::new(ProcessId(3), TestMsg::B),
            Envelope::new(ProcessId(1), TestMsg::A(0)),
            Envelope::new(ProcessId(3), TestMsg::A(1)),
            Envelope::new(ProcessId(0), TestMsg::B),
        ];
        assert_eq!(senders(&xs), vec![ProcessId(0), ProcessId(1), ProcessId(3)]);
    }

    #[test]
    fn senders_of_empty_set_is_empty() {
        let xs: Vec<Envelope<TestMsg>> = Vec::new();
        assert!(senders(&xs).is_empty());
    }

    #[test]
    fn envelope_ordering_is_sender_then_payload() {
        let a = Envelope::new(ProcessId(0), TestMsg::B);
        let b = Envelope::new(ProcessId(1), TestMsg::A(0));
        assert!(a < b);
        let c = Envelope::new(ProcessId(1), TestMsg::A(1));
        assert!(b < c);
    }

    #[test]
    fn string_messages_have_fixed_kind() {
        assert_eq!("x".to_string().kind(), "STRING");
    }
}
