//! A canonical, ordered multiset.
//!
//! Channels in the message-passing computation model are *unordered*
//! collections of messages that may contain duplicates (the same payload sent
//! twice must be deliverable twice). The model checker stores global states
//! in a hash table, so channel contents need a canonical representation:
//! [`Multiset`] keeps elements in a `BTreeMap` keyed by the element with its
//! multiplicity as the value, which makes equality, ordering and hashing of
//! channel contents independent of insertion order.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::iter::FromIterator;

/// An ordered multiset (bag) of elements.
///
/// # Examples
///
/// ```
/// use mp_model::Multiset;
///
/// let mut bag: Multiset<&str> = Multiset::new();
/// bag.insert("ack");
/// bag.insert("ack");
/// bag.insert("nack");
/// assert_eq!(bag.count(&"ack"), 2);
/// assert_eq!(bag.len(), 3);
/// assert!(bag.remove(&"ack"));
/// assert_eq!(bag.count(&"ack"), 1);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Multiset<T: Ord> {
    elems: BTreeMap<T, usize>,
    total: usize,
}

impl<T: Ord> Default for Multiset<T> {
    fn default() -> Self {
        Multiset {
            elems: BTreeMap::new(),
            total: 0,
        }
    }
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the total number of elements, counting multiplicities.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Returns `true` if the multiset contains no elements.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Returns the number of *distinct* elements.
    pub fn distinct_len(&self) -> usize {
        self.elems.len()
    }

    /// Inserts one occurrence of `value`.
    pub fn insert(&mut self, value: T) {
        self.insert_n(value, 1);
    }

    /// Inserts `n` occurrences of `value`. Inserting zero occurrences is a
    /// no-op.
    pub fn insert_n(&mut self, value: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.elems.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Removes one occurrence of `value`.
    ///
    /// Returns `true` if an occurrence was present and removed.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.elems.get_mut(value) {
            Some(count) if *count > 1 => {
                *count -= 1;
                self.total -= 1;
                true
            }
            Some(_) => {
                self.elems.remove(value);
                self.total -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes all occurrences of `value`, returning how many were removed.
    pub fn remove_all(&mut self, value: &T) -> usize {
        match self.elems.remove(value) {
            Some(count) => {
                self.total -= count;
                count
            }
            None => 0,
        }
    }

    /// Returns the multiplicity of `value`.
    pub fn count(&self, value: &T) -> usize {
        self.elems.get(value).copied().unwrap_or(0)
    }

    /// Returns `true` if at least one occurrence of `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.elems.contains_key(value)
    }

    /// Iterates over `(element, multiplicity)` pairs in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, usize)> {
        self.elems.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates over every occurrence, repeating elements according to their
    /// multiplicity, in element order.
    pub fn iter_occurrences(&self) -> impl Iterator<Item = &T> {
        self.elems
            .iter()
            .flat_map(|(k, v)| std::iter::repeat_n(k, *v))
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.elems.clear();
        self.total = 0;
    }

    /// Merges another multiset into this one.
    pub fn union_with(&mut self, other: &Multiset<T>)
    where
        T: Clone,
    {
        for (elem, count) in other.iter() {
            self.insert_n(elem.clone(), count);
        }
    }

    /// Returns `true` if every occurrence in `other` is also present here
    /// (multiset inclusion).
    pub fn includes(&self, other: &Multiset<T>) -> bool {
        other.iter().all(|(elem, count)| self.count(elem) >= count)
    }
}

// A multiset encodes as its (element, multiplicity) map; the total is
// recomputed on decode and zero multiplicities are rejected so decoded
// values are always in canonical form.
impl<T: Ord + crate::Encode> crate::Encode for Multiset<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.elems.encode(out);
    }
}

impl<T: Ord + crate::Decode> crate::Decode for Multiset<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        let elems: BTreeMap<T, usize> = BTreeMap::decode(input)?;
        let mut total = 0;
        for count in elems.values() {
            if *count == 0 {
                return Err(crate::DecodeError::new("zero multiplicity in multiset"));
            }
            total += count;
        }
        Ok(Multiset { elems, total })
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (elem, count) in self.elems.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if *count == 1 {
                write!(f, "{elem:?}")?;
            } else {
                write!(f, "{elem:?}×{count}")?;
            }
        }
        write!(f, "}}")
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Multiset::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl<T: Ord + Clone> Multiset<T> {
    /// Returns the elements of the multiset as a sorted vector, with
    /// duplicates repeated according to multiplicity.
    pub fn to_sorted_vec(&self) -> Vec<T> {
        self.iter_occurrences().cloned().collect()
    }
}

/// Entry-style increment used internally when the element is already owned.
impl<T: Ord> Multiset<T> {
    pub(crate) fn entry_increment(&mut self, value: T) {
        match self.elems.entry(value) {
            Entry::Occupied(mut e) => *e.get_mut() += 1,
            Entry::Vacant(e) => {
                e.insert(1);
            }
        }
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let m: Multiset<u32> = Multiset::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.distinct_len(), 0);
    }

    #[test]
    fn insert_and_count() {
        let mut m = Multiset::new();
        m.insert(5u32);
        m.insert(5);
        m.insert(7);
        assert_eq!(m.count(&5), 2);
        assert_eq!(m.count(&7), 1);
        assert_eq!(m.count(&9), 0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
    }

    #[test]
    fn insert_n_zero_is_noop() {
        let mut m = Multiset::new();
        m.insert_n(1u8, 0);
        assert!(m.is_empty());
        assert!(!m.contains(&1));
    }

    #[test]
    fn remove_decrements_and_deletes() {
        let mut m = Multiset::new();
        m.insert_n("x", 2);
        assert!(m.remove(&"x"));
        assert_eq!(m.count(&"x"), 1);
        assert!(m.remove(&"x"));
        assert_eq!(m.count(&"x"), 0);
        assert!(!m.contains(&"x"));
        assert!(!m.remove(&"x"));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn remove_all_returns_multiplicity() {
        let mut m = Multiset::new();
        m.insert_n('a', 3);
        m.insert('b');
        assert_eq!(m.remove_all(&'a'), 3);
        assert_eq!(m.remove_all(&'a'), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn equality_is_insertion_order_independent() {
        let a: Multiset<u32> = [3, 1, 2, 1].into_iter().collect();
        let b: Multiset<u32> = [1, 1, 2, 3].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn hash_matches_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a: Multiset<u32> = [3, 1, 2, 1].into_iter().collect();
        let b: Multiset<u32> = [1, 2, 1, 3].into_iter().collect();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn iter_occurrences_repeats_elements() {
        let m: Multiset<u32> = [2, 2, 1].into_iter().collect();
        let v: Vec<u32> = m.iter_occurrences().copied().collect();
        assert_eq!(v, vec![1, 2, 2]);
        assert_eq!(m.to_sorted_vec(), vec![1, 2, 2]);
    }

    #[test]
    fn union_with_adds_multiplicities() {
        let mut a: Multiset<u32> = [1, 2].into_iter().collect();
        let b: Multiset<u32> = [2, 3].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.count(&1), 1);
        assert_eq!(a.count(&2), 2);
        assert_eq!(a.count(&3), 1);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn includes_checks_multiplicities() {
        let big: Multiset<u32> = [1, 1, 2, 3].into_iter().collect();
        let small: Multiset<u32> = [1, 2].into_iter().collect();
        let too_many: Multiset<u32> = [2, 2].into_iter().collect();
        assert!(big.includes(&small));
        assert!(big.includes(&big));
        assert!(!big.includes(&too_many));
        assert!(!small.includes(&big));
    }

    #[test]
    fn debug_output_shows_multiplicities() {
        let m: Multiset<u32> = [1, 1, 2].into_iter().collect();
        assert_eq!(format!("{m:?}"), "{1×2, 2}");
        let empty: Multiset<u32> = Multiset::new();
        assert_eq!(format!("{empty:?}"), "{}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut m: Multiset<u32> = [1, 2, 3].into_iter().collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.distinct_len(), 0);
    }

    #[test]
    fn extend_adds_elements() {
        let mut m: Multiset<u32> = Multiset::new();
        m.extend([4, 4, 5]);
        assert_eq!(m.count(&4), 2);
        assert_eq!(m.count(&5), 1);
    }
}
