//! Process-index permutations and the [`Permutable`] trait.
//!
//! Fault-tolerant protocols are full of *interchangeable* processes: the
//! acceptors of Paxos, the base objects of a replicated register, the
//! replicas of a quorum system. Swapping two such processes maps every
//! execution of the model onto another execution — the state graph is
//! invariant under the swap. The symmetry-reduction layer (`mp-symmetry`)
//! exploits this by storing only one representative per orbit of the
//! permutation group; this module provides the vocabulary it builds on:
//!
//! * [`Permutation`] — a bijection on process indices;
//! * [`Permutable`] — "this value can be rewritten under a process
//!   permutation". Local states and messages that embed [`ProcessId`]s
//!   (reply buffers, initiator fields, ...) must map them; plain data is
//!   invariant.
//!
//! [`GlobalState::permute`](crate::GlobalState::permute) and
//! [`Channels::permute`](crate::Channels::permute) lift a permutation to
//! whole states: local states move to their new index *and* are rewritten,
//! channel endpoints are remapped, payloads are rewritten.

use std::collections::{BTreeMap, BTreeSet};

use crate::ProcessId;

/// A bijection on the process indices `0..n`.
///
/// `map[i]` is the index process `i` is sent to.
///
/// # Examples
///
/// ```
/// use mp_model::{Permutation, ProcessId};
///
/// let swap = Permutation::from_map(vec![0, 2, 1]).unwrap();
/// assert_eq!(swap.apply(ProcessId(1)), ProcessId(2));
/// assert_eq!(swap.inverse(), swap); // a transposition is its own inverse
/// assert!(Permutation::identity(3).is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` processes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Builds a permutation from an explicit index map (`map[i]` = image of
    /// process `i`). Returns `None` if `map` is not a bijection on
    /// `0..map.len()`.
    pub fn from_map(map: Vec<usize>) -> Option<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &image in &map {
            if image >= n || seen[image] {
                return None;
            }
            seen[image] = true;
        }
        Some(Permutation { map })
    }

    /// Number of process indices the permutation acts on.
    pub fn degree(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &image)| i == image)
    }

    /// Applies the permutation to a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn apply_index(&self, index: usize) -> usize {
        self.map[index]
    }

    /// Applies the permutation to a process id.
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    pub fn apply(&self, process: ProcessId) -> ProcessId {
        ProcessId(self.map[process.index()])
    }

    /// The composition "`self` after `other`": the result maps `i` to
    /// `self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        Permutation {
            map: other.map.iter().map(|&i| self.map[i]).collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &image) in self.map.iter().enumerate() {
            inv[image] = i;
        }
        Permutation { map: inv }
    }
}

/// A value that can be rewritten under a process permutation.
///
/// The contract: `permute` must map every embedded [`ProcessId`] through the
/// permutation and leave everything else untouched. Types with no embedded
/// process ids implement it as the identity (the blanket impls below cover
/// the common plain-data types).
pub trait Permutable: Sized {
    /// Rewrites every embedded process id through `perm`.
    fn permute(&self, perm: &Permutation) -> Self;
}

impl Permutable for ProcessId {
    fn permute(&self, perm: &Permutation) -> Self {
        perm.apply(*self)
    }
}

/// Identity implementations for plain-data types that cannot embed a
/// process id.
macro_rules! identity_permutable {
    ($($t:ty),* $(,)?) => {
        $(impl Permutable for $t {
            fn permute(&self, _perm: &Permutation) -> Self {
                self.clone()
            }
        })*
    };
}

identity_permutable!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    String,
    &'static str,
);

impl<T: Permutable> Permutable for Option<T> {
    fn permute(&self, perm: &Permutation) -> Self {
        self.as_ref().map(|v| v.permute(perm))
    }
}

impl<T: Permutable> Permutable for Vec<T> {
    fn permute(&self, perm: &Permutation) -> Self {
        self.iter().map(|v| v.permute(perm)).collect()
    }
}

impl<T: Permutable + Ord> Permutable for BTreeSet<T> {
    fn permute(&self, perm: &Permutation) -> Self {
        self.iter().map(|v| v.permute(perm)).collect()
    }
}

impl<K: Permutable + Ord, V: Permutable> Permutable for BTreeMap<K, V> {
    fn permute(&self, perm: &Permutation) -> Self {
        self.iter()
            .map(|(k, v)| (k.permute(perm), v.permute(perm)))
            .collect()
    }
}

impl<A: Permutable, B: Permutable> Permutable for (A, B) {
    fn permute(&self, perm: &Permutation) -> Self {
        (self.0.permute(perm), self.1.permute(perm))
    }
}

impl<A: Permutable, B: Permutable, C: Permutable> Permutable for (A, B, C) {
    fn permute(&self, perm: &Permutation) -> Self {
        (
            self.0.permute(perm),
            self.1.permute(perm),
            self.2.permute(perm),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_map_rejects_non_bijections() {
        assert!(Permutation::from_map(vec![0, 0]).is_none());
        assert!(Permutation::from_map(vec![0, 2]).is_none());
        assert!(Permutation::from_map(vec![1, 0]).is_some());
    }

    #[test]
    fn compose_applies_right_then_left() {
        // other: 0->1->2->0 (cycle), self: swap 0,1.
        let cycle = Permutation::from_map(vec![1, 2, 0]).unwrap();
        let swap = Permutation::from_map(vec![1, 0, 2]).unwrap();
        let composed = swap.compose(&cycle);
        // i -> swap(cycle(i)): 0->swap(1)=0, 1->swap(2)=2, 2->swap(0)=1.
        assert_eq!(composed, Permutation::from_map(vec![0, 2, 1]).unwrap());
    }

    #[test]
    fn inverse_undoes() {
        let p = Permutation::from_map(vec![2, 0, 1]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn permutable_containers_map_pids() {
        let swap = Permutation::from_map(vec![1, 0]).unwrap();
        let set: BTreeSet<(ProcessId, u8)> = [(ProcessId(0), 7u8), (ProcessId(1), 9u8)]
            .into_iter()
            .collect();
        let mapped = set.permute(&swap);
        assert!(mapped.contains(&(ProcessId(1), 7)));
        assert!(mapped.contains(&(ProcessId(0), 9)));
        assert_eq!(5u32.permute(&swap), 5);
        assert_eq!(Some(ProcessId(0)).permute(&swap), Some(ProcessId(1)));
        assert_eq!("x".to_string().permute(&swap), "x");
    }
}
