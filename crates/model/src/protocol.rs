//! Protocol specifications: a set of processes, their initial local states
//! and their transitions.
//!
//! A message-passing protocol is "specified by defining a set `T_i` of
//! transitions for each process `i`" (paper, Section II-A). A
//! [`ProtocolSpec`] is the flat list of all transitions of all processes,
//! together with the initial local state of every process and human-readable
//! metadata used in reports and counterexamples.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::{
    GlobalState, InputSpec, LocalState, Message, ModelError, ProcessId, QuorumSpec, TransitionId,
    TransitionSpec,
};

/// A global enable filter: a state-dependent admission predicate consulted
/// before a transition's instances are enumerated.
///
/// Ordinary guards only see the local state of the executing process; an
/// enable filter sees the whole [`GlobalState`] and can therefore express
/// *global* side conditions — the motivating use is the fault budget of
/// `mp-faults`, where an environment transition is admissible only while the
/// system-wide number of crashes/drops/duplications/corruptions is below its
/// budget. The filter must be **monotone against itself**: it may depend on
/// state components that only its own (environment) transitions modify, and
/// `mp-por` keeps SPOR/DPOR sound by treating environment transitions as
/// mutually dependent.
///
/// The filter receives the transition *spec* (not its id) so that it stays
/// valid across [`ProtocolSpec::with_transitions`] (refinement renumbers
/// ids but preserves names and annotations).
pub type EnableFilter<S, M> =
    Arc<dyn Fn(&GlobalState<S, M>, &TransitionSpec<S, M>) -> bool + Send + Sync>;

/// A complete protocol model.
///
/// Build one with [`ProtocolBuilder`]; the builder validates the model on
/// [`ProtocolBuilder::build`].
#[derive(Clone)]
pub struct ProtocolSpec<S, M: Ord> {
    name: String,
    process_names: Vec<String>,
    initial_locals: Vec<S>,
    transitions: Vec<TransitionSpec<S, M>>,
    transitions_by_process: Vec<Vec<TransitionId>>,
    enable_filter: Option<EnableFilter<S, M>>,
}

impl<S: LocalState, M: Message> ProtocolSpec<S, M> {
    /// Starts building a protocol named `name`.
    pub fn builder(name: impl Into<String>) -> ProtocolBuilder<S, M> {
        ProtocolBuilder::new(name)
    }

    /// Returns the protocol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of processes.
    pub fn num_processes(&self) -> usize {
        self.initial_locals.len()
    }

    /// Returns the display name of a process.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn process_name(&self, process: ProcessId) -> &str {
        &self.process_names[process.index()]
    }

    /// Returns all process ids of the protocol.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.num_processes()).map(ProcessId)
    }

    /// Returns the initial global state (all channels empty).
    pub fn initial_state(&self) -> GlobalState<S, M> {
        GlobalState::new(self.initial_locals.clone())
    }

    /// Returns the number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Returns all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.num_transitions()).map(TransitionId)
    }

    /// Returns the transition with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`ProtocolSpec::get`] for a
    /// fallible lookup.
    pub fn transition(&self, id: TransitionId) -> &TransitionSpec<S, M> {
        &self.transitions[id.index()]
    }

    /// Returns the transition with the given id, if it exists.
    pub fn get(&self, id: TransitionId) -> Option<&TransitionSpec<S, M>> {
        self.transitions.get(id.index())
    }

    /// Returns the id of the transition with the given name, if any.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name() == name)
            .map(TransitionId)
    }

    /// Iterates over `(id, spec)` pairs of all transitions.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &TransitionSpec<S, M>)> {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId(i), t))
    }

    /// Returns the ids of the transitions executed by `process`.
    pub fn transitions_of(&self, process: ProcessId) -> &[TransitionId] {
        &self.transitions_by_process[process.index()]
    }

    /// Replaces the transition list wholesale, revalidating the protocol.
    ///
    /// This is the primitive used by transition refinement: the process set
    /// and initial states stay identical, only the transition set changes.
    ///
    /// # Errors
    ///
    /// Returns an error if the new transition set fails validation (unknown
    /// processes, duplicate names, infeasible quorums, ...).
    pub fn with_transitions(
        &self,
        transitions: Vec<TransitionSpec<S, M>>,
    ) -> Result<Self, ModelError> {
        let mut builder = ProtocolBuilder::new(self.name.clone());
        for (name, local) in self.process_names.iter().zip(self.initial_locals.iter()) {
            builder = builder.process(name.clone(), local.clone());
        }
        for t in transitions {
            builder = builder.transition(t);
        }
        let mut spec = builder.build()?;
        // The enable filter is keyed on transition specs, not ids, so it
        // survives refinement's renumbering unchanged.
        spec.enable_filter = self.enable_filter.clone();
        Ok(spec)
    }

    /// Installs a global [`EnableFilter`] (builder style). The filter is
    /// consulted by [`enabled_instances`](crate::enabled_instances) before a
    /// transition's instances are enumerated; returning `false` makes the
    /// transition disabled in that state.
    pub fn with_enable_filter<F>(mut self, filter: F) -> Self
    where
        F: Fn(&GlobalState<S, M>, &TransitionSpec<S, M>) -> bool + Send + Sync + 'static,
    {
        self.enable_filter = Some(Arc::new(filter));
        self
    }

    /// Returns the installed enable filter, if any.
    pub fn enable_filter(&self) -> Option<&EnableFilter<S, M>> {
        self.enable_filter.as_ref()
    }

    /// Returns `true` if `transition` passes the enable filter in `state`
    /// (trivially `true` when no filter is installed). Guards and channel
    /// contents are judged separately by the enabledness enumeration.
    pub fn admits(&self, state: &GlobalState<S, M>, transition: &TransitionSpec<S, M>) -> bool {
        match &self.enable_filter {
            Some(filter) => filter(state, transition),
            None => true,
        }
    }

    /// Returns a copy of this protocol with a different name (used by the
    /// refinement strategies to label split models).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        let mut copy = self.clone();
        copy.name = name.into();
        copy
    }

    /// Returns the names of all transitions, in id order.
    pub fn transition_names(&self) -> Vec<&str> {
        self.transitions.iter().map(|t| t.name()).collect()
    }

    /// A stable 64-bit fingerprint of the protocol's *structure*: its name,
    /// process names, and transition (name, executing-process) pairs in id
    /// order. Guards and effects are opaque closures, so behavioural changes
    /// that keep the structure identical are not detected — the fingerprint
    /// identifies *which model was configured*, not its semantics.
    ///
    /// The checkpoint manifests of `mp-store` persist this value and refuse
    /// to resume a run against a protocol whose structure has changed (a
    /// renamed transition, a different process count); see the
    /// `docs/ON_DISK_FORMATS.md` compatibility policy.
    pub fn structure_fingerprint(&self) -> u64 {
        let mut h = crate::codec::Fnv64::new();
        h.write(self.name.as_bytes());
        h.write_u64(self.process_names.len() as u64);
        for name in &self.process_names {
            h.write(name.as_bytes());
        }
        h.write_u64(self.transitions.len() as u64);
        for t in &self.transitions {
            h.write(t.name().as_bytes());
            h.write_u64(t.process().0 as u64);
        }
        h.finish()
    }
}

impl<S, M: Ord> fmt::Debug for ProtocolSpec<S, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolSpec")
            .field("name", &self.name)
            .field("processes", &self.process_names)
            .field("num_transitions", &self.transitions.len())
            .field("enable_filter", &self.enable_filter.is_some())
            .finish_non_exhaustive()
    }
}

/// Builder for [`ProtocolSpec`].
///
/// # Examples
///
/// ```
/// use mp_model::{Outcome, ProcessId, ProtocolSpec, TransitionSpec};
///
/// let protocol: ProtocolSpec<u32, String> = ProtocolSpec::builder("demo")
///     .process("client", 0u32)
///     .process("server", 0u32)
///     .transition(
///         TransitionSpec::builder("REQUEST", ProcessId(0))
///             .internal()
///             .guard(|local, _| *local == 0)
///             .sends(&["STRING"])
///             .effect(|_, _| Outcome::new(1).send(ProcessId(1), "req".to_string()))
///             .build(),
///     )
///     .transition(
///         TransitionSpec::builder("SERVE", ProcessId(1))
///             .single_input("STRING")
///             .effect(|local, _| Outcome::new(local + 1))
///             .build(),
///     )
///     .build()
///     .expect("valid protocol");
/// assert_eq!(protocol.num_processes(), 2);
/// assert_eq!(protocol.num_transitions(), 2);
/// ```
pub struct ProtocolBuilder<S, M> {
    name: String,
    process_names: Vec<String>,
    initial_locals: Vec<S>,
    transitions: Vec<TransitionSpec<S, M>>,
}

impl<S: LocalState, M: Message> ProtocolBuilder<S, M> {
    /// Starts a builder for a protocol named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProtocolBuilder {
            name: name.into(),
            process_names: Vec::new(),
            initial_locals: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Declares a process with a display name and initial local state, and
    /// returns the builder. Processes are numbered in declaration order.
    pub fn process(mut self, name: impl Into<String>, initial: S) -> Self {
        self.process_names.push(name.into());
        self.initial_locals.push(initial);
        self
    }

    /// Declares a process and returns its id (useful when transition
    /// definitions need to mention the id).
    pub fn add_process(&mut self, name: impl Into<String>, initial: S) -> ProcessId {
        self.process_names.push(name.into());
        self.initial_locals.push(initial);
        ProcessId(self.process_names.len() - 1)
    }

    /// Adds a transition.
    pub fn transition(mut self, spec: TransitionSpec<S, M>) -> Self {
        self.transitions.push(spec);
        self
    }

    /// Adds a transition (by-reference variant for loop-heavy construction).
    pub fn add_transition(&mut self, spec: TransitionSpec<S, M>) {
        self.transitions.push(spec);
    }

    /// Validates and builds the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the protocol is structurally invalid:
    /// no processes/transitions, initial-state mismatch, transitions of
    /// unknown processes, duplicate transition names, sender restrictions
    /// mentioning unknown processes, or quorums larger than the candidate
    /// sender set.
    pub fn build(self) -> Result<ProtocolSpec<S, M>, ModelError> {
        let num_processes = self.process_names.len();
        if num_processes == 0 || self.transitions.is_empty() {
            return Err(ModelError::EmptyProtocol);
        }
        if self.initial_locals.len() != num_processes {
            return Err(ModelError::InitialStateMismatch {
                processes: num_processes,
                initial_states: self.initial_locals.len(),
            });
        }

        let mut names: HashSet<&str> = HashSet::new();
        for t in &self.transitions {
            if t.process().index() >= num_processes {
                return Err(ModelError::UnknownProcess {
                    process: t.process(),
                    num_processes,
                });
            }
            if !names.insert(t.name()) {
                return Err(ModelError::DuplicateTransitionName {
                    name: t.name().to_string(),
                });
            }
            if let Some(senders) = t.allowed_senders() {
                if let Some(bad) = senders.iter().find(|p| p.index() >= num_processes) {
                    return Err(ModelError::UnknownProcess {
                        process: *bad,
                        num_processes,
                    });
                }
            }
            if let InputSpec::Quorum { quorum, .. } = t.input() {
                let candidate_senders = t
                    .allowed_senders()
                    .map(BTreeSet::len)
                    .unwrap_or(num_processes);
                let min = quorum.min_senders();
                if min == 0 {
                    return Err(ModelError::InfeasibleQuorum {
                        transition: t.name().to_string(),
                        detail: "quorum size zero; use an internal transition instead".into(),
                    });
                }
                if min > candidate_senders {
                    return Err(ModelError::InfeasibleQuorum {
                        transition: t.name().to_string(),
                        detail: format!(
                            "quorum needs {min} senders but only {candidate_senders} processes may send to it"
                        ),
                    });
                }
                if let QuorumSpec::Between { min, max } = quorum {
                    if min > max {
                        return Err(ModelError::InfeasibleQuorum {
                            transition: t.name().to_string(),
                            detail: format!("empty quorum range {min}..={max}"),
                        });
                    }
                }
            }
        }

        let mut transitions_by_process = vec![Vec::new(); num_processes];
        for (i, t) in self.transitions.iter().enumerate() {
            transitions_by_process[t.process().index()].push(TransitionId(i));
        }

        Ok(ProtocolSpec {
            name: self.name,
            process_names: self.process_names,
            initial_locals: self.initial_locals,
            transitions: self.transitions,
            transitions_by_process,
            enable_filter: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    type S = u32;
    type M = String;

    fn internal(name: &str, p: usize) -> TransitionSpec<S, M> {
        TransitionSpec::builder(name.to_string(), ProcessId(p))
            .internal()
            .effect(|l, _| Outcome::new(l + 1))
            .build()
    }

    #[test]
    fn build_minimal_protocol() {
        let proto: ProtocolSpec<S, M> = ProtocolSpec::builder("p")
            .process("a", 0)
            .transition(internal("t0", 0))
            .build()
            .unwrap();
        assert_eq!(proto.name(), "p");
        assert_eq!(proto.num_processes(), 1);
        assert_eq!(proto.num_transitions(), 1);
        assert_eq!(proto.process_name(ProcessId(0)), "a");
        assert_eq!(proto.transition_by_name("t0"), Some(TransitionId(0)));
        assert_eq!(proto.transition_by_name("nope"), None);
        assert_eq!(proto.transitions_of(ProcessId(0)), &[TransitionId(0)]);
        let init = proto.initial_state();
        assert_eq!(init.locals, vec![0]);
    }

    #[test]
    fn empty_protocol_is_rejected() {
        let err = ProtocolSpec::<S, M>::builder("p").build().unwrap_err();
        assert_eq!(err, ModelError::EmptyProtocol);
        let err = ProtocolSpec::<S, M>::builder("p")
            .process("a", 0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::EmptyProtocol);
    }

    #[test]
    fn unknown_process_is_rejected() {
        let err = ProtocolSpec::<S, M>::builder("p")
            .process("a", 0)
            .transition(internal("t0", 3))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownProcess { .. }));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = ProtocolSpec::<S, M>::builder("p")
            .process("a", 0)
            .transition(internal("t", 0))
            .transition(internal("t", 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateTransitionName { .. }));
    }

    #[test]
    fn infeasible_quorum_is_rejected() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("q", ProcessId(0))
            .quorum_input("STRING", crate::QuorumSpec::Exact(5))
            .effect(|l, _| Outcome::new(*l))
            .build();
        let err = ProtocolSpec::builder("p")
            .process("a", 0)
            .process("b", 0)
            .transition(t)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InfeasibleQuorum { .. }));
    }

    #[test]
    fn allowed_senders_out_of_range_rejected() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("q", ProcessId(0))
            .single_input("STRING")
            .allowed_senders([ProcessId(9)])
            .effect(|l, _| Outcome::new(*l))
            .build();
        let err = ProtocolSpec::builder("p")
            .process("a", 0)
            .process("b", 0)
            .transition(t)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownProcess { .. }));
    }

    #[test]
    fn with_transitions_replaces_and_revalidates() {
        let proto: ProtocolSpec<S, M> = ProtocolSpec::builder("p")
            .process("a", 0)
            .process("b", 1)
            .transition(internal("t0", 0))
            .build()
            .unwrap();
        let replaced = proto
            .with_transitions(vec![internal("x", 0), internal("y", 1)])
            .unwrap();
        assert_eq!(replaced.num_transitions(), 2);
        assert_eq!(replaced.num_processes(), 2);
        assert_eq!(replaced.initial_state().locals, vec![0, 1]);
        assert!(proto.with_transitions(vec![internal("x", 7)]).is_err());
    }

    #[test]
    fn renamed_keeps_structure() {
        let proto: ProtocolSpec<S, M> = ProtocolSpec::builder("p")
            .process("a", 0)
            .transition(internal("t0", 0))
            .build()
            .unwrap();
        let renamed = proto.renamed("p-split");
        assert_eq!(renamed.name(), "p-split");
        assert_eq!(renamed.num_transitions(), proto.num_transitions());
    }

    #[test]
    fn add_process_returns_sequential_ids() {
        let mut b = ProtocolBuilder::<S, M>::new("p");
        let a = b.add_process("a", 0);
        let c = b.add_process("c", 1);
        assert_eq!(a, ProcessId(0));
        assert_eq!(c, ProcessId(1));
        b.add_transition(internal("t", 0));
        let proto = b.build().unwrap();
        assert_eq!(proto.num_processes(), 2);
    }
}
