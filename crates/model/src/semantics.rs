//! Execution semantics: applying transition instances to global states.
//!
//! `s --t(X)--> s'` holds iff the guard of `t` is true for `X` in `s`, and
//! `s'` equals `s` except that (1) the messages in `X` are removed from the
//! input channels of the executing process, (2) its local state is updated by
//! the local state transition function, and (3) zero or more messages are
//! added to outgoing channels (paper, Section II-A).

use crate::{
    enabled_instances, GlobalState, LocalState, Message, ModelError, ProtocolSpec,
    TransitionInstance,
};

/// Executes a transition instance in `state`, returning the successor state.
///
/// # Errors
///
/// Returns [`ModelError::NotEnabled`] if the instance's messages are not all
/// pending or its guard does not hold in `state`, and
/// [`ModelError::UnknownTransition`] if the instance refers to a transition
/// that is not part of `spec`.
pub fn execute<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    instance: &TransitionInstance<M>,
) -> Result<GlobalState<S, M>, ModelError> {
    let t = spec
        .get(instance.transition)
        .ok_or(ModelError::UnknownTransition {
            transition: instance.transition,
        })?;
    let process = instance.process;
    let local = state.local(process);
    if !t.guard_holds(local, &instance.envelopes) {
        return Err(ModelError::NotEnabled {
            transition: t.name().to_string(),
        });
    }

    let mut next = state.clone();
    for envelope in &instance.envelopes {
        if !next.channels.consume(process, envelope) {
            return Err(ModelError::NotEnabled {
                transition: t.name().to_string(),
            });
        }
    }
    let outcome = t.apply(local, &instance.envelopes);
    *next.local_mut(process) = outcome.next_local;
    for (recipient, message) in outcome.sends {
        next.channels.send(process, recipient, message);
    }
    for (sender, message) in outcome.reinjects {
        next.channels.send(sender, process, message);
    }
    Ok(next)
}

/// Executes an instance that is known to be enabled.
///
/// # Panics
///
/// Panics if the instance is in fact not enabled; use [`execute`] when that
/// is not statically known.
pub fn execute_enabled<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
    instance: &TransitionInstance<M>,
) -> GlobalState<S, M> {
    execute(spec, state, instance).unwrap_or_else(|e| {
        panic!("instance {instance:?} expected to be enabled: {e}");
    })
}

/// Returns every `(instance, successor)` pair reachable from `state` in one
/// step.
pub fn successors<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
) -> Vec<(TransitionInstance<M>, GlobalState<S, M>)> {
    enabled_instances(spec, state)
        .into_iter()
        .map(|inst| {
            let next = execute_enabled(spec, state, &inst);
            (inst, next)
        })
        .collect()
}

/// Returns `true` if `state` is a deadlock: no transition instance is
/// enabled. In terminating protocols the final "everything delivered" states
/// are deadlocks in this technical sense.
pub fn is_deadlock<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    state: &GlobalState<S, M>,
) -> bool {
    enabled_instances(spec, state).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Envelope, Kind, Outcome, ProcessId, QuorumSpec, TransitionId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req,
        Ack(u8),
    }
    crate::codec!(enum Msg { 0 = Req, 1 = Ack(n) });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req => "REQ",
                Msg::Ack(_) => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Client (p0) broadcasts REQ to both servers (p1, p2); each server acks;
    /// the client collects a quorum of 2 acks and terminates.
    fn request_ack_protocol() -> ProtocolSpec<u8, Msg> {
        ProtocolSpec::builder("request-ack")
            .process("client", 0u8)
            .process("server1", 0u8)
            .process("server2", 0u8)
            .transition(
                TransitionSpec::builder("REQUEST", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["REQ"])
                    .effect(|_, _| Outcome::new(1).send(p(1), Msg::Req).send(p(2), Msg::Req))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SERVE_1", p(1))
                    .single_input("REQ")
                    .reply()
                    .sends(&["ACK"])
                    .effect(|_, msgs| Outcome::new(1).send(msgs[0].sender, Msg::Ack(1)))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SERVE_2", p(2))
                    .single_input("REQ")
                    .reply()
                    .sends(&["ACK"])
                    .effect(|_, msgs| Outcome::new(1).send(msgs[0].sender, Msg::Ack(2)))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("COLLECT", p(0))
                    .quorum_input("ACK", QuorumSpec::Exact(2))
                    .guard(|l, _| *l == 1)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn execute_internal_transition() {
        let proto = request_ack_protocol();
        let s0 = proto.initial_state();
        let insts = enabled_instances(&proto, &s0);
        assert_eq!(insts.len(), 1);
        let s1 = execute(&proto, &s0, &insts[0]).unwrap();
        assert_eq!(*s1.local(p(0)), 1);
        assert_eq!(s1.pending_messages(), 2);
    }

    #[test]
    fn full_run_reaches_terminal_state() {
        let proto = request_ack_protocol();
        let mut state = proto.initial_state();
        let mut steps = 0;
        loop {
            let succ = successors(&proto, &state);
            if succ.is_empty() {
                break;
            }
            state = succ[0].1.clone();
            steps += 1;
            assert!(steps < 10, "protocol should terminate quickly");
        }
        assert!(is_deadlock(&proto, &state));
        assert_eq!(*state.local(p(0)), 2, "client collected the ack quorum");
        assert_eq!(*state.local(p(1)), 1);
        assert_eq!(*state.local(p(2)), 1);
        assert_eq!(state.pending_messages(), 0);
    }

    #[test]
    fn executing_non_enabled_instance_fails() {
        let proto = request_ack_protocol();
        let s0 = proto.initial_state();
        // COLLECT with fabricated envelopes that are not pending.
        let bogus = TransitionInstance::new(
            TransitionId(3),
            p(0),
            vec![
                Envelope::new(p(1), Msg::Ack(1)),
                Envelope::new(p(2), Msg::Ack(2)),
            ],
        );
        let err = execute(&proto, &s0, &bogus).unwrap_err();
        assert!(matches!(err, ModelError::NotEnabled { .. }));
    }

    #[test]
    fn unknown_transition_is_reported() {
        let proto = request_ack_protocol();
        let s0 = proto.initial_state();
        let bogus = TransitionInstance::new(TransitionId(99), p(0), Vec::new());
        let err = execute(&proto, &s0, &bogus).unwrap_err();
        assert!(matches!(err, ModelError::UnknownTransition { .. }));
    }

    #[test]
    fn execution_does_not_mutate_source_state() {
        let proto = request_ack_protocol();
        let s0 = proto.initial_state();
        let insts = enabled_instances(&proto, &s0);
        let _ = execute(&proto, &s0, &insts[0]).unwrap();
        assert_eq!(s0, proto.initial_state());
    }

    #[test]
    fn quorum_execution_consumes_all_messages() {
        let proto = request_ack_protocol();
        // Drive to the state where both acks are pending.
        let mut state = proto.initial_state();
        for _ in 0..3 {
            let succ = successors(&proto, &state);
            state = succ[0].1.clone();
        }
        assert_eq!(state.pending_messages(), 2);
        let insts = enabled_instances(&proto, &state);
        let collect = insts
            .iter()
            .find(|i| i.transition == TransitionId(3))
            .expect("collect enabled");
        assert!(collect.is_quorum_execution());
        let done = execute(&proto, &state, collect).unwrap();
        assert_eq!(done.pending_messages(), 0);
    }
}
