//! Global states of a message-passing system.
//!
//! A state of the state graph is "a vector with all channel contents and the
//! local state of each process" (paper, Section II-A). [`GlobalState`] is
//! exactly that: the vector of local states plus the canonical [`Channels`]
//! contents, and it is the unit stored in the model checker's visited set.

use std::fmt;
use std::hash::Hash;

use crate::{Channels, Message, ProcessId};

/// The local-state type of a protocol.
///
/// This is a bound alias: any type that is cloneable, totally ordered,
/// hashable, debuggable and codec-capable ([`Encode`]/[`Decode`], so the
/// disk-backed frontier of `mp-store` can spill states) can serve as the
/// per-process local state.
///
/// [`Encode`]: crate::Encode
/// [`Decode`]: crate::Decode
pub trait LocalState:
    Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + crate::Encode + crate::Decode + 'static
{
}

impl<T> LocalState for T where
    T: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + crate::Encode + crate::Decode + 'static
{
}

/// A global state: one local state per process plus all channel contents.
///
/// # Examples
///
/// ```
/// use mp_model::{GlobalState, ProcessId};
///
/// let state: GlobalState<u32, String> = GlobalState::new(vec![0, 0, 0]);
/// assert_eq!(state.num_processes(), 3);
/// assert_eq!(*state.local(ProcessId(1)), 0);
/// assert!(state.channels.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalState<S, M: Ord> {
    /// Local state of each process, indexed by [`ProcessId`].
    pub locals: Vec<S>,
    /// Contents of every channel.
    pub channels: Channels<M>,
}

impl<S: LocalState, M: Message> GlobalState<S, M> {
    /// Creates an initial global state with the given local states and all
    /// channels empty.
    pub fn new(locals: Vec<S>) -> Self {
        let n = locals.len();
        GlobalState {
            locals,
            channels: Channels::new(n),
        }
    }

    /// Returns the number of processes.
    pub fn num_processes(&self) -> usize {
        self.locals.len()
    }

    /// Returns the local state of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn local(&self, process: ProcessId) -> &S {
        &self.locals[process.index()]
    }

    /// Returns a mutable reference to the local state of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn local_mut(&mut self, process: ProcessId) -> &mut S {
        &mut self.locals[process.index()]
    }

    /// Returns the total number of messages pending in all channels.
    pub fn pending_messages(&self) -> usize {
        self.channels.total_pending()
    }

    /// Rewrites the state under a process permutation: the local state of
    /// process `i` moves to index `perm(i)` (rewritten through
    /// [`Permutable::permute`](crate::Permutable::permute) so embedded
    /// process ids follow), and the channels are remapped accordingly.
    ///
    /// # Panics
    ///
    /// Panics if the permutation's degree differs from the process count.
    pub fn permute(&self, perm: &crate::Permutation) -> Self
    where
        S: crate::Permutable,
        M: crate::Permutable,
    {
        assert_eq!(perm.degree(), self.num_processes(), "degree mismatch");
        // Built through the inverse so each slot is cloned exactly once —
        // this is the hottest path of symmetry canonicalization (one call
        // per group element per generated successor).
        let inverse = perm.inverse();
        GlobalState {
            locals: (0..self.locals.len())
                .map(|slot| self.locals[inverse.apply_index(slot)].permute(perm))
                .collect(),
            channels: self.channels.permute(perm),
        }
    }
}

// States are the payload of the disk-backed BFS frontier: locals in index
// order, then the canonical channel contents.
impl<S: crate::Encode, M: Message + crate::Encode> crate::Encode for GlobalState<S, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.locals.encode(out);
        self.channels.encode(out);
    }
}

impl<S: crate::Decode, M: Message + crate::Decode> crate::Decode for GlobalState<S, M> {
    fn decode(input: &mut &[u8]) -> Result<Self, crate::DecodeError> {
        Ok(GlobalState {
            locals: Vec::decode(input)?,
            channels: Channels::decode(input)?,
        })
    }
}

impl<S: fmt::Debug, M: Message> fmt::Debug for GlobalState<S, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalState")
            .field("locals", &self.locals)
            .field("channels", &self.channels)
            .finish()
    }
}

impl<S: LocalState + fmt::Display, M: Message> fmt::Display for GlobalState<S, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state:")?;
        for (i, local) in self.locals.iter().enumerate() {
            writeln!(f, "  {}: {}", ProcessId(i), local)?;
        }
        if self.channels.is_empty() {
            writeln!(f, "  channels: (empty)")?;
        } else {
            writeln!(f, "  channels:")?;
            for ((from, to), bag) in self.channels.iter() {
                writeln!(f, "    {from} -> {to}: {bag:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kind;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Msg(u8);
    crate::codec!(struct Msg(n));

    impl Message for Msg {
        fn kind(&self) -> Kind {
            "MSG"
        }
    }

    #[test]
    fn new_state_has_empty_channels() {
        let s: GlobalState<u8, Msg> = GlobalState::new(vec![1, 2, 3]);
        assert_eq!(s.num_processes(), 3);
        assert_eq!(s.pending_messages(), 0);
        assert_eq!(*s.local(ProcessId(2)), 3);
    }

    #[test]
    fn local_mut_updates_in_place() {
        let mut s: GlobalState<u8, Msg> = GlobalState::new(vec![0, 0]);
        *s.local_mut(ProcessId(1)) = 9;
        assert_eq!(*s.local(ProcessId(1)), 9);
        assert_eq!(*s.local(ProcessId(0)), 0);
    }

    #[test]
    fn equal_states_compare_and_hash_equal() {
        use std::collections::HashSet;
        let mut a: GlobalState<u8, Msg> = GlobalState::new(vec![0, 0]);
        let mut b: GlobalState<u8, Msg> = GlobalState::new(vec![0, 0]);
        a.channels.send(ProcessId(0), ProcessId(1), Msg(1));
        b.channels.send(ProcessId(0), ProcessId(1), Msg(1));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn different_locals_are_different_states() {
        let a: GlobalState<u8, Msg> = GlobalState::new(vec![0, 0]);
        let b: GlobalState<u8, Msg> = GlobalState::new(vec![0, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn pending_messages_counts_channel_contents() {
        let mut s: GlobalState<u8, Msg> = GlobalState::new(vec![0, 0, 0]);
        s.channels.send(ProcessId(0), ProcessId(1), Msg(1));
        s.channels.send(ProcessId(2), ProcessId(1), Msg(2));
        assert_eq!(s.pending_messages(), 2);
    }
}
