//! Transitions: guards, effects, quorum specifications and POR annotations.
//!
//! A transition `t ∈ T_i` of process `i` can consume zero or more messages
//! from the incoming channels of `i`, change the local state of `i`, and send
//! messages (paper, Section II-A). A transition that can consume more than
//! one message in a single step is a **quorum transition**; one that consumes
//! at most one message is a **single-message transition**; one that consumes
//! none is an *internal* transition (the paper models these through "fake
//! messages" sent by the driver, see the appendix — we model them directly).
//!
//! Each transition carries [`Annotations`] mirroring Table IV of the paper:
//! they describe, state-unconditionally, which message kinds the transition
//! may consume and send and to whom, whether it is a reply transition,
//! whether it is visible to the property, and its seed-selection priority.
//! The static partial-order reduction in `mp-por` is driven entirely by these
//! annotations, exactly like MP-LPOR.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::{Envelope, Kind, LocalState, Message, ProcessId};

/// How many messages (from how many distinct senders) a quorum transition
/// consumes in one step.
///
/// [`QuorumSpec::Exact`] corresponds to the paper's *exact quorum transition*
/// (Definition 2): every execution consumes messages from exactly `q`
/// distinct senders. This is the class of transitions that quorum-split
/// refinement applies to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QuorumSpec {
    /// Messages from exactly this many distinct senders.
    Exact(usize),
    /// Messages from at least this many distinct senders (the guard decides
    /// which subsets are acceptable). Enumeration of candidate sets is
    /// exponential in the number of senders; use sparingly.
    AtLeast(usize),
    /// Messages from between `min` and `max` distinct senders (inclusive).
    Between {
        /// Minimum number of distinct senders.
        min: usize,
        /// Maximum number of distinct senders.
        max: usize,
    },
}

impl QuorumSpec {
    /// Returns the exact quorum size if this is an exact quorum.
    pub fn exact_size(&self) -> Option<usize> {
        match self {
            QuorumSpec::Exact(q) => Some(*q),
            _ => None,
        }
    }

    /// Returns the smallest number of senders any execution may involve.
    pub fn min_senders(&self) -> usize {
        match self {
            QuorumSpec::Exact(q) => *q,
            QuorumSpec::AtLeast(q) => *q,
            QuorumSpec::Between { min, .. } => *min,
        }
    }

    /// Returns the largest number of senders any execution may involve, if
    /// bounded.
    pub fn max_senders(&self) -> Option<usize> {
        match self {
            QuorumSpec::Exact(q) => Some(*q),
            QuorumSpec::AtLeast(_) => None,
            QuorumSpec::Between { max, .. } => Some(*max),
        }
    }

    /// Returns `true` if consuming messages from `k` distinct senders is
    /// admissible under this specification.
    pub fn admits(&self, k: usize) -> bool {
        match self {
            QuorumSpec::Exact(q) => k == *q,
            QuorumSpec::AtLeast(q) => k >= *q,
            QuorumSpec::Between { min, max } => k >= *min && k <= *max,
        }
    }
}

impl fmt::Display for QuorumSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumSpec::Exact(q) => write!(f, "exactly {q}"),
            QuorumSpec::AtLeast(q) => write!(f, "at least {q}"),
            QuorumSpec::Between { min, max } => write!(f, "between {min} and {max}"),
        }
    }
}

/// What a transition consumes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InputSpec {
    /// The transition consumes no messages (driver-triggered in the paper's
    /// terminology; e.g. a Paxos proposer starting a ballot).
    Internal,
    /// The transition consumes a single message of the given kind.
    Single {
        /// Kind of the consumed message.
        kind: Kind,
    },
    /// The transition consumes a set of messages of the given kind from a
    /// quorum of distinct senders.
    Quorum {
        /// Kind of the consumed messages.
        kind: Kind,
        /// Admissible quorum sizes.
        quorum: QuorumSpec,
    },
}

impl InputSpec {
    /// Returns the kind of message this transition consumes, if any.
    pub fn kind(&self) -> Option<Kind> {
        match self {
            InputSpec::Internal => None,
            InputSpec::Single { kind } => Some(kind),
            InputSpec::Quorum { kind, .. } => Some(kind),
        }
    }

    /// Returns `true` if this is a quorum input (may consume more than one
    /// message in a step).
    pub fn is_quorum(&self) -> bool {
        matches!(self, InputSpec::Quorum { .. })
    }

    /// Returns the quorum specification, if this is a quorum input.
    pub fn quorum(&self) -> Option<QuorumSpec> {
        match self {
            InputSpec::Quorum { quorum, .. } => Some(*quorum),
            _ => None,
        }
    }
}

/// The recipients a transition may send messages to, described
/// state-unconditionally for the benefit of static POR.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum RecipientSet {
    /// The transition never sends messages.
    None,
    /// The transition may send to any process (the conservative default).
    #[default]
    All,
    /// The transition only ever sends to the listed processes.
    Only(BTreeSet<ProcessId>),
    /// The transition only sends to the senders of the messages it consumed
    /// (a *reply transition*, paper Definition 4). When the transition is
    /// additionally restricted to a fixed sender set (quorum-/reply-split),
    /// the possible recipients shrink to that set.
    SendersOfInput,
}

impl RecipientSet {
    /// Resolves the set of processes this transition may send to, given the
    /// set of processes it may receive from (`allowed_senders`, used by
    /// refined transitions) and the total number of processes.
    ///
    /// Returns `None` to mean "any process".
    pub fn resolve(
        &self,
        allowed_senders: Option<&BTreeSet<ProcessId>>,
        num_processes: usize,
    ) -> Option<BTreeSet<ProcessId>> {
        match self {
            RecipientSet::None => Some(BTreeSet::new()),
            RecipientSet::All => None,
            RecipientSet::Only(set) => Some(set.clone()),
            RecipientSet::SendersOfInput => match allowed_senders {
                Some(set) => Some(set.clone()),
                None => {
                    // Unrestricted reply transition: may reply to anyone who
                    // could have sent to it, i.e. any process.
                    let _ = num_processes;
                    None
                }
            },
        }
    }

    /// Returns `true` if the transition may send some message to `target`,
    /// under the same resolution rules as [`RecipientSet::resolve`].
    pub fn may_send_to(
        &self,
        target: ProcessId,
        allowed_senders: Option<&BTreeSet<ProcessId>>,
    ) -> bool {
        match self {
            RecipientSet::None => false,
            RecipientSet::All => true,
            RecipientSet::Only(set) => set.contains(&target),
            RecipientSet::SendersOfInput => match allowed_senders {
                Some(set) => set.contains(&target),
                None => true,
            },
        }
    }
}

/// State-unconditional annotations of a transition, mirroring Table IV of the
/// paper.
///
/// The defaults are deliberately conservative (a transition may send any kind
/// to anyone, reads and writes its local state, is not visible); conservative
/// annotations can only make partial-order reduction *less* aggressive, never
/// unsound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Annotations {
    /// Message kinds this transition may send (`messageOut()` in Table IV).
    pub messages_out: Vec<Kind>,
    /// Processes this transition may send to (`senders()`/`recipients()` in
    /// Table IV, folded into one description).
    pub recipients: RecipientSet,
    /// `true` if this is a reply transition (Definition 4): it only sends to
    /// the senders of the messages it consumed.
    pub is_reply: bool,
    /// Seed-transition priority for the POR heuristics (`priority()`);
    /// larger means preferred as the first transition of a stubborn set.
    pub priority: i32,
    /// `true` if the transition may change the truth value of the property
    /// under verification (`isVisible()`); visible transitions are never
    /// pruned by the reduction.
    pub is_visible: bool,
    /// `true` if the guard reads the local state (`isStateSensitive()`).
    pub reads_local: bool,
    /// `true` if the effect writes the local state (`isWrite()`).
    pub writes_local: bool,
    /// `true` if this is an **environment transition**: it models the
    /// environment (crash, message loss/duplication/corruption from
    /// `mp-faults`) rather than the protocol. Environment transitions share
    /// a global fault budget, so `mp-por` treats any two of them as
    /// mutually dependent (unless their [`Annotations::environment_class`]es
    /// prove their budgets disjoint) and assumes one may enable any
    /// transition of its own process (it can rewrite that process's channels
    /// and local bookkeeping arbitrarily). Liveness checking (`mp-checker`)
    /// additionally exempts environment transitions from fairness: a crash
    /// is never *required* to happen.
    pub is_environment: bool,
    /// The budget class of an environment transition (e.g. `"crash"`,
    /// `"drop"`). Two environment transitions of *different* classes draw on
    /// disjoint budget counters, so neither can disable the other by
    /// exhausting a shared budget; `mp-por` uses this to declare them
    /// independent when they also pass the ordinary communication test.
    /// `None` (the default) means "unknown class": conservatively dependent
    /// on every other environment transition.
    pub environment_class: Option<Kind>,
}

impl Default for Annotations {
    fn default() -> Self {
        Annotations {
            messages_out: Vec::new(),
            recipients: RecipientSet::All,
            is_reply: false,
            priority: 0,
            is_visible: false,
            reads_local: true,
            writes_local: true,
            is_environment: false,
            environment_class: None,
        }
    }
}

/// The result of executing a transition: the new local state of the executing
/// process and the messages it sends.
///
/// # Examples
///
/// ```
/// use mp_model::{Outcome, ProcessId};
///
/// let out = Outcome::new(5u32).send(ProcessId(1), "hi".to_string());
/// assert_eq!(out.next_local, 5);
/// assert_eq!(out.sends.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome<S, M> {
    /// The local state of the executing process after the transition.
    pub next_local: S,
    /// Messages sent by the transition, as `(recipient, payload)` pairs.
    pub sends: Vec<(ProcessId, M)>,
    /// Messages placed back into the incoming channels of the *executing*
    /// process, as `(original sender, payload)` pairs. Ordinary protocol
    /// transitions never use this; it exists for *environment* transitions
    /// (fault injection, `mp-faults`) that duplicate or mutate a pending
    /// message while preserving who appears to have sent it — the sender
    /// identity matters because quorum transitions count distinct senders.
    pub reinjects: Vec<(ProcessId, M)>,
}

impl<S, M> Outcome<S, M> {
    /// Creates an outcome that moves to `next_local` and sends nothing.
    pub fn new(next_local: S) -> Self {
        Outcome {
            next_local,
            sends: Vec::new(),
            reinjects: Vec::new(),
        }
    }

    /// Adds a message send to the outcome (builder style).
    pub fn send(mut self, to: ProcessId, message: M) -> Self {
        self.sends.push((to, message));
        self
    }

    /// Adds message sends to several recipients (builder style).
    pub fn broadcast<I: IntoIterator<Item = ProcessId>>(mut self, to: I, message: M) -> Self
    where
        M: Clone,
    {
        for recipient in to {
            self.sends.push((recipient, message.clone()));
        }
        self
    }

    /// Places a message back into the incoming channels of the executing
    /// process, attributed to `sender` (builder style). See
    /// [`Outcome::reinjects`].
    pub fn reinject(mut self, sender: ProcessId, message: M) -> Self {
        self.reinjects.push((sender, message));
        self
    }
}

/// Guard function type: decides whether a transition is enabled for a given
/// local state and candidate message set (paper: `g_t`).
pub type Guard<S, M> = Arc<dyn Fn(&S, &[Envelope<M>]) -> bool + Send + Sync>;

/// Effect function type: the local state transition function `ls_t` together
/// with the messages to send.
pub type Effect<S, M> = Arc<dyn Fn(&S, &[Envelope<M>]) -> Outcome<S, M> + Send + Sync>;

/// A transition specification.
///
/// Use [`TransitionSpec::builder`] (or the convenience constructors on
/// [`ProtocolBuilder`](crate::ProtocolBuilder)) to create one.
#[derive(Clone)]
pub struct TransitionSpec<S, M> {
    name: String,
    process: ProcessId,
    input: InputSpec,
    allowed_senders: Option<BTreeSet<ProcessId>>,
    guard: Option<Guard<S, M>>,
    effect: Effect<S, M>,
    annotations: Annotations,
}

impl<S: LocalState, M: Message> TransitionSpec<S, M> {
    /// Starts building a transition named `name`, executed by `process`.
    pub fn builder(name: impl Into<String>, process: ProcessId) -> TransitionBuilder<S, M> {
        TransitionBuilder::new(name, process)
    }

    /// Returns the (unique, human-readable) name of the transition.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the process executing this transition.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Returns the input specification of the transition.
    pub fn input(&self) -> &InputSpec {
        &self.input
    }

    /// Returns the kind of message the transition consumes, if any.
    pub fn input_kind(&self) -> Option<Kind> {
        self.input.kind()
    }

    /// Returns `true` if the transition is a quorum transition.
    pub fn is_quorum(&self) -> bool {
        self.input.is_quorum()
    }

    /// Returns the restriction on sender processes, if any.
    ///
    /// `None` means "messages from any process are acceptable". Quorum-split
    /// and reply-split refinement produce transitions with a fixed sender
    /// set (`quorumPeers()` in Table IV).
    pub fn allowed_senders(&self) -> Option<&BTreeSet<ProcessId>> {
        self.allowed_senders.as_ref()
    }

    /// Returns `true` if messages from `sender` may be consumed by this
    /// transition.
    pub fn may_receive_from(&self, sender: ProcessId) -> bool {
        match &self.allowed_senders {
            Some(set) => set.contains(&sender),
            None => true,
        }
    }

    /// Returns the POR annotations of the transition.
    pub fn annotations(&self) -> &Annotations {
        &self.annotations
    }

    /// Returns a mutable reference to the POR annotations.
    pub fn annotations_mut(&mut self) -> &mut Annotations {
        &mut self.annotations
    }

    /// Evaluates the guard on a local state and candidate message set.
    ///
    /// A transition without an explicit guard is enabled for any candidate
    /// set that matches its [`InputSpec`].
    pub fn guard_holds(&self, local: &S, messages: &[Envelope<M>]) -> bool {
        match &self.guard {
            Some(guard) => guard(local, messages),
            None => true,
        }
    }

    /// Applies the effect of the transition.
    pub fn apply(&self, local: &S, messages: &[Envelope<M>]) -> Outcome<S, M> {
        (self.effect)(local, messages)
    }

    /// Returns a copy of this transition with a different name, sender
    /// restriction and annotations — the primitive used by the refinement
    /// strategies in `mp-refine`.
    pub fn restricted_copy(
        &self,
        name: impl Into<String>,
        allowed_senders: BTreeSet<ProcessId>,
    ) -> Self {
        let mut copy = self.clone();
        copy.name = name.into();
        copy.allowed_senders = Some(allowed_senders);
        copy
    }

    /// Returns `true` if this transition is an *exact* quorum transition
    /// (Definition 2), i.e. its input specifies a fixed quorum size.
    pub fn is_exact_quorum(&self) -> bool {
        matches!(
            self.input,
            InputSpec::Quorum {
                quorum: QuorumSpec::Exact(_),
                ..
            }
        )
    }

    /// Returns the exact quorum size, if this is an exact quorum transition.
    /// Single-message transitions are exact quorum transitions of size one
    /// (as noted below Definition 3 in the paper).
    pub fn exact_quorum_size(&self) -> Option<usize> {
        match &self.input {
            InputSpec::Internal => None,
            InputSpec::Single { .. } => Some(1),
            InputSpec::Quorum { quorum, .. } => quorum.exact_size(),
        }
    }
}

impl<S, M> fmt::Debug for TransitionSpec<S, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionSpec")
            .field("name", &self.name)
            .field("process", &self.process)
            .field("input", &self.input)
            .field("allowed_senders", &self.allowed_senders)
            .field("annotations", &self.annotations)
            .finish_non_exhaustive()
    }
}

/// Builder for [`TransitionSpec`].
///
/// # Examples
///
/// ```
/// use mp_model::{Outcome, ProcessId, QuorumSpec, TransitionSpec};
///
/// let t: TransitionSpec<u32, String> = TransitionSpec::builder("COLLECT", ProcessId(0))
///     .quorum_input("STRING", QuorumSpec::Exact(2))
///     .guard(|_local, msgs| msgs.len() == 2)
///     .effect(|local, _msgs| Outcome::new(local + 1))
///     .build();
/// assert!(t.is_exact_quorum());
/// assert_eq!(t.exact_quorum_size(), Some(2));
/// ```
pub struct TransitionBuilder<S, M> {
    name: String,
    process: ProcessId,
    input: InputSpec,
    allowed_senders: Option<BTreeSet<ProcessId>>,
    guard: Option<Guard<S, M>>,
    effect: Option<Effect<S, M>>,
    annotations: Annotations,
}

impl<S: LocalState, M: Message> TransitionBuilder<S, M> {
    /// Starts a builder for a transition named `name`, executed by `process`.
    pub fn new(name: impl Into<String>, process: ProcessId) -> Self {
        TransitionBuilder {
            name: name.into(),
            process,
            input: InputSpec::Internal,
            allowed_senders: None,
            guard: None,
            effect: None,
            annotations: Annotations::default(),
        }
    }

    /// Declares the transition internal (consumes no messages).
    pub fn internal(mut self) -> Self {
        self.input = InputSpec::Internal;
        self
    }

    /// Declares the transition a single-message transition consuming `kind`.
    pub fn single_input(mut self, kind: Kind) -> Self {
        self.input = InputSpec::Single { kind };
        self
    }

    /// Declares the transition a quorum transition consuming `kind` messages
    /// from a `quorum` of distinct senders.
    pub fn quorum_input(mut self, kind: Kind, quorum: QuorumSpec) -> Self {
        self.input = InputSpec::Quorum { kind, quorum };
        self
    }

    /// Restricts the processes whose messages this transition may consume
    /// (`quorumPeers()` in Table IV). Used by the refinement strategies.
    pub fn allowed_senders<I: IntoIterator<Item = ProcessId>>(mut self, senders: I) -> Self {
        self.allowed_senders = Some(senders.into_iter().collect());
        self
    }

    /// Sets the guard predicate.
    pub fn guard<F>(mut self, guard: F) -> Self
    where
        F: Fn(&S, &[Envelope<M>]) -> bool + Send + Sync + 'static,
    {
        self.guard = Some(Arc::new(guard));
        self
    }

    /// Sets the effect (local state transition function plus sends).
    pub fn effect<F>(mut self, effect: F) -> Self
    where
        F: Fn(&S, &[Envelope<M>]) -> Outcome<S, M> + Send + Sync + 'static,
    {
        self.effect = Some(Arc::new(effect));
        self
    }

    /// Declares the message kinds this transition may send.
    pub fn sends(mut self, kinds: &[Kind]) -> Self {
        self.annotations.messages_out = kinds.to_vec();
        self
    }

    /// Declares that the transition never sends messages.
    pub fn sends_nothing(mut self) -> Self {
        self.annotations.messages_out = Vec::new();
        self.annotations.recipients = RecipientSet::None;
        self
    }

    /// Declares the processes the transition may send to.
    pub fn sends_to<I: IntoIterator<Item = ProcessId>>(mut self, recipients: I) -> Self {
        self.annotations.recipients = RecipientSet::Only(recipients.into_iter().collect());
        self
    }

    /// Declares the transition a reply transition: it only sends to the
    /// senders of the messages it consumed (Definition 4).
    pub fn reply(mut self) -> Self {
        self.annotations.is_reply = true;
        self.annotations.recipients = RecipientSet::SendersOfInput;
        self
    }

    /// Sets the seed-selection priority used by the POR heuristics.
    pub fn priority(mut self, priority: i32) -> Self {
        self.annotations.priority = priority;
        self
    }

    /// Marks the transition visible to the property under verification.
    pub fn visible(mut self) -> Self {
        self.annotations.is_visible = true;
        self
    }

    /// Declares whether the guard reads the local state (defaults to true).
    pub fn reads_local(mut self, reads: bool) -> Self {
        self.annotations.reads_local = reads;
        self
    }

    /// Declares whether the effect writes the local state (defaults to true).
    pub fn writes_local(mut self, writes: bool) -> Self {
        self.annotations.writes_local = writes;
        self
    }

    /// Marks the transition as an environment transition (fault injection);
    /// see [`Annotations::is_environment`].
    pub fn environment(mut self) -> Self {
        self.annotations.is_environment = true;
        self
    }

    /// Marks the transition as an environment transition of the given budget
    /// class (implies [`TransitionBuilder::environment`]); see
    /// [`Annotations::environment_class`].
    pub fn environment_class(mut self, class: Kind) -> Self {
        self.annotations.is_environment = true;
        self.annotations.environment_class = Some(class);
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if no effect was provided; every transition must define its
    /// local state transition function.
    pub fn build(self) -> TransitionSpec<S, M> {
        let effect = self
            .effect
            .unwrap_or_else(|| panic!("transition `{}` has no effect", self.name));
        TransitionSpec {
            name: self.name,
            process: self.process,
            input: self.input,
            allowed_senders: self.allowed_senders,
            guard: self.guard,
            effect,
            annotations: self.annotations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = u32;
    type M = String;

    fn mk_internal() -> TransitionSpec<S, M> {
        TransitionSpec::builder("start", ProcessId(0))
            .internal()
            .effect(|local, _| Outcome::new(local + 1))
            .build()
    }

    #[test]
    fn quorum_spec_admits() {
        assert!(QuorumSpec::Exact(2).admits(2));
        assert!(!QuorumSpec::Exact(2).admits(3));
        assert!(QuorumSpec::AtLeast(2).admits(5));
        assert!(!QuorumSpec::AtLeast(2).admits(1));
        assert!(QuorumSpec::Between { min: 1, max: 3 }.admits(2));
        assert!(!QuorumSpec::Between { min: 1, max: 3 }.admits(4));
    }

    #[test]
    fn quorum_spec_bounds() {
        assert_eq!(QuorumSpec::Exact(3).exact_size(), Some(3));
        assert_eq!(QuorumSpec::AtLeast(3).exact_size(), None);
        assert_eq!(QuorumSpec::AtLeast(3).min_senders(), 3);
        assert_eq!(QuorumSpec::AtLeast(3).max_senders(), None);
        assert_eq!(
            QuorumSpec::Between { min: 2, max: 4 }.max_senders(),
            Some(4)
        );
        assert_eq!(QuorumSpec::Exact(1).to_string(), "exactly 1");
    }

    #[test]
    fn internal_transition_defaults() {
        let t = mk_internal();
        assert_eq!(t.name(), "start");
        assert_eq!(t.process(), ProcessId(0));
        assert_eq!(t.input_kind(), None);
        assert!(!t.is_quorum());
        assert!(t.may_receive_from(ProcessId(5)));
        assert!(t.guard_holds(&0, &[]));
        assert_eq!(t.exact_quorum_size(), None);
    }

    #[test]
    fn single_message_is_exact_quorum_of_one() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("recv", ProcessId(1))
            .single_input("STRING")
            .effect(|l, _| Outcome::new(*l))
            .build();
        assert_eq!(t.exact_quorum_size(), Some(1));
        assert!(
            !t.is_exact_quorum(),
            "is_exact_quorum refers to quorum inputs only"
        );
    }

    #[test]
    fn guard_and_effect_are_invoked() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("collect", ProcessId(0))
            .quorum_input("STRING", QuorumSpec::Exact(2))
            .guard(|_, msgs| msgs.len() == 2)
            .effect(|local, msgs| {
                Outcome::new(local + msgs.len() as u32).send(ProcessId(1), "ack".to_string())
            })
            .build();
        let envs = vec![
            Envelope::new(ProcessId(1), "a".to_string()),
            Envelope::new(ProcessId(2), "b".to_string()),
        ];
        assert!(t.guard_holds(&0, &envs));
        assert!(!t.guard_holds(&0, &envs[..1]));
        let out = t.apply(&0, &envs);
        assert_eq!(out.next_local, 2);
        assert_eq!(out.sends, vec![(ProcessId(1), "ack".to_string())]);
    }

    #[test]
    fn restricted_copy_limits_senders() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("collect", ProcessId(0))
            .quorum_input("STRING", QuorumSpec::Exact(2))
            .effect(|l, _| Outcome::new(*l))
            .build();
        let restricted = t.restricted_copy(
            "collect_12",
            [ProcessId(1), ProcessId(2)].into_iter().collect(),
        );
        assert_eq!(restricted.name(), "collect_12");
        assert!(restricted.may_receive_from(ProcessId(1)));
        assert!(!restricted.may_receive_from(ProcessId(3)));
        assert!(t.may_receive_from(ProcessId(3)));
    }

    #[test]
    fn recipient_set_resolution() {
        let none = RecipientSet::None;
        assert_eq!(none.resolve(None, 4), Some(BTreeSet::new()));
        assert!(!none.may_send_to(ProcessId(0), None));

        let all = RecipientSet::All;
        assert_eq!(all.resolve(None, 4), None);
        assert!(all.may_send_to(ProcessId(3), None));

        let only: RecipientSet = RecipientSet::Only([ProcessId(1)].into_iter().collect());
        assert!(only.may_send_to(ProcessId(1), None));
        assert!(!only.may_send_to(ProcessId(2), None));

        let reply = RecipientSet::SendersOfInput;
        assert_eq!(reply.resolve(None, 4), None);
        let senders: BTreeSet<ProcessId> = [ProcessId(2)].into_iter().collect();
        assert_eq!(reply.resolve(Some(&senders), 4), Some(senders.clone()));
        assert!(reply.may_send_to(ProcessId(2), Some(&senders)));
        assert!(!reply.may_send_to(ProcessId(1), Some(&senders)));
    }

    #[test]
    fn builder_annotations() {
        let t: TransitionSpec<S, M> = TransitionSpec::builder("reply", ProcessId(2))
            .single_input("STRING")
            .reply()
            .sends(&["STRING"])
            .priority(7)
            .visible()
            .reads_local(false)
            .writes_local(false)
            .effect(|l, _| Outcome::new(*l))
            .build();
        let a = t.annotations();
        assert!(a.is_reply);
        assert_eq!(a.priority, 7);
        assert!(a.is_visible);
        assert!(!a.reads_local);
        assert!(!a.writes_local);
        assert_eq!(a.messages_out, vec!["STRING"]);
        assert_eq!(a.recipients, RecipientSet::SendersOfInput);
    }

    #[test]
    #[should_panic(expected = "has no effect")]
    fn builder_without_effect_panics() {
        let _: TransitionSpec<S, M> = TransitionSpec::builder("broken", ProcessId(0))
            .internal()
            .build();
    }

    #[test]
    fn outcome_builders() {
        let out: Outcome<u32, String> = Outcome::new(1)
            .send(ProcessId(0), "a".to_string())
            .broadcast([ProcessId(1), ProcessId(2)], "b".to_string());
        assert_eq!(out.sends.len(), 3);
        assert_eq!(out.sends[1], (ProcessId(1), "b".to_string()));
        assert_eq!(out.sends[2], (ProcessId(2), "b".to_string()));
    }
}
