//! Property-based tests for the core data structures of `mp-model`.
//!
//! These check the invariants the explicit-state model checker relies on:
//! multisets and channels are canonical (insertion-order independent),
//! consuming what was sent restores the previous contents, and the
//! enabled-instance enumeration matches a brute-force reference for exact
//! quorum transitions.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mp_model::{
    enabled_instances, Channels, Envelope, GlobalState, Message, Multiset, Outcome, ProcessId,
    ProtocolSpec, QuorumSpec, TransitionSpec,
};

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Msg {
    Vote(u8),
}

impl Message for Msg {
    fn kind(&self) -> &'static str {
        "VOTE"
    }
}

fn arb_elems() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, 0..32)
}

proptest! {
    /// Multiset equality and length are independent of insertion order.
    #[test]
    fn multiset_is_order_independent(elems in arb_elems(), seed in any::<u64>()) {
        let forward: Multiset<u8> = elems.iter().copied().collect();
        let mut shuffled = elems.clone();
        // Deterministic pseudo-shuffle driven by the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        let backward: Multiset<u8> = shuffled.into_iter().collect();
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.len(), elems.len());
    }

    /// Removing an element that was inserted restores the original multiset.
    #[test]
    fn multiset_insert_remove_roundtrip(elems in arb_elems(), extra in 0u8..8) {
        let original: Multiset<u8> = elems.iter().copied().collect();
        let mut modified = original.clone();
        modified.insert(extra);
        prop_assert_eq!(modified.len(), original.len() + 1);
        prop_assert!(modified.remove(&extra));
        prop_assert_eq!(&modified, &original);
    }

    /// Multiset inclusion is a partial order consistent with counts.
    #[test]
    fn multiset_inclusion(elems in arb_elems()) {
        let full: Multiset<u8> = elems.iter().copied().collect();
        let half: Multiset<u8> = elems.iter().copied().take(elems.len() / 2).collect();
        prop_assert!(full.includes(&half));
        prop_assert!(full.includes(&full));
        if half.len() < full.len() {
            prop_assert!(!half.includes(&full));
        }
    }

    /// Channels: sending then consuming every message restores emptiness,
    /// and pending counts always match what was sent.
    #[test]
    fn channels_send_consume_roundtrip(sends in proptest::collection::vec((0usize..4, 0usize..4, 0u8..4), 0..24)) {
        let mut ch: Channels<Msg> = Channels::new(4);
        for (from, to, v) in &sends {
            ch.send(ProcessId(*from), ProcessId(*to), Msg::Vote(*v));
        }
        prop_assert_eq!(ch.total_pending(), sends.len());
        for (from, to, v) in &sends {
            let env = Envelope::new(ProcessId(*from), Msg::Vote(*v));
            prop_assert!(ch.consume(ProcessId(*to), &env));
        }
        prop_assert!(ch.is_empty());
        prop_assert_eq!(&ch, &Channels::new(4));
    }

    /// The number of enabled instances of an exact quorum transition equals
    /// the binomial coefficient C(#senders, q) when every sender has exactly
    /// one pending message and the guard is true.
    #[test]
    fn exact_quorum_instance_count_is_binomial(
        num_senders in 1usize..6,
        q in 1usize..6,
        present in proptest::collection::vec(any::<bool>(), 5),
    ) {
        prop_assume!(q <= num_senders);
        let mut builder = ProtocolSpec::builder("prop-collector").process("collector", 0u32);
        for i in 0..num_senders {
            builder = builder.process(format!("voter{i}"), 0u32);
        }
        let proto = builder
            .transition(
                TransitionSpec::builder("COLLECT", ProcessId(0))
                    .quorum_input("VOTE", QuorumSpec::Exact(q))
                    .effect(|l, _| Outcome::new(*l))
                    .build(),
            )
            .build()
            .unwrap();

        let mut state: GlobalState<u32, Msg> = proto.initial_state();
        let mut senders_present = BTreeSet::new();
        for i in 0..num_senders {
            if present.get(i).copied().unwrap_or(false) {
                state.channels.send(ProcessId(i + 1), ProcessId(0), Msg::Vote(i as u8));
                senders_present.insert(i + 1);
            }
        }
        let n = senders_present.len();
        let expected = binomial(n, q);
        let instances = enabled_instances(&proto, &state);
        prop_assert_eq!(instances.len(), expected);
        for inst in &instances {
            prop_assert_eq!(inst.envelopes.len(), q);
            let distinct: BTreeSet<ProcessId> = inst.senders().into_iter().collect();
            prop_assert_eq!(distinct.len(), q);
        }
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}
