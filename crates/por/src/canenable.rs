//! The can-enable relation and necessary enabling transitions (NET).
//!
//! Static POR must "guess future paths": if a transition `t` in the stubborn
//! set is *disabled* in the current state, every transition that could enable
//! it must also be added, otherwise a relevant future interleaving could be
//! pruned (paper, Section III-A, "can-enabling transitions"). The set of
//! transitions that can enable `t` is its *necessary enabling transitions*
//! (the NET optimisation of LPOR mentioned in the paper's appendix).
//!
//! Transition refinement shrinks this relation: an unsplit quorum transition
//! can be enabled by *any* process that may send its input kind, whereas the
//! quorum-split copy restricted to peers `Q_k` can only be enabled by
//! transitions of processes in `Q_k`, and a reply-split transition can in
//! addition only *enable* transitions of its peers (Section III-D).

use mp_model::{InputSpec, LocalState, Message, ProtocolSpec, TransitionId};

use crate::independence::{can_communicate, may_emit_kind};

/// Pre-computed can-enable relation: `enablers[t]` lists every transition
/// that may turn `t` from disabled to enabled.
#[derive(Clone, Debug)]
pub struct CanEnable {
    enablers: Vec<Vec<TransitionId>>,
    enabled_by: Vec<Vec<TransitionId>>,
}

impl CanEnable {
    /// Computes the relation for `spec`.
    pub fn compute<S: LocalState, M: Message>(spec: &ProtocolSpec<S, M>) -> Self {
        let n = spec.num_transitions();
        let mut enablers = vec![Vec::new(); n];
        let mut enabled_by = vec![Vec::new(); n];
        for (a_id, a) in spec.transitions() {
            for (b_id, b) in spec.transitions() {
                if a_id == b_id {
                    continue;
                }
                let mut can_enable = false;
                // (1) `a` may deliver a message that `b` is waiting for.
                if can_communicate(a, b) {
                    can_enable = true;
                }
                // (2) `a` changes the local state that `b`'s guard reads:
                // only possible when they belong to the same process.
                if a.process() == b.process()
                    && a.annotations().writes_local
                    && b.annotations().reads_local
                {
                    can_enable = true;
                }
                // (3) `a` is an environment transition of `b`'s process: it
                // may rewrite that process's incoming channels (duplication
                // and corruption reinject messages under the *original*
                // sender, which the communication test in (1) cannot see)
                // and its fault bookkeeping, so conservatively it can enable
                // any co-located transition.
                if a.process() == b.process() && a.annotations().is_environment {
                    can_enable = true;
                }
                if can_enable {
                    enablers[b_id.index()].push(a_id);
                    enabled_by[a_id.index()].push(b_id);
                }
            }
        }
        CanEnable {
            enablers,
            enabled_by,
        }
    }

    /// Returns the transitions that may enable `t` (its necessary enabling
    /// transitions).
    pub fn enablers_of(&self, t: TransitionId) -> &[TransitionId] {
        &self.enablers[t.index()]
    }

    /// Returns the transitions that `t` may enable.
    pub fn may_enable(&self, t: TransitionId) -> &[TransitionId] {
        &self.enabled_by[t.index()]
    }

    /// Returns the total number of `(enabler, enabled)` pairs — a summary
    /// statistic showing how refinement tightens the relation.
    pub fn num_pairs(&self) -> usize {
        self.enablers.iter().map(Vec::len).sum()
    }
}

/// Returns `true` if `spec` contains a transition that can send the input
/// kind of `t` to `t`'s process — used to warn about transitions that can
/// never fire (likely modelling mistakes).
pub fn has_potential_enabler<S: LocalState, M: Message>(
    spec: &ProtocolSpec<S, M>,
    t: TransitionId,
) -> bool {
    let target = spec.transition(t);
    match target.input() {
        InputSpec::Internal => true,
        InputSpec::Single { kind } | InputSpec::Quorum { kind, .. } => {
            spec.transitions().any(|(other_id, other)| {
                other_id != t
                    && target.may_receive_from(other.process())
                    && other
                        .annotations()
                        .recipients
                        .may_send_to(target.process(), other.allowed_senders())
                    && may_emit_kind(other, kind)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Outcome, ProcessId, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req,
        Ack,
    }
    mp_model::codec!(enum Msg { 0 = Req, 1 = Ack });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req => "REQ",
                Msg::Ack => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Client (p0) broadcasts REQ to three servers (p1..p3); each server
    /// replies with ACK; the client collects a quorum of two ACKs.
    fn proto() -> ProtocolSpec<u8, Msg> {
        let mk_serve = |name: &str, me: usize| {
            TransitionSpec::builder(name.to_string(), p(me))
                .single_input("REQ")
                .reply()
                .sends(&["ACK"])
                .effect(|_, m: &[mp_model::Envelope<Msg>]| {
                    Outcome::new(1).send(m[0].sender, Msg::Ack)
                })
                .build()
        };
        ProtocolSpec::builder("req-ack")
            .process("client", 0u8)
            .process("s1", 0u8)
            .process("s2", 0u8)
            .process("s3", 0u8)
            .transition(
                TransitionSpec::builder("REQUEST", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["REQ"])
                    .sends_to([p(1), p(2), p(3)])
                    .effect(|_, _| {
                        Outcome::new(1)
                            .send(p(1), Msg::Req)
                            .send(p(2), Msg::Req)
                            .send(p(3), Msg::Req)
                    })
                    .build(),
            )
            .transition(mk_serve("SERVE_1", 1))
            .transition(mk_serve("SERVE_2", 2))
            .transition(mk_serve("SERVE_3", 3))
            .transition(
                TransitionSpec::builder("COLLECT", p(0))
                    .quorum_input("ACK", QuorumSpec::Exact(2))
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn request_enables_servers() {
        let spec = proto();
        let ce = CanEnable::compute(&spec);
        assert!(ce.enablers_of(TransitionId(1)).contains(&TransitionId(0)));
        assert!(ce.enablers_of(TransitionId(2)).contains(&TransitionId(0)));
        assert!(ce.may_enable(TransitionId(0)).contains(&TransitionId(1)));
    }

    #[test]
    fn servers_enable_collect() {
        let spec = proto();
        let ce = CanEnable::compute(&spec);
        let enablers = ce.enablers_of(TransitionId(4));
        assert!(enablers.contains(&TransitionId(1)));
        assert!(enablers.contains(&TransitionId(2)));
        assert!(enablers.contains(&TransitionId(3)));
        // REQUEST also counts: it shares p0's local state with COLLECT.
        assert!(enablers.contains(&TransitionId(0)));
    }

    #[test]
    fn servers_do_not_enable_each_other() {
        let spec = proto();
        let ce = CanEnable::compute(&spec);
        assert!(!ce.enablers_of(TransitionId(1)).contains(&TransitionId(2)));
        assert!(!ce.enablers_of(TransitionId(2)).contains(&TransitionId(1)));
    }

    #[test]
    fn quorum_split_restriction_shrinks_enablers() {
        let spec = proto();
        let collect = spec.transition(TransitionId(4));
        let split = collect.restricted_copy("COLLECT_12", [p(1), p(2)].into_iter().collect());
        let mut transitions: Vec<_> = spec.transitions().map(|(_, t)| t.clone()).collect();
        transitions[4] = split;
        let split_spec = spec.with_transitions(transitions).unwrap();
        let ce = CanEnable::compute(&split_spec);
        let enablers = ce.enablers_of(TransitionId(4));
        assert!(enablers.contains(&TransitionId(1)));
        assert!(enablers.contains(&TransitionId(2)));
        assert!(
            !enablers.contains(&TransitionId(3)),
            "SERVE_3 cannot enable the split COLLECT restricted to peers p1 and p2"
        );
    }

    #[test]
    fn num_pairs_decreases_with_refinement() {
        let spec = proto();
        let before = CanEnable::compute(&spec).num_pairs();
        let collect = spec.transition(TransitionId(4));
        let split = collect.restricted_copy("COLLECT_12", [p(1), p(2)].into_iter().collect());
        let mut transitions: Vec<_> = spec.transitions().map(|(_, t)| t.clone()).collect();
        transitions[4] = split;
        let split_spec = spec.with_transitions(transitions).unwrap();
        let after = CanEnable::compute(&split_spec).num_pairs();
        assert!(
            after < before,
            "refinement must shrink the can-enable relation"
        );
    }

    #[test]
    fn potential_enabler_detection() {
        let spec = proto();
        for t in spec.transition_ids() {
            assert!(
                has_potential_enabler(&spec, t),
                "{t} should have an enabler"
            );
        }
        // A transition waiting for a kind nobody sends has no enabler.
        let orphan: TransitionSpec<u8, Msg> = TransitionSpec::builder("ORPHAN", p(0))
            .single_input("NEVER_SENT")
            .effect(|l, _| Outcome::new(*l))
            .build();
        let with_orphan = {
            let mut ts: Vec<_> = spec.transitions().map(|(_, t)| t.clone()).collect();
            ts.push(orphan);
            spec.with_transitions(ts).unwrap()
        };
        assert!(!has_potential_enabler(&with_orphan, TransitionId(5)));
    }
}
