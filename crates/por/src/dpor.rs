//! Dynamic partial-order reduction (Flanagan–Godefroid) support.
//!
//! DPOR computes the stubborn set "on the fly" while the successors of a
//! state are visited (paper, Section III-A). The search itself is the
//! stateless depth-first engine in `mp-checker`; this module provides the
//! ingredients it needs:
//!
//! * [`instances_dependent`] — the dependence check between two *concrete*
//!   transition instances (the dynamic analogue of the static relation in
//!   [`crate::IndependenceRelation`]);
//! * [`ExecutedStep`] and [`happens_before`] — the causality bookkeeping used
//!   to find, for each newly executed instance, the most recent earlier step
//!   it races with, where a backtrack point has to be added.
//!
//! As in the paper, DPOR is only sound with stateless search (it must see
//! every path below a state again to install backtrack points), so MP-Basset
//! applies it to single-message models only; our engine imposes the same
//! discipline in the harness but the machinery itself is model-agnostic.

use mp_model::{Kind, Message, ProcessId, TransitionInstance};

/// One executed step of the current stateless execution, with enough
/// information to decide races against later steps.
#[derive(Clone, Debug)]
pub struct ExecutedStep<M> {
    /// The instance that was executed.
    pub instance: TransitionInstance<M>,
    /// The processes that received messages sent by this step.
    pub sent_to: Vec<ProcessId>,
    /// `true` if the executed transition is an environment transition
    /// (fault injection). Environment steps of the same budget class share
    /// the global fault budget, so they race with each other even without
    /// a message between them; see [`step_dependent`].
    pub is_environment: bool,
    /// The budget class of an environment step (mirrors
    /// [`Annotations::environment_class`](mp_model::Annotations)): steps of
    /// *disjoint* classes draw on disjoint budget counters and do not race
    /// through the budget. `None` means unknown — conservatively racing
    /// with every other environment step.
    pub environment_class: Option<Kind>,
}

impl<M: Message> ExecutedStep<M> {
    /// Creates an executed step record (protocol step; use
    /// [`ExecutedStep::with_environment`] for fault-injection steps).
    pub fn new(instance: TransitionInstance<M>, sent_to: Vec<ProcessId>) -> Self {
        ExecutedStep {
            instance,
            sent_to,
            is_environment: false,
            environment_class: None,
        }
    }

    /// Flags whether this step executed an environment transition
    /// (builder style).
    pub fn with_environment(mut self, is_environment: bool) -> Self {
        self.is_environment = is_environment;
        self
    }

    /// Records the environment step's budget class (builder style); see
    /// [`ExecutedStep::environment_class`].
    pub fn with_environment_class(mut self, class: Option<Kind>) -> Self {
        self.environment_class = class;
        self
    }

    /// The process that executed the step.
    pub fn process(&self) -> ProcessId {
        self.instance.process
    }
}

/// Returns `true` if the two concrete instances are dependent.
///
/// Two instances are dependent iff they are executed by the same process
/// (they compete for its local state and incoming channels), or one of them
/// consumed a message sent by the other's process (a direct communication).
pub fn instances_dependent<M: Message>(
    a: &TransitionInstance<M>,
    b: &TransitionInstance<M>,
) -> bool {
    if a.process == b.process {
        return true;
    }
    a.envelopes.iter().any(|e| e.sender == b.process)
        || b.envelopes.iter().any(|e| e.sender == a.process)
}

/// Returns `true` if step `earlier` happens-before step `later` in the given
/// execution, i.e. there is a causal chain of dependent steps from `earlier`
/// to `later`.
///
/// `steps` is the executed prefix in order; `earlier` and `later` are indices
/// into it with `earlier < later`.
pub fn happens_before<M: Message>(steps: &[ExecutedStep<M>], earlier: usize, later: usize) -> bool {
    debug_assert!(earlier < later && later < steps.len());
    // Standard transitive closure over the dependence relation restricted to
    // the execution order. Executions explored by the stateless search are
    // short (bounded by the protocol's terminating runs), so the quadratic
    // scan is acceptable and keeps the code auditable.
    let mut reachable = vec![false; steps.len()];
    reachable[earlier] = true;
    for idx in (earlier + 1)..=later {
        if reachable[idx] {
            continue;
        }
        let depends_on_reachable =
            (earlier..idx).any(|prev| reachable[prev] && step_dependent(&steps[prev], &steps[idx]));
        if depends_on_reachable {
            reachable[idx] = true;
        }
    }
    reachable[later]
}

/// Dependence between executed steps: instance dependence plus the
/// "message delivery" causality (a step that sent a message to process `p`
/// causally precedes any later step of `p` that consumed it; conservatively,
/// any later step of `p`).
pub fn step_dependent<M: Message>(a: &ExecutedStep<M>, b: &ExecutedStep<M>) -> bool {
    if instances_dependent(&a.instance, &b.instance) {
        return true;
    }
    // Environment steps of the same (or unknown) budget class share a fault
    // budget counter: each can disable the other by exhausting it, so their
    // orders are never equivalent. Disjoint classes (e.g. a crash and a
    // duplication with separate budgets) cannot interfere through the
    // budget and fall through to the message-causality test.
    if a.is_environment && b.is_environment {
        match (a.environment_class, b.environment_class) {
            (Some(ca), Some(cb)) if ca != cb => {}
            _ => return true,
        }
    }
    a.sent_to.contains(&b.process()) || b.sent_to.contains(&a.process())
}

/// Finds the most recent earlier step that *races* with `latest`: it is
/// dependent with `latest` and not ordered before it by happens-before
/// through intermediate steps. Returns its index, if any.
///
/// This is the point where the Flanagan–Godefroid algorithm installs a
/// backtrack obligation.
pub fn latest_racing_step<M: Message>(steps: &[ExecutedStep<M>], latest: usize) -> Option<usize> {
    debug_assert!(latest < steps.len());
    (0..latest).rev().find(|&candidate| {
        step_dependent(&steps[candidate], &steps[latest])
            && !intermediate_ordering(steps, candidate, latest)
    })
}

/// Returns `true` if `earlier` is ordered before `latest` through a chain of
/// dependent steps strictly between them (in which case the pair is not a
/// race: their order is already forced).
fn intermediate_ordering<M: Message>(
    steps: &[ExecutedStep<M>],
    earlier: usize,
    latest: usize,
) -> bool {
    ((earlier + 1)..latest).any(|mid| {
        step_dependent(&steps[earlier], &steps[mid]) && happens_before(steps, mid, latest)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Envelope, Kind, TransitionId};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Msg(u8);
    mp_model::codec!(struct Msg(n));

    impl Message for Msg {
        fn kind(&self) -> Kind {
            "MSG"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    fn internal_instance(t: usize, proc: usize) -> TransitionInstance<Msg> {
        TransitionInstance::new(TransitionId(t), p(proc), Vec::new())
    }

    fn receive_instance(t: usize, proc: usize, from: usize) -> TransitionInstance<Msg> {
        TransitionInstance::new(
            TransitionId(t),
            p(proc),
            vec![Envelope::new(p(from), Msg(0))],
        )
    }

    #[test]
    fn same_process_instances_are_dependent() {
        let a = internal_instance(0, 1);
        let b = internal_instance(1, 1);
        assert!(instances_dependent(&a, &b));
    }

    #[test]
    fn communicating_instances_are_dependent() {
        let sender = internal_instance(0, 0);
        let receiver = receive_instance(1, 2, 0);
        assert!(instances_dependent(&sender, &receiver));
        assert!(instances_dependent(&receiver, &sender));
    }

    #[test]
    fn unrelated_instances_are_independent() {
        let a = internal_instance(0, 0);
        let b = receive_instance(1, 2, 3);
        assert!(!instances_dependent(&a, &b));
    }

    #[test]
    fn happens_before_follows_dependence_chains() {
        // p0 sends to p1; p1 receives (dependent on step 0); p2 acts alone.
        let steps = vec![
            ExecutedStep::new(internal_instance(0, 0), vec![p(1)]),
            ExecutedStep::new(receive_instance(1, 1, 0), vec![]),
            ExecutedStep::new(internal_instance(2, 2), vec![]),
        ];
        assert!(happens_before(&steps, 0, 1));
        assert!(!happens_before(&steps, 0, 2));
        assert!(!happens_before(&steps, 1, 2));
    }

    #[test]
    fn happens_before_is_transitive() {
        // 0: p0 sends to p1; 1: p1 receives and sends to p2; 2: p2 receives.
        let steps = vec![
            ExecutedStep::new(internal_instance(0, 0), vec![p(1)]),
            ExecutedStep::new(receive_instance(1, 1, 0), vec![p(2)]),
            ExecutedStep::new(receive_instance(2, 2, 1), vec![]),
        ];
        assert!(happens_before(&steps, 0, 2));
    }

    #[test]
    fn racing_step_is_detected() {
        // Two steps of the same process with an unrelated step in between:
        // the same-process pair races (its order is not forced by anything
        // in between).
        let steps = vec![
            ExecutedStep::new(internal_instance(0, 1), vec![]),
            ExecutedStep::new(internal_instance(1, 2), vec![]),
            ExecutedStep::new(internal_instance(2, 1), vec![]),
        ];
        assert_eq!(latest_racing_step(&steps, 2), Some(0));
        assert_eq!(latest_racing_step(&steps, 1), None);
    }

    #[test]
    fn ordered_pairs_are_not_races() {
        // 0: p0 sends to p1; 1: p1 receives from p0 and sends to p2;
        // 2: p2 receives from p1. Step 0 and step 2 are causally ordered via
        // step 1, so the only race candidate for step 2 is step 1.
        let steps = vec![
            ExecutedStep::new(internal_instance(0, 0), vec![p(1)]),
            ExecutedStep::new(receive_instance(1, 1, 0), vec![p(2)]),
            ExecutedStep::new(receive_instance(2, 2, 1), vec![]),
        ];
        assert_eq!(latest_racing_step(&steps, 2), Some(1));
    }

    #[test]
    fn environment_steps_race_by_budget_class() {
        let crash0 = ExecutedStep::new(internal_instance(0, 0), vec![])
            .with_environment(true)
            .with_environment_class(Some("crash"));
        let crash1 = ExecutedStep::new(internal_instance(1, 1), vec![])
            .with_environment(true)
            .with_environment_class(Some("crash"));
        let dup2 = ExecutedStep::new(internal_instance(2, 2), vec![])
            .with_environment(true)
            .with_environment_class(Some("dup"));
        let unknown3 = ExecutedStep::new(internal_instance(3, 3), vec![]).with_environment(true);
        // Same class: shared budget, always a race.
        assert!(step_dependent(&crash0, &crash1));
        // Disjoint classes, no communication: no race.
        assert!(!step_dependent(&crash0, &dup2));
        // Unknown class: conservatively racing.
        assert!(step_dependent(&crash0, &unknown3));
    }

    #[test]
    fn independent_steps_have_no_race() {
        let steps = vec![
            ExecutedStep::new(internal_instance(0, 0), vec![]),
            ExecutedStep::new(internal_instance(1, 1), vec![]),
            ExecutedStep::new(internal_instance(2, 2), vec![]),
        ];
        assert_eq!(latest_racing_step(&steps, 2), None);
        assert_eq!(latest_racing_step(&steps, 1), None);
    }
}
