//! Seed-transition heuristics.
//!
//! "The performance of POR depends on the first transition in the stubborn
//! set" (paper, Section V-B). MP-Basset uses the *opposite transaction
//! heuristic*: prefer transitions that start a new instance of the protocol
//! (e.g. `READ` in Paxos) or at least do not terminate an ongoing one,
//! encoded through the `priority()` annotation of Table IV. The transaction
//! heuristic of Bhattacharya et al. (reference \[5\] of the paper) prefers the
//! opposite; both are provided so the harness can compare them, plus two
//! protocol-agnostic fallbacks.

use mp_model::{LocalState, Message, ProtocolSpec, TransitionId};

use crate::IndependenceRelation;

/// Strategy for choosing the seed (start) transition of a stubborn set.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SeedHeuristic {
    /// Prefer the enabled transition with the *highest* `priority`
    /// annotation: the paper's "opposite transaction heuristic", where high
    /// priority is assigned to transitions that start a new protocol
    /// instance or keep it open.
    #[default]
    OppositeTransaction,
    /// Prefer the enabled transition with the *lowest* `priority`
    /// annotation: the transaction heuristic of \[5\], which prefers finishing
    /// the ongoing instance.
    Transaction,
    /// Pick the first enabled transition in declaration order (a baseline
    /// with no protocol knowledge).
    FirstEnabled,
    /// Pick the enabled transition with the fewest statically dependent
    /// transitions, a protocol-agnostic attempt to keep stubborn sets small.
    FewestDependents,
}

impl SeedHeuristic {
    /// Chooses a seed among `enabled` (which must be non-empty) for the
    /// given protocol.
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty.
    pub fn choose<S: LocalState, M: Message>(
        &self,
        spec: &ProtocolSpec<S, M>,
        independence: &IndependenceRelation,
        enabled: &[TransitionId],
    ) -> TransitionId {
        assert!(
            !enabled.is_empty(),
            "cannot choose a seed among no transitions"
        );
        match self {
            SeedHeuristic::OppositeTransaction => *enabled
                .iter()
                .max_by_key(|t| {
                    (
                        spec.transition(**t).annotations().priority,
                        // Tie-break deterministically on reverse id so that
                        // equal-priority choices favour later declarations
                        // (protocol-start transitions are usually declared
                        // first per process, but ties are arbitrary anyway).
                        std::cmp::Reverse(t.index()),
                    )
                })
                .expect("non-empty"),
            SeedHeuristic::Transaction => *enabled
                .iter()
                .min_by_key(|t| (spec.transition(**t).annotations().priority, t.index()))
                .expect("non-empty"),
            SeedHeuristic::FirstEnabled => {
                *enabled.iter().min_by_key(|t| t.index()).expect("non-empty")
            }
            SeedHeuristic::FewestDependents => *enabled
                .iter()
                .min_by_key(|t| (independence.dependents_of(**t).len(), t.index()))
                .expect("non-empty"),
        }
    }

    /// Human-readable name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            SeedHeuristic::OppositeTransaction => "opposite-transaction",
            SeedHeuristic::Transaction => "transaction",
            SeedHeuristic::FirstEnabled => "first-enabled",
            SeedHeuristic::FewestDependents => "fewest-dependents",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Message, Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct NoMsg;
    mp_model::codec!(struct NoMsg);

    impl Message for NoMsg {
        fn kind(&self) -> Kind {
            "NONE"
        }
    }

    fn spec_with_priorities(priorities: &[i32]) -> ProtocolSpec<u8, NoMsg> {
        let mut builder = ProtocolSpec::builder("prio");
        for (i, _) in priorities.iter().enumerate() {
            builder = builder.process(format!("proc{i}"), 0u8);
        }
        for (i, prio) in priorities.iter().enumerate() {
            builder = builder.transition(
                TransitionSpec::builder(format!("t{i}"), ProcessId(i))
                    .internal()
                    .priority(*prio)
                    .sends_nothing()
                    .effect(|l, _| Outcome::new(l + 1))
                    .build(),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn opposite_transaction_prefers_highest_priority() {
        let spec = spec_with_priorities(&[0, 5, 2]);
        let rel = IndependenceRelation::compute(&spec);
        let enabled: Vec<TransitionId> = spec.transition_ids().collect();
        let seed = SeedHeuristic::OppositeTransaction.choose(&spec, &rel, &enabled);
        assert_eq!(seed, TransitionId(1));
    }

    #[test]
    fn transaction_prefers_lowest_priority() {
        let spec = spec_with_priorities(&[3, 5, 2]);
        let rel = IndependenceRelation::compute(&spec);
        let enabled: Vec<TransitionId> = spec.transition_ids().collect();
        let seed = SeedHeuristic::Transaction.choose(&spec, &rel, &enabled);
        assert_eq!(seed, TransitionId(2));
    }

    #[test]
    fn first_enabled_is_declaration_order() {
        let spec = spec_with_priorities(&[0, 0, 0]);
        let rel = IndependenceRelation::compute(&spec);
        let enabled = vec![TransitionId(2), TransitionId(1)];
        let seed = SeedHeuristic::FirstEnabled.choose(&spec, &rel, &enabled);
        assert_eq!(seed, TransitionId(1));
    }

    #[test]
    fn fewest_dependents_prefers_isolated_transitions() {
        // Three independent processes: every transition has exactly one
        // dependent (itself), so the tie-break picks the lowest id.
        let spec = spec_with_priorities(&[0, 0, 0]);
        let rel = IndependenceRelation::compute(&spec);
        let enabled: Vec<TransitionId> = spec.transition_ids().collect();
        let seed = SeedHeuristic::FewestDependents.choose(&spec, &rel, &enabled);
        assert_eq!(seed, TransitionId(0));
    }

    #[test]
    #[should_panic(expected = "cannot choose a seed")]
    fn empty_enabled_set_panics() {
        let spec = spec_with_priorities(&[0]);
        let rel = IndependenceRelation::compute(&spec);
        SeedHeuristic::FirstEnabled.choose(&spec, &rel, &[]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            SeedHeuristic::OppositeTransaction.name(),
            "opposite-transaction"
        );
        assert_eq!(SeedHeuristic::Transaction.name(), "transaction");
        assert_eq!(SeedHeuristic::FirstEnabled.name(), "first-enabled");
        assert_eq!(SeedHeuristic::FewestDependents.name(), "fewest-dependents");
        assert_eq!(SeedHeuristic::default(), SeedHeuristic::OppositeTransaction);
    }
}
