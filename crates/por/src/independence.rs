//! Static (unconditional) independence between transitions.
//!
//! MP-LPOR "uses a notion of independency that is unconditional, i.e., it is
//! not a function of the system state" and pre-computes it before the search
//! (paper, Section IV-B). This module derives that relation from the
//! transition specifications and their Table-IV annotations:
//!
//! Two transitions `t1` (of process `i`) and `t2` (of process `j`) are
//! **dependent** iff
//!
//! 1. `i == j` — they read/write the same local state and compete for the
//!    same incoming channels; or
//! 2. `t1` may send a message that `t2` can consume (`t1` *can communicate
//!    with* `t2`), or vice versa — executing one can enable, disable or
//!    change the effect of the other.
//!
//! Everything else commutes: the executions touch disjoint local states and
//! disjoint channels, so the resulting state is the same in either order.
//! The relation is deliberately conservative; transition refinement
//! (quorum-split, reply-split) makes it *more precise* by shrinking the set
//! of processes a transition can receive from or send to, which is exactly
//! how the paper's splits help POR.

use mp_model::{Kind, LocalState, Message, ProtocolSpec, TransitionId, TransitionSpec};

/// Symmetric dependence relation over the transitions of a protocol,
/// pre-computed once before the search starts.
#[derive(Clone, Debug)]
pub struct IndependenceRelation {
    num_transitions: usize,
    /// Row-major boolean matrix: `dependent[i * n + j]`.
    dependent: Vec<bool>,
}

impl IndependenceRelation {
    /// Computes the unconditional dependence relation of `spec`.
    pub fn compute<S: LocalState, M: Message>(spec: &ProtocolSpec<S, M>) -> Self {
        let n = spec.num_transitions();
        let mut dependent = vec![false; n * n];
        for (a_id, a) in spec.transitions() {
            for (b_id, b) in spec.transitions() {
                if a_id.index() > b_id.index() {
                    continue;
                }
                let dep = transitions_dependent(a, b);
                dependent[a_id.index() * n + b_id.index()] = dep;
                dependent[b_id.index() * n + a_id.index()] = dep;
            }
        }
        IndependenceRelation {
            num_transitions: n,
            dependent,
        }
    }

    /// Returns the number of transitions covered by the relation.
    pub fn num_transitions(&self) -> usize {
        self.num_transitions
    }

    /// Returns `true` if the two transitions are (possibly) dependent.
    pub fn dependent(&self, a: TransitionId, b: TransitionId) -> bool {
        self.dependent[a.index() * self.num_transitions + b.index()]
    }

    /// Returns `true` if the two transitions are (definitely) independent.
    pub fn independent(&self, a: TransitionId, b: TransitionId) -> bool {
        !self.dependent(a, b)
    }

    /// Returns all transitions dependent on `t` (including `t` itself).
    pub fn dependents_of(&self, t: TransitionId) -> Vec<TransitionId> {
        (0..self.num_transitions)
            .filter(|&j| self.dependent[t.index() * self.num_transitions + j])
            .map(TransitionId)
            .collect()
    }

    /// Returns the number of dependent (unordered) pairs, a useful summary
    /// statistic when comparing refined against unrefined models.
    pub fn num_dependent_pairs(&self) -> usize {
        let mut count = 0;
        for i in 0..self.num_transitions {
            for j in i..self.num_transitions {
                if self.dependent[i * self.num_transitions + j] {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Decides whether `a` may send a message that `b` can consume.
///
/// `a` can communicate with `b` iff some kind `k` that `a` may emit equals
/// `b`'s input kind, `a` may send to `b`'s process, and `b` may receive from
/// `a`'s process. Annotations are interpreted conservatively: a transition
/// with an unknown output alphabet is assumed to possibly send `b`'s input
/// kind.
pub fn can_communicate<S: LocalState, M: Message>(
    a: &TransitionSpec<S, M>,
    b: &TransitionSpec<S, M>,
) -> bool {
    let Some(b_kind) = b.input_kind() else {
        // `b` consumes no messages; `a` cannot affect it through channels.
        return false;
    };
    if !b.may_receive_from(a.process()) {
        return false;
    }
    if !a
        .annotations()
        .recipients
        .may_send_to(b.process(), a.allowed_senders())
    {
        return false;
    }
    may_emit_kind(a, b_kind)
}

/// Returns `true` if transition `a` may emit a message of kind `kind`,
/// according to its `messages_out` annotation (conservatively `true` when the
/// annotation is absent and the transition is not declared send-free).
pub fn may_emit_kind<S: LocalState, M: Message>(a: &TransitionSpec<S, M>, kind: Kind) -> bool {
    let ann = a.annotations();
    if matches!(ann.recipients, mp_model::RecipientSet::None) {
        return false;
    }
    if ann.messages_out.is_empty() {
        // Unknown output alphabet: be conservative.
        return true;
    }
    ann.messages_out.contains(&kind)
}

/// The underlying pairwise test used by [`IndependenceRelation::compute`].
///
/// Besides the two protocol rules (same process; possible communication),
/// a third rule covers **environment transitions** (fault injection,
/// `mp-faults`): two environment transitions of the *same budget class*
/// (or of unknown class) are dependent, even across processes. They draw
/// on a shared global fault budget enforced through the spec's enable
/// filter, so executing one can *disable* the other — a relationship
/// invisible to the channel-based communication test. Without this rule a
/// stubborn set could postpone an environment transition past the point
/// where the budget that admitted it is spent.
///
/// Environment transitions of *disjoint* budget classes (e.g. a crash and a
/// duplication, each with its own
/// [`Annotations::environment_class`](mp_model::Annotations::environment_class)
/// counter) cannot disable each other through the budget; for those the
/// ordinary communication test decides, so a crash at one process and a
/// message drop at another commute and POR may prune one of the two orders.
pub fn transitions_dependent<S: LocalState, M: Message>(
    a: &TransitionSpec<S, M>,
    b: &TransitionSpec<S, M>,
) -> bool {
    if a.process() == b.process() {
        return true;
    }
    if a.annotations().is_environment && b.annotations().is_environment {
        match (
            a.annotations().environment_class,
            b.annotations().environment_class,
        ) {
            // Disjoint budget counters: neither can exhaust the other's
            // budget, so only ordinary communication can make them
            // dependent (checked below).
            (Some(ca), Some(cb)) if ca != cb => {}
            // Same class, or unknown class: conservatively dependent.
            _ => return true,
        }
    }
    can_communicate(a, b) || can_communicate(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Outcome, ProcessId, ProtocolSpec, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req,
        Ack,
    }
    mp_model::codec!(enum Msg { 0 = Req, 1 = Ack });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req => "REQ",
                Msg::Ack => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// p0 broadcasts REQ; p1 and p2 reply with ACK; p0 collects 2 ACKs.
    fn proto() -> ProtocolSpec<u8, Msg> {
        ProtocolSpec::builder("req-ack")
            .process("client", 0u8)
            .process("s1", 0u8)
            .process("s2", 0u8)
            .transition(
                TransitionSpec::builder("REQUEST", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends(&["REQ"])
                    .sends_to([p(1), p(2)])
                    .effect(|_, _| Outcome::new(1).send(p(1), Msg::Req).send(p(2), Msg::Req))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SERVE_1", p(1))
                    .single_input("REQ")
                    .reply()
                    .sends(&["ACK"])
                    .effect(|_, m| Outcome::new(1).send(m[0].sender, Msg::Ack))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("SERVE_2", p(2))
                    .single_input("REQ")
                    .reply()
                    .sends(&["ACK"])
                    .effect(|_, m| Outcome::new(1).send(m[0].sender, Msg::Ack))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("COLLECT", p(0))
                    .quorum_input("ACK", QuorumSpec::Exact(2))
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(2))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn same_process_transitions_are_dependent() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        // REQUEST (t0) and COLLECT (t3) both belong to p0.
        assert!(rel.dependent(TransitionId(0), TransitionId(3)));
    }

    #[test]
    fn servers_of_different_processes_are_independent() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        // SERVE_1 (p1) and SERVE_2 (p2): they reply to the client only, and
        // neither consumes what the other sends.
        assert!(rel.independent(TransitionId(1), TransitionId(2)));
    }

    #[test]
    fn sender_and_consumer_are_dependent() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        // REQUEST sends REQ consumed by SERVE_1 / SERVE_2.
        assert!(rel.dependent(TransitionId(0), TransitionId(1)));
        assert!(rel.dependent(TransitionId(0), TransitionId(2)));
        // SERVE_1 sends ACK consumed by COLLECT.
        assert!(rel.dependent(TransitionId(1), TransitionId(3)));
    }

    #[test]
    fn relation_is_symmetric_and_reflexive() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        for a in spec.transition_ids() {
            assert!(rel.dependent(a, a), "{a} must be dependent on itself");
            for b in spec.transition_ids() {
                assert_eq!(rel.dependent(a, b), rel.dependent(b, a));
            }
        }
    }

    #[test]
    fn dependents_of_lists_expected_transitions() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        let deps = rel.dependents_of(TransitionId(1));
        assert!(deps.contains(&TransitionId(0)));
        assert!(deps.contains(&TransitionId(1)));
        assert!(deps.contains(&TransitionId(3)));
        assert!(!deps.contains(&TransitionId(2)));
    }

    #[test]
    fn sender_restriction_removes_dependence() {
        // Quorum-split style restriction: a copy of COLLECT that may only
        // receive from p1 is independent of SERVE_2.
        let spec = proto();
        let collect = spec.transition(TransitionId(3));
        let restricted = collect.restricted_copy("COLLECT_1", [p(1)].into_iter().collect());
        let serve2 = spec.transition(TransitionId(2));
        assert!(!transitions_dependent(&restricted, serve2));
        assert!(transitions_dependent(collect, serve2));
    }

    #[test]
    fn reply_restriction_removes_dependence_on_non_peers() {
        // Reply-split style restriction: SERVE_1 restricted to peer p0 still
        // communicates with COLLECT (p0) but a hypothetical restriction to a
        // different peer would not.
        let spec = proto();
        let serve1 = spec.transition(TransitionId(1));
        let to_client = serve1.restricted_copy("SERVE_1_c", [p(0)].into_iter().collect());
        let collect = spec.transition(TransitionId(3));
        assert!(transitions_dependent(&to_client, collect));
        let to_other = serve1.restricted_copy("SERVE_1_x", [p(2)].into_iter().collect());
        // Restricted to replying to p2, it can no longer send ACK to p0.
        assert!(!transitions_dependent(&to_other, collect));
    }

    #[test]
    fn environment_budget_classes_decide_env_env_dependence() {
        let env = |name: &str, proc: usize, class: Option<Kind>| {
            let mut b = TransitionSpec::<u8, Msg>::builder(name.to_string(), p(proc))
                .internal()
                .sends_nothing()
                .effect(|l, _| Outcome::new(*l));
            b = match class {
                Some(c) => b.environment_class(c),
                None => b.environment(),
            };
            b.build()
        };
        let crash0 = env("FAULT_CRASH@p0", 0, Some("crash"));
        let crash1 = env("FAULT_CRASH@p1", 1, Some("crash"));
        let dup1 = env("FAULT_DUP@p1", 1, Some("dup"));
        let dup2 = env("FAULT_DUP@p2", 2, Some("dup"));
        let unknown2 = env("FAULT_MYSTERY@p2", 2, None);
        // Same class across processes: shared budget, dependent.
        assert!(transitions_dependent(&crash0, &crash1));
        assert!(transitions_dependent(&dup1, &dup2));
        // Same process: always dependent, whatever the classes.
        assert!(transitions_dependent(&crash1, &dup1));
        // Disjoint classes, disjoint processes, no communication: independent.
        assert!(!transitions_dependent(&crash0, &dup2));
        // Unknown class stays conservatively dependent on everything.
        assert!(transitions_dependent(&crash0, &unknown2));
        assert!(transitions_dependent(&dup1, &unknown2));
    }

    #[test]
    fn unknown_output_alphabet_is_conservative() {
        let a: TransitionSpec<u8, Msg> = TransitionSpec::builder("mystery", p(1))
            .internal()
            .effect(|l, _| Outcome::new(*l))
            .build();
        assert!(may_emit_kind(&a, "ACK"));
        assert!(may_emit_kind(&a, "REQ"));
        let b: TransitionSpec<u8, Msg> = TransitionSpec::builder("silent", p(1))
            .internal()
            .sends_nothing()
            .effect(|l, _| Outcome::new(*l))
            .build();
        assert!(!may_emit_kind(&b, "ACK"));
    }

    #[test]
    fn num_dependent_pairs_counts_unordered_pairs() {
        let spec = proto();
        let rel = IndependenceRelation::compute(&spec);
        // Pairs (unordered, incl. diagonal): t0-t0, t1-t1, t2-t2, t3-t3,
        // t0-t1, t0-t2, t0-t3, t1-t3, t2-t3 => 9.
        assert_eq!(rel.num_dependent_pairs(), 9);
    }
}
