//! # mp-por — partial-order reduction for message-passing protocols
//!
//! Partial-order reduction (POR) exploits the fact that executing
//! independent transitions in either order leads to the same state, so it
//! suffices to explore one representative order (paper, Section III-A). This
//! crate provides the two POR flavours evaluated in the DSN 2011 paper:
//!
//! * **Static POR (SPOR / MP-LPOR analogue)** — [`StubbornSets`] pre-computes
//!   a state-unconditional [`IndependenceRelation`] and [`CanEnable`]
//!   (necessary enabling transitions) from the Table-IV style annotations of
//!   the model, then computes a stubborn set in every visited state starting
//!   from a [`SeedHeuristic`]-chosen seed transition. [`SporReducer`]
//!   packages this as a per-state [`Reducer`] for the search engines in
//!   `mp-checker`.
//! * **Dynamic POR (Flanagan–Godefroid)** — the [`dpor`] module supplies the
//!   instance-level dependence and race detection used by the *stateless*
//!   search of `mp-checker` to install backtrack points on the fly.
//!
//! Transition refinement (crate `mp-refine`) does not change these
//! algorithms; it changes the *inputs* — refined transitions have tighter
//! sender/recipient annotations, which shrinks both relations and lets the
//! same algorithms prune more, exactly the effect studied in the paper's
//! Table II.
//!
//! Two independent internal steps need only one interleaving:
//!
//! ```
//! use mp_model::{codec, enabled_instances, Message, Outcome, ProcessId, ProtocolSpec,
//!     TransitionSpec};
//! use mp_por::{Reducer, SporReducer};
//!
//! #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
//! struct Tick;
//! codec!(struct Tick);
//! impl Message for Tick {
//!     fn kind(&self) -> &'static str { "TICK" }
//! }
//!
//! let mut builder = ProtocolSpec::<u8, Tick>::builder("independent");
//! for i in 0..2 {
//!     builder = builder.process(format!("w{i}"), 0u8).transition(
//!         TransitionSpec::builder(format!("step{i}"), ProcessId(i))
//!             .internal()
//!             .guard(|l, _| *l == 0)
//!             .sends_nothing()
//!             .effect(|_, _| Outcome::new(1))
//!             .build(),
//!     );
//! }
//! let spec = builder.build().unwrap();
//!
//! let reducer = SporReducer::new(&spec);
//! let state = spec.initial_state();
//! let all = enabled_instances(&spec, &state);
//! assert_eq!(all.len(), 2);
//! let reduction = reducer.reduce(&spec, &state, all);
//! assert_eq!(reduction.explore.len(), 1, "one representative order suffices");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canenable;
pub mod dpor;
pub mod heuristics;
pub mod independence;
pub mod reducer;
pub mod stubborn;

pub use canenable::{has_potential_enabler, CanEnable};
pub use dpor::{
    happens_before, instances_dependent, latest_racing_step, step_dependent, ExecutedStep,
};
pub use heuristics::SeedHeuristic;
pub use independence::{
    can_communicate, may_emit_kind, transitions_dependent, IndependenceRelation,
};
pub use reducer::{NoReduction, Reducer, Reduction, SporReducer};
pub use stubborn::{StubbornSet, StubbornSets};
