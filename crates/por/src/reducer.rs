//! The reducer interface used by the search engines of `mp-checker`.
//!
//! A reducer looks at a state and the enabled transition instances and
//! selects the subset that must be explored. [`NoReduction`] explores
//! everything (the unreduced baseline of the paper's Table I for regular
//! storage); [`SporReducer`] explores a stubborn set computed by
//! [`StubbornSets`]; dynamic POR is not a per-state reducer — it lives in the
//! stateless search of `mp-checker` and uses [`crate::dpor`] for its
//! dependence checks.

use mp_model::{GlobalState, LocalState, Message, ProtocolSpec, TransitionId, TransitionInstance};
use mp_trace::{Histogram, Phase, TraceHandle};

use crate::{SeedHeuristic, StubbornSets};

/// Decision of a reducer for one state.
#[derive(Clone, Debug)]
pub struct Reduction<M> {
    /// The instances the search must explore from this state.
    pub explore: Vec<TransitionInstance<M>>,
    /// The enabled instances the reducer pruned (empty when not reduced).
    /// The search keeps them at hand for the **cycle/ignoring proviso**: if
    /// a reduced expansion closes a cycle back into the search stack, the
    /// state is re-expanded with these instances added back, so no enabled
    /// transition is postponed around a cycle forever. This is what makes
    /// stubborn-set reduction sound for cyclic state graphs — and, together
    /// with the visibility condition, for the liveness properties of
    /// `mp-checker` (termination / leads-to).
    pub pruned: Vec<TransitionInstance<M>>,
    /// `true` if some enabled instance was pruned.
    pub reduced: bool,
}

/// A strategy that selects which enabled instances to explore in each state.
pub trait Reducer<S: LocalState, M: Message>: Send + Sync {
    /// Selects the instances to explore from `state`.
    ///
    /// `instances` holds every enabled instance of every transition in
    /// `state`; implementations must return a non-empty subset whenever
    /// `instances` is non-empty.
    fn reduce(
        &self,
        spec: &ProtocolSpec<S, M>,
        state: &GlobalState<S, M>,
        instances: Vec<TransitionInstance<M>>,
    ) -> Reduction<M>;

    /// [`Reducer::reduce`] with observability: times the computation under
    /// [`Phase::StubbornSet`] and records the size of the selected explore
    /// set into the stubborn-set histogram. Engines call this form; a
    /// disabled handle makes it identical to `reduce` (no clock read).
    fn reduce_traced(
        &self,
        spec: &ProtocolSpec<S, M>,
        state: &GlobalState<S, M>,
        instances: Vec<TransitionInstance<M>>,
        trace: &TraceHandle,
    ) -> Reduction<M> {
        let reduction = {
            let _span = trace.span(Phase::StubbornSet);
            self.reduce(spec, state, instances)
        };
        if trace.is_enabled() && !reduction.explore.is_empty() {
            trace.record(Histogram::StubbornSetSize, reduction.explore.len() as u64);
        }
        reduction
    }

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// Explores every enabled instance (no reduction).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoReduction;

impl<S: LocalState, M: Message> Reducer<S, M> for NoReduction {
    fn reduce(
        &self,
        _spec: &ProtocolSpec<S, M>,
        _state: &GlobalState<S, M>,
        instances: Vec<TransitionInstance<M>>,
    ) -> Reduction<M> {
        Reduction {
            explore: instances,
            pruned: Vec::new(),
            reduced: false,
        }
    }

    fn name(&self) -> &'static str {
        "unreduced"
    }
}

/// Static partial-order reduction using pre-computed stubborn sets
/// (the MP-LPOR analogue).
#[derive(Clone, Debug)]
pub struct SporReducer {
    sets: StubbornSets,
}

impl SporReducer {
    /// Builds the reducer for `spec` with the default
    /// (opposite-transaction) seed heuristic.
    pub fn new<S: LocalState, M: Message>(spec: &ProtocolSpec<S, M>) -> Self {
        SporReducer {
            sets: StubbornSets::new(spec),
        }
    }

    /// Builds the reducer with an explicit seed heuristic.
    pub fn with_heuristic<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        heuristic: SeedHeuristic,
    ) -> Self {
        SporReducer {
            sets: StubbornSets::with_heuristic(spec, heuristic),
        }
    }

    /// Returns the underlying pre-computed stubborn-set data.
    pub fn stubborn_sets(&self) -> &StubbornSets {
        &self.sets
    }
}

impl<S: LocalState, M: Message> Reducer<S, M> for SporReducer {
    fn reduce(
        &self,
        spec: &ProtocolSpec<S, M>,
        _state: &GlobalState<S, M>,
        instances: Vec<TransitionInstance<M>>,
    ) -> Reduction<M> {
        if instances.is_empty() {
            return Reduction {
                explore: instances,
                pruned: Vec::new(),
                reduced: false,
            };
        }
        let mut enabled: Vec<TransitionId> = instances.iter().map(|i| i.transition).collect();
        enabled.sort_unstable();
        enabled.dedup();
        match self.sets.compute(spec, &enabled) {
            Some(result) => {
                let (explore, pruned): (Vec<TransitionInstance<M>>, Vec<TransitionInstance<M>>) =
                    instances
                        .into_iter()
                        .partition(|i| result.explore.contains(&i.transition));
                Reduction {
                    reduced: result.reduced,
                    explore,
                    pruned,
                }
            }
            None => Reduction {
                explore: instances,
                pruned: Vec::new(),
                reduced: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "spor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{enabled_instances, Kind, Outcome, ProcessId, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Tok;
    mp_model::codec!(struct Tok);

    impl Message for Tok {
        fn kind(&self) -> Kind {
            "TOK"
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Two independent one-step processes (the diamond of Figure 4(a)).
    fn diamond() -> ProtocolSpec<u8, Tok> {
        ProtocolSpec::builder("diamond")
            .process("a", 0u8)
            .process("b", 0u8)
            .transition(
                TransitionSpec::builder("t1", p(0))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .transition(
                TransitionSpec::builder("t2", p(1))
                    .internal()
                    .guard(|l, _| *l == 0)
                    .sends_nothing()
                    .effect(|_, _| Outcome::new(1))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn no_reduction_keeps_everything() {
        let spec = diamond();
        let state = spec.initial_state();
        let instances = enabled_instances(&spec, &state);
        let red = <NoReduction as Reducer<u8, Tok>>::reduce(
            &NoReduction,
            &spec,
            &state,
            instances.clone(),
        );
        assert_eq!(red.explore.len(), instances.len());
        assert!(!red.reduced);
        assert_eq!(
            <NoReduction as Reducer<u8, Tok>>::name(&NoReduction),
            "unreduced"
        );
    }

    #[test]
    fn spor_prunes_independent_branch() {
        let spec = diamond();
        let state = spec.initial_state();
        let instances = enabled_instances(&spec, &state);
        assert_eq!(instances.len(), 2);
        let reducer = SporReducer::new(&spec);
        let red = reducer.reduce(&spec, &state, instances);
        assert_eq!(
            red.explore.len(),
            1,
            "Figure 4(a): one representative order suffices"
        );
        assert!(red.reduced);
        assert_eq!(
            red.pruned.len(),
            1,
            "the pruned branch must be kept for the cycle proviso"
        );
        assert_eq!(<SporReducer as Reducer<u8, Tok>>::name(&reducer), "spor");
    }

    #[test]
    fn spor_on_empty_instance_list_is_identity() {
        let spec = diamond();
        let state = spec.initial_state();
        let reducer = SporReducer::new(&spec);
        let red = reducer.reduce(&spec, &state, Vec::new());
        assert!(red.explore.is_empty());
        assert!(!red.reduced);
    }

    #[test]
    fn traced_reduce_records_the_stubborn_set_histogram() {
        use mp_trace::{SharedBuffer, Tracer};
        let spec = diamond();
        let state = spec.initial_state();
        let instances = enabled_instances(&spec, &state);
        let reducer = SporReducer::new(&spec);
        let tracer = Tracer::to_writer(false, Box::new(SharedBuffer::new()));
        let run = tracer.begin_run("diamond", "test", "p");
        let red = reducer.reduce_traced(&spec, &state, instances, &run.handle());
        assert_eq!(red.explore.len(), 1);
        let hist = run.snapshot();
        let h = hist.histogram(Histogram::StubbornSetSize);
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 1);
        run.finish("verified");
        // The disabled handle records nothing and stays free.
        let red = reducer.reduce_traced(
            &spec,
            &state,
            enabled_instances(&spec, &state),
            &TraceHandle::disabled(),
        );
        assert!(!red.explore.is_empty());
    }

    #[test]
    fn spor_never_returns_empty_for_nonempty_input() {
        let spec = diamond();
        let state = spec.initial_state();
        let instances = enabled_instances(&spec, &state);
        let reducer = SporReducer::new(&spec);
        let red = reducer.reduce(&spec, &state, instances);
        assert!(!red.explore.is_empty());
    }
}
