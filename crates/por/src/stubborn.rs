//! Stubborn-set computation (the static POR of MP-Basset).
//!
//! A stubborn set in state `s` is a subset of the enabled transitions such
//! that exploring only that subset preserves the properties of interest
//! (paper, Section III-A, after Valmari). MP-LPOR is "essentially an SPOR
//! algorithm" whose independence information is pre-computed and
//! state-unconditional; this module implements that scheme:
//!
//! 1. pick a **seed transition** among the enabled ones (heuristics in
//!    [`crate::SeedHeuristic`]);
//! 2. close the working set: for every *enabled* transition in the set add
//!    all statically dependent transitions; for every *disabled* transition
//!    in the set add its necessary enabling transitions (the NET relation);
//! 3. if the resulting enabled subset is a strict reduction and the state
//!    has enabled *visible* transitions, add all of them and re-close —
//!    visible transitions are never postponed past the reduction.
//!
//! The stubborn set alone is not enough on cyclic state graphs: a reduced
//! search could postpone a transition around a cycle forever (the
//! **ignoring problem**). The searches in `mp-checker` therefore apply the
//! **cycle proviso** on top of the sets computed here: whenever a reduced
//! expansion closes a cycle back into the search stack, the state is
//! re-expanded with the pruned instances (kept in
//! [`Reduction::pruned`](crate::Reduction)) added back — i.e. the reduction
//! falls back to full expansion at that state. Visibility (rule 3) plus the
//! proviso gives the reachability-preservation guarantee listed in the
//! paper's appendix for invariants, and makes the reduction sound for the
//! liveness properties (termination / leads-to) of `mp-checker`, whose
//! lasso counterexamples are exactly cycles the proviso refuses to leave
//! reduced.
//!
//! The computation works on transition *ids*; the checker maps the chosen
//! ids back to the concrete [`TransitionInstance`](mp_model::TransitionInstance)s it enumerated.

use std::collections::BTreeSet;

use mp_model::{LocalState, Message, ProtocolSpec, TransitionId};

use crate::{CanEnable, IndependenceRelation, SeedHeuristic};

/// Pre-computed data driving stubborn-set computation for one protocol.
#[derive(Clone, Debug)]
pub struct StubbornSets {
    independence: IndependenceRelation,
    can_enable: CanEnable,
    visible: Vec<bool>,
    heuristic: SeedHeuristic,
}

/// The result of a stubborn-set computation in one state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StubbornSet {
    /// The enabled transitions that must be explored in this state.
    pub explore: BTreeSet<TransitionId>,
    /// `true` if `explore` is a strict subset of the enabled transitions.
    pub reduced: bool,
    /// The seed transition the closure started from.
    pub seed: TransitionId,
}

impl StubbornSets {
    /// Pre-computes the independence and can-enable relations of `spec`.
    pub fn new<S: LocalState, M: Message>(spec: &ProtocolSpec<S, M>) -> Self {
        Self::with_heuristic(spec, SeedHeuristic::default())
    }

    /// Pre-computes the relations and uses the given seed heuristic.
    pub fn with_heuristic<S: LocalState, M: Message>(
        spec: &ProtocolSpec<S, M>,
        heuristic: SeedHeuristic,
    ) -> Self {
        let independence = IndependenceRelation::compute(spec);
        let can_enable = CanEnable::compute(spec);
        let visible = spec
            .transitions()
            .map(|(_, t)| t.annotations().is_visible)
            .collect();
        StubbornSets {
            independence,
            can_enable,
            visible,
            heuristic,
        }
    }

    /// Returns the pre-computed independence relation.
    pub fn independence(&self) -> &IndependenceRelation {
        &self.independence
    }

    /// Returns the pre-computed can-enable relation.
    pub fn can_enable(&self) -> &CanEnable {
        &self.can_enable
    }

    /// Returns the seed heuristic in use.
    pub fn heuristic(&self) -> SeedHeuristic {
        self.heuristic
    }

    /// Returns `true` if the transition is annotated visible.
    pub fn is_visible(&self, t: TransitionId) -> bool {
        self.visible[t.index()]
    }

    /// Computes a stubborn set for a state in which exactly the transitions
    /// in `enabled` have at least one enabled instance.
    ///
    /// Returns `None` when `enabled` is empty (deadlock state: nothing to
    /// explore, nothing to reduce).
    pub fn compute<S: LocalState, M: Message>(
        &self,
        spec: &ProtocolSpec<S, M>,
        enabled: &[TransitionId],
    ) -> Option<StubbornSet> {
        if enabled.is_empty() {
            return None;
        }
        let enabled_set: BTreeSet<TransitionId> = enabled.iter().copied().collect();
        let seed = self.heuristic.choose(spec, &self.independence, enabled);

        let mut work: BTreeSet<TransitionId> = BTreeSet::new();
        self.close(seed, &enabled_set, &mut work);

        let mut explore: BTreeSet<TransitionId> = work
            .iter()
            .copied()
            .filter(|t| enabled_set.contains(t))
            .collect();

        // Visibility condition: if we achieved a reduction but some enabled
        // visible transition would be postponed, add every enabled visible
        // transition (and its closure) so that property-relevant events are
        // never delayed past the reduction.
        if explore.len() < enabled_set.len() {
            let visible_enabled: Vec<TransitionId> = enabled_set
                .iter()
                .copied()
                .filter(|t| self.visible[t.index()])
                .collect();
            if !visible_enabled.is_empty() && visible_enabled.iter().any(|t| !explore.contains(t)) {
                for t in visible_enabled {
                    self.close(t, &enabled_set, &mut work);
                }
                explore = work
                    .iter()
                    .copied()
                    .filter(|t| enabled_set.contains(t))
                    .collect();
            }
        }

        let reduced = explore.len() < enabled_set.len();
        Some(StubbornSet {
            explore,
            reduced,
            seed,
        })
    }

    /// Closure step shared by the seed and the visibility repair: adds `start`
    /// to `work` and saturates under the stubborn-set rules.
    fn close(
        &self,
        start: TransitionId,
        enabled_set: &BTreeSet<TransitionId>,
        work: &mut BTreeSet<TransitionId>,
    ) {
        let mut queue: Vec<TransitionId> = Vec::new();
        if work.insert(start) {
            queue.push(start);
        }
        while let Some(t) = queue.pop() {
            if enabled_set.contains(&t) {
                // Enabled member: every dependent transition must be in the
                // set, otherwise a dependent interleaving could be missed.
                for dep in self.independence.dependents_of(t) {
                    if work.insert(dep) {
                        queue.push(dep);
                    }
                }
            } else {
                // Disabled member: a necessary enabling set must be included
                // so that paths which first enable `t` are represented.
                for enabler in self.can_enable.enablers_of(t) {
                    if work.insert(*enabler) {
                        queue.push(*enabler);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::{Kind, Message, Outcome, ProcessId, QuorumSpec, TransitionSpec};

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Msg {
        Req,
        Ack,
    }
    mp_model::codec!(enum Msg { 0 = Req, 1 = Ack });

    impl Message for Msg {
        fn kind(&self) -> Kind {
            match self {
                Msg::Req => "REQ",
                Msg::Ack => "ACK",
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    /// Two completely independent client/server pairs:
    /// p0 -> p1 (REQ/ACK) and p2 -> p3 (REQ/ACK).
    fn two_pairs() -> mp_model::ProtocolSpec<u8, Msg> {
        let mk_request = |name: &str, from: usize, to: usize| {
            TransitionSpec::builder(name.to_string(), p(from))
                .internal()
                .guard(|l, _| *l == 0)
                .sends(&["REQ"])
                .sends_to([p(to)])
                .priority(10)
                .effect(move |_, _| Outcome::new(1).send(p(to), Msg::Req))
                .build()
        };
        let mk_serve = |name: &str, me: usize| {
            TransitionSpec::builder(name.to_string(), p(me))
                .single_input("REQ")
                .reply()
                .sends(&["ACK"])
                .effect(|_, m: &[mp_model::Envelope<Msg>]| {
                    Outcome::new(1).send(m[0].sender, Msg::Ack)
                })
                .build()
        };
        let mk_collect = |name: &str, me: usize, from: usize| {
            TransitionSpec::builder(name.to_string(), p(me))
                .quorum_input("ACK", QuorumSpec::Exact(1))
                .allowed_senders([p(from)])
                .sends_nothing()
                .priority(-10)
                .effect(|_, _| Outcome::new(2))
                .build()
        };
        mp_model::ProtocolSpec::builder("two-pairs")
            .process("c0", 0u8)
            .process("s0", 0u8)
            .process("c1", 0u8)
            .process("s1", 0u8)
            .transition(mk_request("REQ_A", 0, 1))
            .transition(mk_serve("SERVE_A", 1))
            .transition(mk_collect("COLLECT_A", 0, 1))
            .transition(mk_request("REQ_B", 2, 3))
            .transition(mk_serve("SERVE_B", 3))
            .transition(mk_collect("COLLECT_B", 2, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn independent_pairs_are_reduced_to_one_component() {
        let spec = two_pairs();
        let sets = StubbornSets::new(&spec);
        // Both REQ_A (t0) and REQ_B (t3) are enabled in the initial state.
        let result = sets
            .compute(&spec, &[TransitionId(0), TransitionId(3)])
            .unwrap();
        assert!(result.reduced);
        assert_eq!(result.explore.len(), 1);
    }

    #[test]
    fn dependent_transitions_are_not_reduced() {
        let spec = two_pairs();
        let sets = StubbornSets::new(&spec);
        // SERVE_A (t1) and COLLECT_A (t2) belong to communicating processes:
        // SERVE_A sends the ACK that COLLECT_A consumes.
        let result = sets
            .compute(&spec, &[TransitionId(1), TransitionId(2)])
            .unwrap();
        assert_eq!(result.explore.len(), 2);
        assert!(!result.reduced);
    }

    #[test]
    fn deadlock_state_returns_none() {
        let spec = two_pairs();
        let sets = StubbornSets::new(&spec);
        assert!(sets.compute(&spec, &[]).is_none());
    }

    #[test]
    fn seed_heuristic_controls_the_seed() {
        let spec = two_pairs();
        let enabled = [TransitionId(0), TransitionId(2)];
        let opposite = StubbornSets::with_heuristic(&spec, SeedHeuristic::OppositeTransaction);
        let result = opposite.compute(&spec, &enabled).unwrap();
        assert_eq!(result.seed, TransitionId(0), "REQ_A has priority 10");
        let transaction = StubbornSets::with_heuristic(&spec, SeedHeuristic::Transaction);
        let result = transaction.compute(&spec, &enabled).unwrap();
        assert_eq!(result.seed, TransitionId(2), "COLLECT_A has priority -10");
    }

    #[test]
    fn visible_transitions_are_never_postponed() {
        // Same protocol, but COLLECT_B is visible (it "decides").
        let spec = two_pairs();
        let mut transitions: Vec<_> = spec.transitions().map(|(_, t)| t.clone()).collect();
        transitions[5].annotations_mut().is_visible = true;
        let spec = spec.with_transitions(transitions).unwrap();
        let sets = StubbornSets::new(&spec);
        // Enabled: REQ_A (invisible, independent) and COLLECT_B (visible).
        let result = sets
            .compute(&spec, &[TransitionId(0), TransitionId(5)])
            .unwrap();
        assert!(
            result.explore.contains(&TransitionId(5)),
            "the visible transition must be in every stubborn set that reduces"
        );
    }

    #[test]
    fn closure_includes_enablers_of_disabled_dependents() {
        let spec = two_pairs();
        // Force the seed to SERVE_A by using the declaration-order heuristic.
        let sets = StubbornSets::with_heuristic(&spec, SeedHeuristic::FirstEnabled);
        // Enabled: SERVE_A (t1) and REQ_B (t3). COLLECT_A (t2) is dependent
        // on SERVE_A but disabled, so its enablers (SERVE_A itself, REQ_A)
        // join the closure; since REQ_A is disabled too the closure stays on
        // the A side and REQ_B can be dropped.
        let result = sets
            .compute(&spec, &[TransitionId(1), TransitionId(3)])
            .unwrap();
        assert!(result.explore.contains(&TransitionId(1)));
        assert!(!result.explore.contains(&TransitionId(3)));
        assert!(result.reduced);
    }

    #[test]
    fn stubborn_set_is_subset_of_enabled() {
        let spec = two_pairs();
        let sets = StubbornSets::new(&spec);
        let enabled = [TransitionId(0), TransitionId(1), TransitionId(3)];
        let result = sets.compute(&spec, &enabled).unwrap();
        for t in &result.explore {
            assert!(enabled.contains(t));
        }
        assert!(!result.explore.is_empty());
    }
}
