//! Budgeted fault injection for the Echo Multicast models.
//!
//! Echo Multicast already models *Byzantine participants* explicitly
//! (equivocating initiators, colluding receivers); `mp-faults` adds the
//! orthogonal *environment* faults — crash-stop, message loss and
//! duplication — so a single budget answers questions like "does agreement
//! survive a crashed receiver on top of `b` Byzantine ones?".

use mp_checker::{Invariant, NullObserver, Property};
use mp_faults::{inject, lift_invariant, lift_property, FaultBudget, FaultLocal};
use mp_model::ProtocolSpec;

use super::model::quorum_model;
use super::properties::{
    agreement_property, committed_leads_to_delivered, delivery_termination_property,
};
use super::types::{MulticastMessage, MulticastSetting, MulticastState};

/// The quorum-transition Echo Multicast model wrapped with a fault budget.
/// No mutator is installed: Byzantine behaviour is already part of the
/// protocol model itself, the budget covers the benign environment faults.
pub fn faulty_quorum_model(
    setting: MulticastSetting,
    budget: FaultBudget,
) -> ProtocolSpec<FaultLocal<MulticastState>, MulticastMessage> {
    inject(&quorum_model(setting), budget)
        .expect("a valid multicast model stays valid under fault injection")
}

/// The agreement property lifted to the fault-augmented state space.
pub fn faulty_agreement_property(
    setting: MulticastSetting,
) -> Invariant<FaultLocal<MulticastState>, MulticastMessage, NullObserver> {
    lift_invariant(agreement_property(setting))
}

/// The delivery termination property lifted to the fault-augmented state
/// space: does every fair execution still deliver under the budget?
pub fn faulty_delivery_termination_property(
    setting: MulticastSetting,
) -> Property<FaultLocal<MulticastState>, MulticastMessage, NullObserver> {
    lift_property(delivery_termination_property(setting))
}

/// The `committed ⇝ delivered` leads-to property lifted to the
/// fault-augmented state space.
pub fn faulty_committed_leads_to_delivered(
    setting: MulticastSetting,
) -> Property<FaultLocal<MulticastState>, MulticastMessage, NullObserver> {
    lift_property(committed_leads_to_delivered(setting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::Checker;

    #[test]
    fn agreement_survives_loss_in_a_safe_setting() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().drops(1));
        let report = Checker::new(&spec, faulty_agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn delivery_termination_breaks_under_a_crash_but_not_zero_budget() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let zero = faulty_quorum_model(setting, FaultBudget::none());
        let report = Checker::new(&zero, faulty_delivery_termination_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");

        let crashy = faulty_quorum_model(setting, FaultBudget::none().crashes(1));
        let report = Checker::new(&crashy, faulty_delivery_termination_property(setting)).run();
        let cx = report
            .verdict
            .counterexample()
            .expect("a crashed receiver never delivers");
        assert!(cx.is_lasso);
    }

    #[test]
    fn over_threshold_attack_still_found_under_faults() {
        // The wrong-agreement configuration keeps its counterexample when
        // the environment may additionally duplicate a message.
        let setting = MulticastSetting::new(2, 1, 2, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().dups(1));
        let report = Checker::new(&spec, faulty_agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_violated(), "{report}");
    }
}
