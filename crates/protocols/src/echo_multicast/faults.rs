//! Budgeted fault injection for the Echo Multicast models.
//!
//! Echo Multicast already models *Byzantine participants* explicitly
//! (equivocating initiators, colluding receivers); `mp-faults` adds the
//! orthogonal *environment* faults — crash-stop, message loss and
//! duplication — so a single budget answers questions like "does agreement
//! survive a crashed receiver on top of `b` Byzantine ones?".

use mp_checker::{Invariant, NullObserver};
use mp_faults::{inject, lift_invariant, FaultBudget, FaultLocal};
use mp_model::ProtocolSpec;

use super::model::quorum_model;
use super::properties::agreement_property;
use super::types::{MulticastMessage, MulticastSetting, MulticastState};

/// The quorum-transition Echo Multicast model wrapped with a fault budget.
/// No mutator is installed: Byzantine behaviour is already part of the
/// protocol model itself, the budget covers the benign environment faults.
pub fn faulty_quorum_model(
    setting: MulticastSetting,
    budget: FaultBudget,
) -> ProtocolSpec<FaultLocal<MulticastState>, MulticastMessage> {
    inject(&quorum_model(setting), budget)
        .expect("a valid multicast model stays valid under fault injection")
}

/// The agreement property lifted to the fault-augmented state space.
pub fn faulty_agreement_property(
    setting: MulticastSetting,
) -> Invariant<FaultLocal<MulticastState>, MulticastMessage, NullObserver> {
    lift_invariant(agreement_property(setting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::Checker;

    #[test]
    fn agreement_survives_loss_in_a_safe_setting() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().drops(1));
        let report = Checker::new(&spec, faulty_agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn over_threshold_attack_still_found_under_faults() {
        // The wrong-agreement configuration keeps its counterexample when
        // the environment may additionally duplicate a message.
        let setting = MulticastSetting::new(2, 1, 2, 1);
        let spec = faulty_quorum_model(setting, FaultBudget::none().dups(1));
        let report = Checker::new(&spec, faulty_agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_violated(), "{report}");
    }
}
