//! Echo Multicast — Byzantine-tolerant consistent multicast (paper,
//! Section V-A, protocol (b); Reiter's Rampart echo multicast).
//!
//! An initiator sends its payload (`INIT`) to every receiver; receivers sign
//! and return an `ECHO`; once the initiator has gathered echoes for the same
//! payload from more than `(n + f) / 2` receivers it sends a `COMMIT`
//! carrying that echo certificate, and receivers deliver the payload. The
//! *agreement* property says no two honest receivers deliver different
//! payloads for the same initiator; it holds as long as at most `f` of the
//! `n` receivers are Byzantine.
//!
//! Byzantine behaviour follows the paper's attack strategies:
//!
//! * a **Byzantine initiator** equivocates — it sends one value to one half
//!   of the honest receivers and another value to the other half (and both
//!   values to the Byzantine receivers), then commits every value for which
//!   it can assemble a certificate;
//! * a **Byzantine receiver** confirms (signs) everything it receives,
//!   cooperating with the equivocation.
//!
//! The "wrong agreement" debugging configuration of Table I is simply a
//! setting whose actual number of Byzantine receivers exceeds the tolerated
//! threshold ([`MulticastSetting::exceeds_threshold`]); agreement is then
//! violated and the checker returns a counterexample.

mod faults;
mod model;
mod properties;
mod single;
mod types;

pub use faults::{
    faulty_agreement_property, faulty_committed_leads_to_delivered,
    faulty_delivery_termination_property, faulty_quorum_model,
};
pub use model::quorum_model;
pub use properties::{
    agreement_property, all_honest_delivered, committed_leads_to_delivered,
    deliveries_per_initiator, delivery_termination_property,
};
pub use single::single_message_model;
pub use types::{
    ByzantineInitiatorState, HonestInitiatorState, HonestReceiverState, InitiatorPhase,
    MulticastMessage, MulticastSetting, MulticastState,
};

/// The role declaration for symmetry reduction (`mp-symmetry`): honest
/// receivers form one candidate role, Byzantine receivers another;
/// initiators are fixed points (they multicast distinct values). Note that
/// the equivocation attack deliberately *breaks* honest-receiver symmetry —
/// a Byzantine initiator sends one value to the first attack group and
/// another to the second, so permutations that mix the groups fail
/// structural validation (the initiator's recipient sets do not map onto
/// themselves) and the validated group shrinks accordingly, down to
/// identity for the (2,1,0,1) evaluation setting. That degeneration is the
/// correct answer, not a missed optimisation: the attack really does
/// distinguish those receivers.
pub fn symmetry_roles(setting: MulticastSetting) -> mp_symmetry::RoleMap {
    mp_symmetry::RoleMap::new(setting.num_processes())
        .role(setting.honest_receiver_ids())
        .role(setting.byzantine_receiver_ids())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::{Checker, CheckerConfig};

    #[test]
    fn multicast_3011_satisfies_agreement() {
        // Table I row: Echo Multicast (3,0,1,1) — verified.
        let setting = MulticastSetting::new(3, 0, 1, 1);
        let spec = quorum_model(setting);
        let report = Checker::new(&spec, agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{}", report);
    }

    #[test]
    fn multicast_2101_satisfies_agreement() {
        // Table I row: Echo Multicast (2,1,0,1) — verified (the equivocating
        // initiator cannot gather a full quorum for either value).
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = quorum_model(setting);
        let report = Checker::new(&spec, agreement_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{}", report);
    }

    #[test]
    fn multicast_2121_violates_agreement() {
        // Table I row: Echo Multicast (2,1,2,1) "wrong agreement" — the two
        // Byzantine receivers exceed the tolerated threshold and the
        // equivocating initiator gets certificates for both values.
        let setting = MulticastSetting::new(2, 1, 2, 1);
        assert!(setting.exceeds_threshold());
        let spec = quorum_model(setting);
        let report = Checker::new(&spec, agreement_property(setting))
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(report.verdict.is_violated(), "{}", report);
        let cx = report.verdict.counterexample().unwrap();
        assert!(
            cx.len() >= 6,
            "the attack needs init, echoes, two commits and two deliveries"
        );
    }

    #[test]
    fn single_message_model_agrees_on_the_verdicts() {
        let safe = MulticastSetting::new(2, 1, 0, 1);
        let spec = single_message_model(safe);
        let report = Checker::new(&spec, agreement_property(safe)).spor().run();
        assert!(report.verdict.is_verified(), "{}", report);

        let unsafe_setting = MulticastSetting::new(2, 1, 2, 1);
        let spec = single_message_model(unsafe_setting);
        let report = Checker::new(&spec, agreement_property(unsafe_setting))
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(report.verdict.is_violated(), "{}", report);
    }

    #[test]
    fn quorum_model_is_smaller_than_single_message_model() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let q = Checker::new(&quorum_model(setting), agreement_property(setting))
            .spor()
            .run();
        let s = Checker::new(&single_message_model(setting), agreement_property(setting))
            .spor()
            .run();
        assert!(
            q.stats.states < s.stats.states,
            "quorum {} vs single-message {}",
            q.stats.states,
            s.stats.states
        );
    }
}
