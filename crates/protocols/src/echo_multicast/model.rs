//! The quorum-transition Echo Multicast model.

use mp_model::{
    Envelope, Outcome, ProcessId, ProtocolBuilder, ProtocolSpec, QuorumSpec, TransitionSpec,
};

use super::types::{
    ByzantineInitiatorState, HonestInitiatorState, HonestReceiverState, InitiatorPhase,
    MulticastMessage, MulticastSetting, MulticastState, Value,
};

const PRIORITY_START: i32 = 10;
const PRIORITY_MIDDLE: i32 = 5;
const PRIORITY_FINISH: i32 = -10;

/// Builds the quorum-transition model of Echo Multicast for a setting.
pub fn quorum_model(setting: MulticastSetting) -> ProtocolSpec<MulticastState, MulticastMessage> {
    let mut builder = declare_processes(setting);
    add_initiator_transitions(&mut builder, setting, true);
    add_receiver_transitions(&mut builder, setting);
    builder
        .build()
        .expect("the Echo Multicast quorum model is structurally valid")
}

pub(crate) fn declare_processes(
    setting: MulticastSetting,
) -> ProtocolBuilder<MulticastState, MulticastMessage> {
    let mut builder = ProtocolSpec::builder(format!("echo-multicast{setting}"));
    for i in 0..setting.honest_initiators {
        builder = builder.process(
            format!("initiator{i}"),
            MulticastState::HonestInitiator(HonestInitiatorState::default()),
        );
    }
    for i in 0..setting.byzantine_initiators {
        builder = builder.process(
            format!("byz-initiator{i}"),
            MulticastState::ByzantineInitiator(ByzantineInitiatorState::default()),
        );
    }
    for i in 0..setting.honest_receivers {
        builder = builder.process(
            format!("receiver{i}"),
            MulticastState::HonestReceiver(HonestReceiverState::default()),
        );
    }
    for i in 0..setting.byzantine_receivers {
        builder = builder.process(
            format!("byz-receiver{i}"),
            MulticastState::ByzantineReceiver,
        );
    }
    builder
}

/// Returns `true` if every envelope is an `ECHO` for the given initiator and
/// value — the echo-certificate check of the commit transition.
fn all_echoes_for(msgs: &[Envelope<MulticastMessage>], initiator: ProcessId, value: Value) -> bool {
    msgs.iter().all(|m| {
        matches!(
            m.payload,
            MulticastMessage::Echo { initiator: i, value: v } if i == initiator && v == value
        )
    })
}

pub(crate) fn add_initiator_transitions(
    builder: &mut ProtocolBuilder<MulticastState, MulticastMessage>,
    setting: MulticastSetting,
    quorum: bool,
) {
    let receivers = setting.receiver_ids();
    let quorum_size = setting.echo_quorum();

    // Honest initiators multicast a single value to everyone.
    for i in 0..setting.honest_initiators {
        let me = setting.honest_initiator(i);
        let value = setting.honest_value(i);
        let receivers_init = receivers.clone();
        builder.add_transition(
            TransitionSpec::builder(format!("INIT_{i}"), me)
                .internal()
                .guard(|local: &MulticastState, _| {
                    local.as_honest_initiator().phase == InitiatorPhase::Idle
                })
                .sends(&["INIT"])
                .sends_to(receivers_init.clone())
                .priority(PRIORITY_START)
                .effect(move |local: &MulticastState, _| {
                    let mut s = local.as_honest_initiator().clone();
                    s.phase = InitiatorPhase::Sent;
                    Outcome::new(MulticastState::HonestInitiator(s)).broadcast(
                        receivers_init.clone(),
                        MulticastMessage::Init {
                            initiator: me,
                            value,
                        },
                    )
                })
                .build(),
        );

        let receivers_commit = receivers.clone();
        if quorum {
            builder.add_transition(
                TransitionSpec::builder(format!("COMMIT_{i}"), me)
                    .quorum_input("ECHO", QuorumSpec::Exact(quorum_size))
                    .guard(
                        move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                            local.as_honest_initiator().phase == InitiatorPhase::Sent
                                && all_echoes_for(msgs, me, value)
                        },
                    )
                    .sends(&["COMMIT"])
                    .sends_to(receivers_commit.clone())
                    .priority(PRIORITY_MIDDLE)
                    .effect(move |local: &MulticastState, _| {
                        let mut s = local.as_honest_initiator().clone();
                        s.phase = InitiatorPhase::Committed;
                        Outcome::new(MulticastState::HonestInitiator(s)).broadcast(
                            receivers_commit.clone(),
                            MulticastMessage::Commit {
                                initiator: me,
                                value,
                            },
                        )
                    })
                    .build(),
            );
        } else {
            builder.add_transition(
                TransitionSpec::builder(format!("COMMIT_{i}"), me)
                    .single_input("ECHO")
                    .guard(
                        move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                            local.as_honest_initiator().phase == InitiatorPhase::Sent
                                && all_echoes_for(msgs, me, value)
                        },
                    )
                    .sends(&["COMMIT"])
                    .sends_to(receivers_commit.clone())
                    .priority(PRIORITY_MIDDLE)
                    .effect(
                        move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                            let mut s = local.as_honest_initiator().clone();
                            s.echo_buffer.insert((msgs[0].sender, value));
                            if s.echo_buffer.len() >= quorum_size {
                                s.phase = InitiatorPhase::Committed;
                                s.echo_buffer.clear();
                                Outcome::new(MulticastState::HonestInitiator(s)).broadcast(
                                    receivers_commit.clone(),
                                    MulticastMessage::Commit {
                                        initiator: me,
                                        value,
                                    },
                                )
                            } else {
                                Outcome::new(MulticastState::HonestInitiator(s))
                            }
                        },
                    )
                    .build(),
            );
        }
    }

    // Byzantine initiators equivocate: one value to each half of the honest
    // receivers, both values to the Byzantine receivers, then they try to
    // commit each value for which they can assemble an echo certificate.
    for b in 0..setting.byzantine_initiators {
        let me = setting.byzantine_initiator(b);
        let (value_first, value_second) = setting.byzantine_values(b);
        let (group_first, group_second) = setting.attack_groups();
        let byz_receivers = setting.byzantine_receiver_ids();

        let mut first_targets = group_first.clone();
        first_targets.extend(byz_receivers.iter().copied());
        let mut second_targets = group_second.clone();
        second_targets.extend(byz_receivers.iter().copied());

        let all_targets: Vec<ProcessId> = receivers.clone();
        let first_targets_init = first_targets.clone();
        let second_targets_init = second_targets.clone();
        builder.add_transition(
            TransitionSpec::builder(format!("BYZ_INIT_{b}"), me)
                .internal()
                .guard(|local: &MulticastState, _| !local.as_byzantine_initiator().sent)
                .sends(&["INIT"])
                .sends_to(all_targets.clone())
                .priority(PRIORITY_START)
                .effect(move |local: &MulticastState, _| {
                    let mut s = local.as_byzantine_initiator().clone();
                    s.sent = true;
                    Outcome::new(MulticastState::ByzantineInitiator(s))
                        .broadcast(
                            first_targets_init.clone(),
                            MulticastMessage::Init {
                                initiator: me,
                                value: value_first,
                            },
                        )
                        .broadcast(
                            second_targets_init.clone(),
                            MulticastMessage::Init {
                                initiator: me,
                                value: value_second,
                            },
                        )
                })
                .build(),
        );

        for (label, value, targets, is_first) in [
            ("FIRST", value_first, group_first.clone(), true),
            ("SECOND", value_second, group_second.clone(), false),
        ] {
            if targets.is_empty() {
                // No honest receivers in this half: committing to it cannot
                // affect agreement, so the attacker does not bother.
                continue;
            }
            if quorum {
                let targets_effect = targets.clone();
                builder.add_transition(
                    TransitionSpec::builder(format!("BYZ_COMMIT_{label}_{b}"), me)
                        .quorum_input("ECHO", QuorumSpec::Exact(quorum_size))
                        .guard(
                            move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                                let s = local.as_byzantine_initiator();
                                let not_yet = if is_first {
                                    !s.committed_first
                                } else {
                                    !s.committed_second
                                };
                                s.sent && not_yet && all_echoes_for(msgs, me, value)
                            },
                        )
                        .sends(&["COMMIT"])
                        .sends_to(targets.clone())
                        .priority(PRIORITY_MIDDLE)
                        .effect(move |local: &MulticastState, _| {
                            let mut s = local.as_byzantine_initiator().clone();
                            if is_first {
                                s.committed_first = true;
                            } else {
                                s.committed_second = true;
                            }
                            Outcome::new(MulticastState::ByzantineInitiator(s)).broadcast(
                                targets_effect.clone(),
                                MulticastMessage::Commit {
                                    initiator: me,
                                    value,
                                },
                            )
                        })
                        .build(),
                );
            } else {
                let targets_effect = targets.clone();
                builder.add_transition(
                    TransitionSpec::builder(format!("BYZ_COMMIT_{label}_{b}"), me)
                        .single_input("ECHO")
                        .guard(
                            move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                                let s = local.as_byzantine_initiator();
                                let not_yet = if is_first {
                                    !s.committed_first
                                } else {
                                    !s.committed_second
                                };
                                s.sent && not_yet && all_echoes_for(msgs, me, value)
                            },
                        )
                        .sends(&["COMMIT"])
                        .sends_to(targets.clone())
                        .priority(PRIORITY_MIDDLE)
                        .effect(
                            move |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                                let mut s = local.as_byzantine_initiator().clone();
                                s.echo_buffer.insert((msgs[0].sender, value));
                                let votes =
                                    s.echo_buffer.iter().filter(|(_, v)| *v == value).count();
                                if votes >= quorum_size {
                                    if is_first {
                                        s.committed_first = true;
                                    } else {
                                        s.committed_second = true;
                                    }
                                    Outcome::new(MulticastState::ByzantineInitiator(s)).broadcast(
                                        targets_effect.clone(),
                                        MulticastMessage::Commit {
                                            initiator: me,
                                            value,
                                        },
                                    )
                                } else {
                                    Outcome::new(MulticastState::ByzantineInitiator(s))
                                }
                            },
                        )
                        .build(),
                );
            }
        }
    }
}

pub(crate) fn add_receiver_transitions(
    builder: &mut ProtocolBuilder<MulticastState, MulticastMessage>,
    setting: MulticastSetting,
) {
    // Honest receivers echo the first INIT per initiator and deliver commits.
    for r in 0..setting.honest_receivers {
        let me = setting.honest_receiver(r);
        builder.add_transition(
            TransitionSpec::builder(format!("ECHO_{r}"), me)
                .single_input("INIT")
                .reply()
                .sends(&["ECHO"])
                .priority(PRIORITY_MIDDLE)
                .effect(
                    |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                        let mut s = local.as_honest_receiver().clone();
                        let MulticastMessage::Init { initiator, value } = msgs[0].payload else {
                            return Outcome::new(local.clone());
                        };
                        if s.echoed.contains_key(&initiator) {
                            // An honest receiver echoes at most one value per
                            // initiator; duplicates and equivocations are dropped.
                            return Outcome::new(MulticastState::HonestReceiver(s));
                        }
                        s.echoed.insert(initiator, value);
                        Outcome::new(MulticastState::HonestReceiver(s))
                            .send(msgs[0].sender, MulticastMessage::Echo { initiator, value })
                    },
                )
                .build(),
        );

        builder.add_transition(
            TransitionSpec::builder(format!("DELIVER_{r}"), me)
                .single_input("COMMIT")
                .sends_nothing()
                .visible()
                .priority(PRIORITY_FINISH)
                .effect(
                    |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                        let mut s = local.as_honest_receiver().clone();
                        let MulticastMessage::Commit { initiator, value } = msgs[0].payload else {
                            return Outcome::new(local.clone());
                        };
                        s.delivered.entry(initiator).or_insert(value);
                        Outcome::new(MulticastState::HonestReceiver(s))
                    },
                )
                .build(),
        );
    }

    // Byzantine receivers confirm (sign) everything they are sent — in
    // particular both of an equivocating initiator's values.
    for r in 0..setting.byzantine_receivers {
        let me = setting.byzantine_receiver(r);
        builder.add_transition(
            TransitionSpec::builder(format!("BYZ_ECHO_{r}"), me)
                .single_input("INIT")
                .reply()
                .sends(&["ECHO"])
                .priority(PRIORITY_MIDDLE)
                .effect(
                    |local: &MulticastState, msgs: &[Envelope<MulticastMessage>]| {
                        let MulticastMessage::Init { initiator, value } = msgs[0].payload else {
                            return Outcome::new(local.clone());
                        };
                        Outcome::new(local.clone())
                            .send(msgs[0].sender, MulticastMessage::Echo { initiator, value })
                    },
                )
                .build(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_model_transition_counts() {
        // (3,0,1,1): byz initiator (init + 2 commits) + 3 honest receivers
        // (echo + deliver) + 1 byz receiver (echo) = 3 + 6 + 1 = 10.
        let setting = MulticastSetting::new(3, 0, 1, 1);
        let spec = quorum_model(setting);
        assert_eq!(spec.num_transitions(), 10);
        assert_eq!(spec.num_processes(), 5);
    }

    #[test]
    fn commit_transitions_are_exact_quorums() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = quorum_model(setting);
        let commit = spec.transition(spec.transition_by_name("COMMIT_0").unwrap());
        assert!(commit.is_exact_quorum());
        assert_eq!(commit.exact_quorum_size(), Some(setting.echo_quorum()));
    }

    #[test]
    fn echo_transitions_are_replies_and_deliver_is_visible() {
        let setting = MulticastSetting::new(2, 1, 1, 1);
        let spec = quorum_model(setting);
        assert!(
            spec.transition(spec.transition_by_name("ECHO_0").unwrap())
                .annotations()
                .is_reply
        );
        assert!(
            spec.transition(spec.transition_by_name("BYZ_ECHO_0").unwrap())
                .annotations()
                .is_reply
        );
        assert!(
            spec.transition(spec.transition_by_name("DELIVER_0").unwrap())
                .annotations()
                .is_visible
        );
    }

    #[test]
    fn all_echoes_for_checks_initiator_and_value() {
        let p0 = ProcessId(0);
        let p9 = ProcessId(9);
        let good = vec![
            Envelope::new(
                ProcessId(2),
                MulticastMessage::Echo {
                    initiator: p0,
                    value: 1,
                },
            ),
            Envelope::new(
                ProcessId(3),
                MulticastMessage::Echo {
                    initiator: p0,
                    value: 1,
                },
            ),
        ];
        assert!(all_echoes_for(&good, p0, 1));
        assert!(!all_echoes_for(&good, p0, 2));
        assert!(!all_echoes_for(&good, p9, 1));
        let mixed = vec![
            Envelope::new(
                ProcessId(2),
                MulticastMessage::Echo {
                    initiator: p0,
                    value: 1,
                },
            ),
            Envelope::new(
                ProcessId(3),
                MulticastMessage::Init {
                    initiator: p0,
                    value: 1,
                },
            ),
        ];
        assert!(!all_echoes_for(&mixed, p0, 1));
    }
}
