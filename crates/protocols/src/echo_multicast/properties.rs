//! Echo Multicast properties: the agreement safety invariant and the
//! delivery liveness properties.

use std::collections::{BTreeMap, BTreeSet};

use mp_checker::{Invariant, NullObserver, Property};
use mp_model::{GlobalState, ProcessId};

use super::types::{InitiatorPhase, MulticastMessage, MulticastSetting, MulticastState, Value};

/// Returns, per initiator, the set of distinct values delivered by honest
/// receivers in `state`.
pub fn deliveries_per_initiator(
    setting: MulticastSetting,
    state: &GlobalState<MulticastState, MulticastMessage>,
) -> BTreeMap<ProcessId, BTreeSet<Value>> {
    let mut out: BTreeMap<ProcessId, BTreeSet<Value>> = BTreeMap::new();
    for r in 0..setting.honest_receivers {
        let receiver = state.local(setting.honest_receiver(r)).as_honest_receiver();
        for (initiator, value) in &receiver.delivered {
            out.entry(*initiator).or_default().insert(*value);
        }
    }
    out
}

/// The agreement property of consistent multicast: "no two processes receive
/// different messages" (paper, Section V-A) — per initiator, all honest
/// receivers that deliver must deliver the same value.
pub fn agreement_property(
    setting: MulticastSetting,
) -> Invariant<MulticastState, MulticastMessage, NullObserver> {
    Invariant::new(
        "agreement",
        move |state: &GlobalState<MulticastState, MulticastMessage>, _| {
            for (initiator, values) in deliveries_per_initiator(setting, state) {
                if values.len() > 1 {
                    return Err(format!(
                        "agreement violated: honest receivers delivered {values:?} for initiator {initiator}"
                    ));
                }
            }
            Ok(())
        },
    )
}

/// Returns `true` if every honest receiver has delivered a value from every
/// *honest* initiator (Byzantine initiators are under no obligation to get
/// their equivocation delivered).
pub fn all_honest_delivered(
    setting: MulticastSetting,
    state: &GlobalState<MulticastState, MulticastMessage>,
) -> bool {
    (0..setting.honest_initiators).all(|i| {
        let initiator = setting.honest_initiator(i);
        (0..setting.honest_receivers).all(|r| {
            state
                .local(setting.honest_receiver(r))
                .as_honest_receiver()
                .delivered
                .contains_key(&initiator)
        })
    })
}

/// The **delivery termination** property: every fair maximal execution ends
/// with every honest receiver having delivered every honest initiator's
/// multicast. Holds on the seed models; a crash or a lost `COMMIT` breaks
/// it with a quiescent lasso.
pub fn delivery_termination_property(
    setting: MulticastSetting,
) -> Property<MulticastState, MulticastMessage, NullObserver> {
    Property::termination("multicast-delivery", move |state, _| {
        all_honest_delivered(setting, state)
    })
}

/// The **leads-to** property `committed ⇝ delivered`: whenever some honest
/// initiator has committed its multicast, every honest receiver eventually
/// delivers it (for all committed honest initiators). Vacuous on executions
/// where no honest initiator assembles its echo certificate, so it isolates
/// the commit-to-delivery half of the protocol.
pub fn committed_leads_to_delivered(
    setting: MulticastSetting,
) -> Property<MulticastState, MulticastMessage, NullObserver> {
    let committed: Vec<usize> = (0..setting.honest_initiators).collect();
    let trigger_ids = committed.clone();
    Property::leads_to(
        "committed-leads-to-delivered",
        move |state: &GlobalState<MulticastState, MulticastMessage>, _: &NullObserver| {
            trigger_ids.iter().any(|&i| {
                state
                    .local(setting.honest_initiator(i))
                    .as_honest_initiator()
                    .phase
                    == InitiatorPhase::Committed
            })
        },
        move |state: &GlobalState<MulticastState, MulticastMessage>, _: &NullObserver| {
            committed.iter().all(|&i| {
                let initiator = setting.honest_initiator(i);
                let is_committed =
                    state.local(initiator).as_honest_initiator().phase == InitiatorPhase::Committed;
                !is_committed
                    || (0..setting.honest_receivers).all(|r| {
                        state
                            .local(setting.honest_receiver(r))
                            .as_honest_receiver()
                            .delivered
                            .contains_key(&initiator)
                    })
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo_multicast::quorum_model;
    use mp_checker::PropertyStatus;

    #[test]
    fn empty_state_satisfies_agreement() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = quorum_model(setting);
        let prop = agreement_property(setting);
        assert!(prop.evaluate(&spec.initial_state(), &NullObserver).holds());
    }

    #[test]
    fn conflicting_deliveries_are_caught() {
        let setting = MulticastSetting::new(2, 0, 0, 1);
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        let byz = setting.byzantine_initiator(0);
        for (r, value) in [(0usize, 1u8), (1usize, 2u8)] {
            if let MulticastState::HonestReceiver(s) = state.local_mut(setting.honest_receiver(r)) {
                s.delivered.insert(byz, value);
            }
        }
        let prop = agreement_property(setting);
        match prop.evaluate(&state, &NullObserver) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("agreement")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
        assert_eq!(deliveries_per_initiator(setting, &state)[&byz].len(), 2);
    }

    #[test]
    fn seed_multicast_delivers_on_every_fair_execution() {
        use mp_checker::Checker;
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = quorum_model(setting);
        let report = Checker::new(&spec, delivery_termination_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
        let report = Checker::new(&spec, committed_leads_to_delivered(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn same_value_deliveries_are_fine() {
        let setting = MulticastSetting::new(2, 1, 0, 0);
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        let init = setting.honest_initiator(0);
        for r in 0..2 {
            if let MulticastState::HonestReceiver(s) = state.local_mut(setting.honest_receiver(r)) {
                s.delivered.insert(init, 10);
            }
        }
        let prop = agreement_property(setting);
        assert!(prop.evaluate(&state, &NullObserver).holds());
    }
}
