//! Echo Multicast properties.

use std::collections::{BTreeMap, BTreeSet};

use mp_checker::{Invariant, NullObserver};
use mp_model::{GlobalState, ProcessId};

use super::types::{MulticastMessage, MulticastSetting, MulticastState, Value};

/// Returns, per initiator, the set of distinct values delivered by honest
/// receivers in `state`.
pub fn deliveries_per_initiator(
    setting: MulticastSetting,
    state: &GlobalState<MulticastState, MulticastMessage>,
) -> BTreeMap<ProcessId, BTreeSet<Value>> {
    let mut out: BTreeMap<ProcessId, BTreeSet<Value>> = BTreeMap::new();
    for r in 0..setting.honest_receivers {
        let receiver = state.local(setting.honest_receiver(r)).as_honest_receiver();
        for (initiator, value) in &receiver.delivered {
            out.entry(*initiator).or_default().insert(*value);
        }
    }
    out
}

/// The agreement property of consistent multicast: "no two processes receive
/// different messages" (paper, Section V-A) — per initiator, all honest
/// receivers that deliver must deliver the same value.
pub fn agreement_property(
    setting: MulticastSetting,
) -> Invariant<MulticastState, MulticastMessage, NullObserver> {
    Invariant::new(
        "agreement",
        move |state: &GlobalState<MulticastState, MulticastMessage>, _| {
            for (initiator, values) in deliveries_per_initiator(setting, state) {
                if values.len() > 1 {
                    return Err(format!(
                        "agreement violated: honest receivers delivered {values:?} for initiator {initiator}"
                    ));
                }
            }
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo_multicast::quorum_model;
    use mp_checker::PropertyStatus;

    #[test]
    fn empty_state_satisfies_agreement() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = quorum_model(setting);
        let prop = agreement_property(setting);
        assert!(prop.evaluate(&spec.initial_state(), &NullObserver).holds());
    }

    #[test]
    fn conflicting_deliveries_are_caught() {
        let setting = MulticastSetting::new(2, 0, 0, 1);
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        let byz = setting.byzantine_initiator(0);
        for (r, value) in [(0usize, 1u8), (1usize, 2u8)] {
            if let MulticastState::HonestReceiver(s) = state.local_mut(setting.honest_receiver(r)) {
                s.delivered.insert(byz, value);
            }
        }
        let prop = agreement_property(setting);
        match prop.evaluate(&state, &NullObserver) {
            PropertyStatus::Violated(reason) => assert!(reason.contains("agreement")),
            PropertyStatus::Holds => panic!("expected a violation"),
        }
        assert_eq!(deliveries_per_initiator(setting, &state)[&byz].len(), 2);
    }

    #[test]
    fn same_value_deliveries_are_fine() {
        let setting = MulticastSetting::new(2, 1, 0, 0);
        let spec = quorum_model(setting);
        let mut state = spec.initial_state();
        let init = setting.honest_initiator(0);
        for r in 0..2 {
            if let MulticastState::HonestReceiver(s) = state.local_mut(setting.honest_receiver(r)) {
                s.delivered.insert(init, 10);
            }
        }
        let prop = agreement_property(setting);
        assert!(prop.evaluate(&state, &NullObserver).holds());
    }
}
