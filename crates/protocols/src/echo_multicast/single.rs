//! The single-message Echo Multicast model (Table I "No quorum" columns).

use mp_model::ProtocolSpec;

use super::model::{add_initiator_transitions, add_receiver_transitions, declare_processes};
use super::types::{MulticastMessage, MulticastSetting, MulticastState};

/// Builds the single-message-transition model of Echo Multicast: initiator
/// commit transitions buffer echoes one at a time instead of consuming an
/// echo quorum atomically.
pub fn single_message_model(
    setting: MulticastSetting,
) -> ProtocolSpec<MulticastState, MulticastMessage> {
    let mut builder = declare_processes(setting);
    add_initiator_transitions(&mut builder, setting, false);
    add_receiver_transitions(&mut builder, setting);
    builder
        .build()
        .expect("the Echo Multicast single-message model is structurally valid")
        .renamed(format!("echo-multicast{setting}-single"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo_multicast::quorum_model;
    use mp_model::StateGraph;

    #[test]
    fn single_message_model_has_no_quorum_transitions() {
        let setting = MulticastSetting::new(2, 1, 0, 1);
        let spec = single_message_model(setting);
        for (_, t) in spec.transitions() {
            assert!(
                !t.is_quorum(),
                "`{}` must not be a quorum transition",
                t.name()
            );
        }
    }

    #[test]
    fn single_message_state_space_is_larger() {
        let setting = MulticastSetting::new(2, 1, 0, 0);
        let q = quorum_model(setting);
        let s = single_message_model(setting);
        let gq = StateGraph::build(&q, 1_000_000).unwrap();
        let gs = StateGraph::build(&s, 1_000_000).unwrap();
        assert!(
            gs.num_states() > gq.num_states(),
            "single-message {} vs quorum {}",
            gs.num_states(),
            gq.num_states()
        );
    }
}
