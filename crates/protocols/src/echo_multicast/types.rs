//! Settings, messages and local states of the Echo Multicast model.

use std::collections::BTreeMap;
use std::fmt;

use mp_model::{Kind, Message, Permutable, Permutation, ProcessId};

/// Multicast payload values. Honest initiator `i` multicasts `10 + i`;
/// Byzantine initiator `b` equivocates between `100 + 2b` and `101 + 2b`.
pub type Value = u8;

/// An Echo Multicast setting `(HR, HI, BR, BI)`: honest receivers, honest
/// initiators, Byzantine receivers, Byzantine initiators (paper,
/// Section V-A "Protocol settings").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MulticastSetting {
    /// Number of honest receivers.
    pub honest_receivers: usize,
    /// Number of honest initiators.
    pub honest_initiators: usize,
    /// Number of Byzantine receivers.
    pub byzantine_receivers: usize,
    /// Number of Byzantine initiators.
    pub byzantine_initiators: usize,
}

impl MulticastSetting {
    /// Creates a setting; e.g. `MulticastSetting::new(3, 0, 1, 1)` is the
    /// paper's Echo Multicast (3,0,1,1).
    ///
    /// # Panics
    ///
    /// Panics if there are no receivers or no initiators at all.
    pub fn new(
        honest_receivers: usize,
        honest_initiators: usize,
        byzantine_receivers: usize,
        byzantine_initiators: usize,
    ) -> Self {
        assert!(
            honest_receivers + byzantine_receivers > 0,
            "a multicast setting needs at least one receiver"
        );
        assert!(
            honest_initiators + byzantine_initiators > 0,
            "a multicast setting needs at least one initiator"
        );
        MulticastSetting {
            honest_receivers,
            honest_initiators,
            byzantine_receivers,
            byzantine_initiators,
        }
    }

    /// Total number of receiver processes (honest + Byzantine).
    pub fn num_receivers(&self) -> usize {
        self.honest_receivers + self.byzantine_receivers
    }

    /// Total number of initiator processes.
    pub fn num_initiators(&self) -> usize {
        self.honest_initiators + self.byzantine_initiators
    }

    /// Total number of processes.
    pub fn num_processes(&self) -> usize {
        self.num_receivers() + self.num_initiators()
    }

    /// The number of Byzantine receivers the protocol is *configured* to
    /// tolerate: `f = floor((n - 1) / 3)` for `n` receivers. The "wrong
    /// agreement" experiments deliberately exceed this threshold with more
    /// actual Byzantine receivers.
    pub fn tolerated_faults(&self) -> usize {
        (self.num_receivers().saturating_sub(1)) / 3
    }

    /// The echo quorum size: more than `(n + f) / 2` distinct receivers must
    /// echo a value before it may be committed, which guarantees that two
    /// different values cannot both gather a quorum as long as at most `f`
    /// receivers are Byzantine.
    pub fn echo_quorum(&self) -> usize {
        (self.num_receivers() + self.tolerated_faults()) / 2 + 1
    }

    /// Returns `true` if the actual number of Byzantine receivers exceeds the
    /// tolerated threshold (the "wrong agreement" configurations).
    pub fn exceeds_threshold(&self) -> bool {
        self.byzantine_receivers > self.tolerated_faults()
    }

    /// Process id of honest initiator `i`.
    pub fn honest_initiator(&self, i: usize) -> ProcessId {
        assert!(i < self.honest_initiators);
        ProcessId(i)
    }

    /// Process id of Byzantine initiator `i`.
    pub fn byzantine_initiator(&self, i: usize) -> ProcessId {
        assert!(i < self.byzantine_initiators);
        ProcessId(self.honest_initiators + i)
    }

    /// Process id of honest receiver `i`.
    pub fn honest_receiver(&self, i: usize) -> ProcessId {
        assert!(i < self.honest_receivers);
        ProcessId(self.num_initiators() + i)
    }

    /// Process id of Byzantine receiver `i`.
    pub fn byzantine_receiver(&self, i: usize) -> ProcessId {
        assert!(i < self.byzantine_receivers);
        ProcessId(self.num_initiators() + self.honest_receivers + i)
    }

    /// All initiator ids (honest first, then Byzantine).
    pub fn initiator_ids(&self) -> Vec<ProcessId> {
        (0..self.num_initiators()).map(ProcessId).collect()
    }

    /// All receiver ids (honest first, then Byzantine).
    pub fn receiver_ids(&self) -> Vec<ProcessId> {
        (self.num_initiators()..self.num_processes())
            .map(ProcessId)
            .collect()
    }

    /// All honest receiver ids.
    pub fn honest_receiver_ids(&self) -> Vec<ProcessId> {
        (0..self.honest_receivers)
            .map(|i| self.honest_receiver(i))
            .collect()
    }

    /// All Byzantine receiver ids.
    pub fn byzantine_receiver_ids(&self) -> Vec<ProcessId> {
        (0..self.byzantine_receivers)
            .map(|i| self.byzantine_receiver(i))
            .collect()
    }

    /// The value multicast by honest initiator `i`.
    pub fn honest_value(&self, i: usize) -> Value {
        10 + i as Value
    }

    /// The two values a Byzantine initiator `i` equivocates between.
    pub fn byzantine_values(&self, i: usize) -> (Value, Value) {
        (100 + 2 * i as Value, 101 + 2 * i as Value)
    }

    /// The two halves of the honest receivers targeted by the equivocation
    /// attack: the first group receives the first value, the second group
    /// the other.
    pub fn attack_groups(&self) -> (Vec<ProcessId>, Vec<ProcessId>) {
        let honest = self.honest_receiver_ids();
        let split = honest.len().div_ceil(2);
        (honest[..split].to_vec(), honest[split..].to_vec())
    }
}

impl fmt::Display for MulticastSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{})",
            self.honest_receivers,
            self.honest_initiators,
            self.byzantine_receivers,
            self.byzantine_initiators
        )
    }
}

/// Echo Multicast messages.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MulticastMessage {
    /// The initiator proposes a payload to a receiver.
    Init {
        /// The initiator the multicast belongs to.
        initiator: ProcessId,
        /// The multicast payload.
        value: Value,
    },
    /// A receiver's signed echo, returned to the initiator.
    Echo {
        /// The initiator being echoed.
        initiator: ProcessId,
        /// The echoed payload.
        value: Value,
    },
    /// The initiator's commit, carrying (implicitly) the echo certificate.
    Commit {
        /// The initiator of the multicast.
        initiator: ProcessId,
        /// The committed payload.
        value: Value,
    },
}

mp_model::codec!(enum MulticastMessage {
    0 = Init { initiator, value },
    1 = Echo { initiator, value },
    2 = Commit { initiator, value },
});

impl Message for MulticastMessage {
    fn kind(&self) -> Kind {
        match self {
            MulticastMessage::Init { .. } => "INIT",
            MulticastMessage::Echo { .. } => "ECHO",
            MulticastMessage::Commit { .. } => "COMMIT",
        }
    }
}

// Multicast payloads name the initiator a message belongs to; symmetry
// reduction must rewrite that id along with the channel endpoints.
impl Permutable for MulticastMessage {
    fn permute(&self, perm: &Permutation) -> Self {
        match self {
            MulticastMessage::Init { initiator, value } => MulticastMessage::Init {
                initiator: perm.apply(*initiator),
                value: *value,
            },
            MulticastMessage::Echo { initiator, value } => MulticastMessage::Echo {
                initiator: perm.apply(*initiator),
                value: *value,
            },
            MulticastMessage::Commit { initiator, value } => MulticastMessage::Commit {
                initiator: perm.apply(*initiator),
                value: *value,
            },
        }
    }
}

/// Phases of an honest initiator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum InitiatorPhase {
    /// Not started.
    #[default]
    Idle,
    /// `INIT` was sent to every receiver.
    Sent,
    /// `COMMIT` was sent; the multicast is complete.
    Committed,
}

/// Local state of an honest initiator.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HonestInitiatorState {
    /// Current phase.
    pub phase: InitiatorPhase,
    /// Echo buffer used by the single-message model (sender, value).
    pub echo_buffer: std::collections::BTreeSet<(ProcessId, Value)>,
}

/// Local state of a Byzantine (equivocating) initiator.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ByzantineInitiatorState {
    /// Whether the two conflicting `INIT`s have been sent.
    pub sent: bool,
    /// Whether the commit for the first value has been sent.
    pub committed_first: bool,
    /// Whether the commit for the second value has been sent.
    pub committed_second: bool,
    /// Echo buffer used by the single-message model (sender, value).
    pub echo_buffer: std::collections::BTreeSet<(ProcessId, Value)>,
}

/// Local state of an honest receiver.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HonestReceiverState {
    /// The value this receiver echoed, per initiator (an honest receiver
    /// echoes at most one value per initiator).
    pub echoed: BTreeMap<ProcessId, Value>,
    /// The value this receiver delivered, per initiator.
    pub delivered: BTreeMap<ProcessId, Value>,
}

mp_model::codec!(enum InitiatorPhase { 0 = Idle, 1 = Sent, 2 = Committed });
mp_model::codec!(struct HonestInitiatorState { phase, echo_buffer });
mp_model::codec!(struct ByzantineInitiatorState {
    sent,
    committed_first,
    committed_second,
    echo_buffer,
});
mp_model::codec!(struct HonestReceiverState { echoed, delivered });

/// Local state of any Echo Multicast process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MulticastState {
    /// An honest initiator.
    HonestInitiator(HonestInitiatorState),
    /// A Byzantine initiator.
    ByzantineInitiator(ByzantineInitiatorState),
    /// An honest receiver.
    HonestReceiver(HonestReceiverState),
    /// A Byzantine receiver (echoes anything; keeps no state).
    ByzantineReceiver,
}

mp_model::codec!(enum MulticastState {
    0 = HonestInitiator(state),
    1 = ByzantineInitiator(state),
    2 = HonestReceiver(state),
    3 = ByzantineReceiver,
});

// Per-initiator bookkeeping (echo buffers, echoed/delivered maps) is keyed
// by process id and must follow a permutation.
impl Permutable for MulticastState {
    fn permute(&self, perm: &Permutation) -> Self {
        match self {
            MulticastState::HonestInitiator(s) => {
                MulticastState::HonestInitiator(HonestInitiatorState {
                    phase: s.phase,
                    echo_buffer: s.echo_buffer.permute(perm),
                })
            }
            MulticastState::ByzantineInitiator(s) => {
                MulticastState::ByzantineInitiator(ByzantineInitiatorState {
                    sent: s.sent,
                    committed_first: s.committed_first,
                    committed_second: s.committed_second,
                    echo_buffer: s.echo_buffer.permute(perm),
                })
            }
            MulticastState::HonestReceiver(s) => {
                MulticastState::HonestReceiver(HonestReceiverState {
                    echoed: s.echoed.permute(perm),
                    delivered: s.delivered.permute(perm),
                })
            }
            MulticastState::ByzantineReceiver => MulticastState::ByzantineReceiver,
        }
    }
}

impl MulticastState {
    /// Returns the honest-initiator state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_honest_initiator(&self) -> &HonestInitiatorState {
        match self {
            MulticastState::HonestInitiator(s) => s,
            other => panic!("expected an honest initiator, found {other:?}"),
        }
    }

    /// Returns the Byzantine-initiator state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_byzantine_initiator(&self) -> &ByzantineInitiatorState {
        match self {
            MulticastState::ByzantineInitiator(s) => s,
            other => panic!("expected a Byzantine initiator, found {other:?}"),
        }
    }

    /// Returns the honest-receiver state.
    ///
    /// # Panics
    ///
    /// Panics if this is a different role.
    pub fn as_honest_receiver(&self) -> &HonestReceiverState {
        match self {
            MulticastState::HonestReceiver(s) => s,
            other => panic!("expected an honest receiver, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_have_expected_quorums() {
        // (3,0,1,1): 4 receivers, f = 1, quorum = 3.
        let s = MulticastSetting::new(3, 0, 1, 1);
        assert_eq!(s.num_receivers(), 4);
        assert_eq!(s.tolerated_faults(), 1);
        assert_eq!(s.echo_quorum(), 3);
        assert!(!s.exceeds_threshold());
        // (2,1,0,1): 2 receivers, f = 0, quorum = 2 (all receivers).
        let s = MulticastSetting::new(2, 1, 0, 1);
        assert_eq!(s.echo_quorum(), 2);
        assert!(!s.exceeds_threshold());
        // (2,1,2,1): 4 receivers, f = 1 but 2 actual Byzantine receivers.
        let s = MulticastSetting::new(2, 1, 2, 1);
        assert_eq!(s.echo_quorum(), 3);
        assert!(s.exceeds_threshold());
        assert_eq!(s.to_string(), "(2,1,2,1)");
    }

    #[test]
    fn process_layout_is_contiguous() {
        let s = MulticastSetting::new(2, 1, 2, 1);
        assert_eq!(s.num_processes(), 6);
        assert_eq!(s.honest_initiator(0), ProcessId(0));
        assert_eq!(s.byzantine_initiator(0), ProcessId(1));
        assert_eq!(s.honest_receiver(0), ProcessId(2));
        assert_eq!(s.honest_receiver(1), ProcessId(3));
        assert_eq!(s.byzantine_receiver(0), ProcessId(4));
        assert_eq!(s.byzantine_receiver(1), ProcessId(5));
        assert_eq!(s.receiver_ids().len(), 4);
        assert_eq!(s.initiator_ids().len(), 2);
    }

    #[test]
    fn attack_groups_partition_honest_receivers() {
        let s = MulticastSetting::new(3, 0, 1, 1);
        let (a, b) = s.attack_groups();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        let mut all = a.clone();
        all.extend(b.clone());
        assert_eq!(all, s.honest_receiver_ids());
    }

    #[test]
    fn values_are_distinct() {
        let s = MulticastSetting::new(2, 2, 0, 2);
        assert_ne!(s.honest_value(0), s.honest_value(1));
        let (a0, b0) = s.byzantine_values(0);
        let (a1, b1) = s.byzantine_values(1);
        assert_ne!(a0, b0);
        assert_ne!(a0, a1);
        assert_ne!(b0, b1);
    }

    #[test]
    fn message_kinds() {
        let p = ProcessId(0);
        assert_eq!(
            MulticastMessage::Init {
                initiator: p,
                value: 1
            }
            .kind(),
            "INIT"
        );
        assert_eq!(
            MulticastMessage::Echo {
                initiator: p,
                value: 1
            }
            .kind(),
            "ECHO"
        );
        assert_eq!(
            MulticastMessage::Commit {
                initiator: p,
                value: 1
            }
            .kind(),
            "COMMIT"
        );
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn zero_receivers_rejected() {
        MulticastSetting::new(0, 1, 0, 1);
    }
}
