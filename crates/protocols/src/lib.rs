//! # mp-protocols — the fault-tolerant protocols evaluated in the paper
//!
//! Protocol-level models of the three systems used in the evaluation of
//! "Efficient Model Checking of Fault-Tolerant Distributed Protocols"
//! (DSN 2011), each in two modelling styles — with **quorum transitions**
//! (the paper's contribution) and with **single-message transitions** only
//! (the baseline of Table I) — plus the faulty variants used for the
//! debugging experiments:
//!
//! * [`paxos`] — single-decree Paxos consensus (crash faults), with the
//!   "Faulty Paxos" learner bug;
//! * [`echo_multicast`] — Reiter's Echo Multicast (Byzantine faults), with
//!   equivocating initiators, colluding receivers and the over-threshold
//!   "wrong agreement" configurations;
//! * [`storage`] — an ABD-style single-writer regular register (crash
//!   faults), with the regularity property expressed through a sound
//!   history observer and the "wrong regularity" debugging specification;
//! * [`sweep`] — a parametric quorum-collection protocol family used to
//!   measure the Section II-C state-space inflation analytically claimed by
//!   the paper.
//!
//! Every model is an ordinary [`mp_model::ProtocolSpec`]; they can be
//! refined with `mp-refine` (quorum-/reply-/combined-split) and checked with
//! any engine of `mp-checker`:
//!
//! ```
//! use mp_checker::Checker;
//! use mp_protocols::paxos::{consensus_property, quorum_model, PaxosSetting, PaxosVariant};
//!
//! // Single-decree Paxos with 1 proposer, 2 acceptors, 1 learner.
//! let setting = PaxosSetting::new(1, 2, 1);
//! let spec = quorum_model(setting, PaxosVariant::Correct);
//! let report = Checker::new(&spec, consensus_property(setting)).spor().run();
//! assert!(report.verdict.is_verified());
//!
//! // The paper's injected learner bug is found with a counterexample.
//! let buggy = quorum_model(PaxosSetting::new(2, 3, 1), PaxosVariant::FaultyLearner);
//! let report = Checker::new(&buggy, consensus_property(PaxosSetting::new(2, 3, 1)))
//!     .spor()
//!     .run();
//! assert!(report.verdict.is_violated());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod echo_multicast;
pub mod paxos;
pub mod storage;
pub mod sweep;
