//! Budgeted fault injection for the Paxos models.
//!
//! The paper injects its Paxos bug by hand (the `FaultyLearner` variant);
//! with `mp-faults` the same protocol family extends to *generic* fault
//! workloads: "does Paxos still satisfy consensus with one crash and two
//! dropped messages?" becomes one [`FaultBudget`] away.

use mp_checker::{Invariant, NullObserver, Property};
use mp_faults::{lift_invariant, lift_property, FaultBudget, FaultInjector, FaultLocal, Mutator};
use mp_model::{Envelope, ProtocolSpec};

use super::model::quorum_model;
use super::properties::{accepted_leads_to_learned, consensus_property, termination_property};
use super::types::{PaxosMessage, PaxosSetting, PaxosState, PaxosVariant};

/// The offset added to corrupted Paxos values. Proposed values are small
/// (`i + 1` per proposer), so any corrupted value is recognisably
/// unproposed and trips the validity half of the consensus property.
pub const CORRUPT_VALUE_OFFSET: u8 = 100;

/// The default Byzantine mutation for Paxos: shift the value carried by a
/// `WRITE` or `ACCEPT` message out of the proposed range, leaving the
/// ballot untouched. `READ`/`READ_REPL` messages are not corrupted — the
/// interesting lies are about values.
pub fn value_mutator() -> Mutator<PaxosMessage> {
    std::sync::Arc::new(|env: &Envelope<PaxosMessage>| match &env.payload {
        PaxosMessage::Write { ballot, value } => vec![PaxosMessage::Write {
            ballot: *ballot,
            value: value.wrapping_add(CORRUPT_VALUE_OFFSET),
        }],
        PaxosMessage::Accept { ballot, value } => vec![PaxosMessage::Accept {
            ballot: *ballot,
            value: value.wrapping_add(CORRUPT_VALUE_OFFSET),
        }],
        _ => Vec::new(),
    })
}

/// The quorum-transition Paxos model wrapped with a fault budget. The
/// corruption class uses [`value_mutator`].
pub fn faulty_quorum_model(
    setting: PaxosSetting,
    variant: PaxosVariant,
    budget: FaultBudget,
) -> ProtocolSpec<FaultLocal<PaxosState>, PaxosMessage> {
    FaultInjector::new(budget)
        .mutator({
            let m = value_mutator();
            move |env: &Envelope<PaxosMessage>| m(env)
        })
        .inject(&quorum_model(setting, variant))
        .expect("a valid Paxos model stays valid under fault injection")
}

/// The consensus property lifted to the fault-augmented state space.
pub fn faulty_consensus_property(
    setting: PaxosSetting,
) -> Invariant<FaultLocal<PaxosState>, PaxosMessage, NullObserver> {
    lift_invariant(consensus_property(setting))
}

/// The termination property ("some value is eventually learned") lifted to
/// the fault-augmented state space. Environment transitions are
/// fairness-exempt, so zero-budget injection verifies exactly like the seed
/// model, while a crashed majority yields a fair non-terminating lasso.
pub fn faulty_termination_property(
    setting: PaxosSetting,
) -> Property<FaultLocal<PaxosState>, PaxosMessage, NullObserver> {
    lift_property(termination_property(setting))
}

/// The `accepted ⇝ learned` leads-to property lifted to the fault-augmented
/// state space.
pub fn faulty_accepted_leads_to_learned(
    setting: PaxosSetting,
) -> Property<FaultLocal<PaxosState>, PaxosMessage, NullObserver> {
    lift_property(accepted_leads_to_learned(setting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::{Checker, CheckerConfig};

    #[test]
    fn consensus_survives_crashes_and_drops() {
        // Safety (agreement + validity) is crash- and loss-tolerant: the
        // system may get stuck, but never learns inconsistently.
        let setting = PaxosSetting::new(1, 2, 1);
        let budget = FaultBudget::none().crashes(1).drops(1);
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
        let report = Checker::new(&spec, faulty_consensus_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn corrupted_accepts_break_validity() {
        // With both ACCEPT messages of the learner's quorum corrupted to
        // the same out-of-range value, the (correct!) learner learns a
        // value nobody proposed — the generic replacement for the
        // hand-coded FaultyLearner debugging target.
        let setting = PaxosSetting::new(1, 2, 1);
        let budget = FaultBudget::none().corruptions(2);
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
        let report = Checker::new(&spec, faulty_consensus_property(setting))
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(report.verdict.is_violated(), "{report}");
        let cx = report.verdict.counterexample().unwrap();
        assert!(
            cx.steps
                .iter()
                .any(|s| s.to_string().contains("FAULT_CORRUPT")),
            "the counterexample must show the environment lying: {cx}"
        );
    }

    #[test]
    fn crashed_majority_yields_a_fair_non_terminating_lasso() {
        // (1,2,1): the acceptor quorum is 2, so one crashed acceptor already
        // removes the majority. Safety survives (consensus holds), but
        // termination does not: the environment can crash an acceptor and
        // the fair remainder of the run never learns.
        let setting = PaxosSetting::new(1, 2, 1);
        let budget = FaultBudget::none().crashes(1);
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, budget);
        let report = Checker::new(&spec, faulty_termination_property(setting))
            .spor()
            .run();
        let cx = report.verdict.counterexample().expect("must violate");
        assert!(cx.is_lasso, "liveness counterexamples are lassos");
        assert!(
            cx.steps
                .iter()
                .any(|s| s.transition.starts_with("FAULT_CRASH")),
            "the stem must contain the crash: {cx}"
        );
    }

    #[test]
    fn termination_holds_with_zero_crash_budget() {
        let setting = PaxosSetting::new(1, 2, 1);
        let spec = faulty_quorum_model(setting, PaxosVariant::Correct, FaultBudget::none());
        let report = Checker::new(&spec, faulty_termination_property(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
        let report = Checker::new(&spec, faulty_accepted_leads_to_learned(setting)).run();
        assert!(report.verdict.is_verified(), "{report}");
    }

    #[test]
    fn zero_budget_matches_the_base_model() {
        let setting = PaxosSetting::new(1, 2, 1);
        let base = quorum_model(setting, PaxosVariant::Correct);
        let faulty = faulty_quorum_model(setting, PaxosVariant::Correct, FaultBudget::none());
        let base_report = Checker::new(&base, consensus_property(setting)).run();
        let faulty_report = Checker::new(&faulty, faulty_consensus_property(setting)).run();
        assert!(base_report.verdict.is_verified());
        assert!(faulty_report.verdict.is_verified());
        assert_eq!(base_report.stats.states, faulty_report.stats.states);
    }
}
