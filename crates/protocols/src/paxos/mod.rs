//! Single-decree Paxos consensus (paper, Section V-A, protocol (a)).
//!
//! Paxos solves consensus with crash faults: at most one value may be
//! chosen, provided a minority of processes crash. The model follows the
//! paper's phase naming — `READ` (1a), `READ_REPL` (1b), `WRITE` (2a),
//! `ACCEPT` (2b) — and its process types:
//!
//! * **proposers** start a ballot by sending `READ` to every acceptor and,
//!   on a majority quorum of `READ_REPL` replies, send `WRITE` with either
//!   the highest previously-accepted value in the quorum or their own value
//!   (the quorum transition of Figure 2);
//! * **acceptors** promise to the highest ballot they have seen, accept
//!   `WRITE`s not older than their promise, and forward `ACCEPT` to every
//!   learner (Figure 6 shows the `READ` reply transition);
//! * **learners** output a value once a majority of acceptors sent `ACCEPT`
//!   for the same ballot and value.
//!
//! Two model flavours are provided, matching Table I's columns:
//! [`quorum_model`] uses quorum transitions for `READ_REPL` and `ACCEPT`;
//! [`single_message_model`] simulates them with counters in the local state
//! (the style of Figure 3). The "Faulty Paxos" debugging target — learners
//! that "do not compare the values received from the acceptors" — is
//! available from both via [`PaxosVariant::FaultyLearner`].
//!
//! Crash faults are not modelled explicitly: as the paper argues, exploring
//! all interleavings subsumes crashes because a crashed process is simply
//! one that takes no further steps.

mod faults;
mod model;
mod properties;
mod single;
mod types;

pub use faults::{
    faulty_accepted_leads_to_learned, faulty_consensus_property, faulty_quorum_model,
    faulty_termination_property, value_mutator, CORRUPT_VALUE_OFFSET,
};
pub use model::{quorum_model, quorum_model_with_acceptor_values};

/// The role declaration for symmetry reduction (`mp-symmetry`): acceptors
/// are interchangeable and learners are interchangeable, while proposers
/// stay fixed points — each proposer runs a distinct ballot and proposes a
/// distinct value, so swapping them is *not* a symmetry (and the
/// declaration deliberately leaves them out rather than relying on
/// validation, which cannot see inside guard/effect closures). The same
/// declaration is valid for the fault-augmented models of
/// [`faulty_quorum_model`]: injected environment transitions are generated
/// per process from the same loop, and the consensus/termination properties
/// quantify over learner *sets*, invariant under both roles.
pub fn symmetry_roles(setting: PaxosSetting) -> mp_symmetry::RoleMap {
    mp_symmetry::RoleMap::new(setting.num_processes())
        .role(setting.acceptor_ids())
        .role(setting.learner_ids())
}
pub use properties::{
    accepted_leads_to_learned, consensus_property, termination_property, values_learned,
};
pub use single::single_message_model;
pub use types::{
    AcceptorState, LearnerState, PaxosMessage, PaxosSetting, PaxosState, PaxosVariant,
    ProposerState,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mp_checker::{Checker, CheckerConfig};
    use mp_model::StateGraph;

    #[test]
    fn small_paxos_verifies_consensus() {
        // One proposer cannot conflict with anyone: quick sanity check.
        let setting = PaxosSetting::new(1, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let report = Checker::new(&spec, consensus_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{}", report);
        assert!(report.stats.states > 10);
    }

    #[test]
    fn two_proposer_paxos_verifies_consensus_with_spor() {
        let setting = PaxosSetting::new(2, 2, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let report = Checker::new(&spec, consensus_property(setting))
            .spor()
            .run();
        assert!(report.verdict.is_verified(), "{}", report);
    }

    #[test]
    fn faulty_learner_violates_consensus() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::FaultyLearner);
        let report = Checker::new(&spec, consensus_property(setting))
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(
            report.verdict.is_violated(),
            "the faulty learner must mix ballots and learn two values: {}",
            report
        );
        let cx = report.verdict.counterexample().unwrap();
        assert!(cx.len() >= 5, "a real run is needed before the bug shows");
    }

    #[test]
    fn correct_paxos_2_3_1_is_safe_on_a_sample() {
        // The full (2,3,1) instance is exercised by the harness; here we
        // bound the exploration to keep unit tests fast and only check that
        // no violation is found within the bound.
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let report = Checker::new(&spec, consensus_property(setting))
            .spor()
            .config(CheckerConfig::stateful_dfs().with_max_states(30_000))
            .run();
        assert!(!report.verdict.is_violated(), "{}", report);
    }

    #[test]
    fn quorum_and_single_message_models_reach_the_same_decisions() {
        let setting = PaxosSetting::new(1, 3, 1);
        let quorum = quorum_model(setting, PaxosVariant::Correct);
        let single = single_message_model(setting, PaxosVariant::Correct);
        let report_q = Checker::new(&quorum, consensus_property(setting))
            .spor()
            .run();
        let report_s = Checker::new(&single, consensus_property(setting))
            .spor()
            .run();
        assert!(report_q.verdict.is_verified());
        assert!(report_s.verdict.is_verified());
        assert!(
            report_s.stats.states > report_q.stats.states,
            "single-message model ({}) must be larger than the quorum model ({})",
            report_s.stats.states,
            report_q.stats.states
        );
    }

    #[test]
    fn single_message_model_also_exposes_the_faulty_learner() {
        let setting = PaxosSetting::new(2, 3, 1);
        let spec = single_message_model(setting, PaxosVariant::FaultyLearner);
        let report = Checker::new(&spec, consensus_property(setting))
            .config(CheckerConfig::stateful_bfs())
            .run();
        assert!(report.verdict.is_violated(), "{}", report);
    }

    #[test]
    fn state_graph_of_tiny_instance_is_reasonable() {
        let setting = PaxosSetting::new(1, 1, 1);
        let spec = quorum_model(setting, PaxosVariant::Correct);
        let graph = StateGraph::build(&spec, 10_000).unwrap();
        // A single chain: initial, after READ, after the acceptor's reply,
        // after READ_REPL (quorum of 1), after WRITE_ACC, after the learner
        // quorum — 6 states in total.
        assert_eq!(graph.num_states(), 6);
    }
}
